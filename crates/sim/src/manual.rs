//! Step-level manual execution.
//!
//! [`ManualExecutor`] gives the caller explicit control over every source
//! of nondeterminism: which pending message is delivered next, who
//! crashes when, which timers fire. The bounded model checker and the
//! mechanized lower-bound adversary in `twostep-verify` are built on it —
//! the adversarial interleavings `σ0`/`σ1` of the paper's §B.1 and §B.2
//! are literally sequences of [`ManualExecutor`] calls.
//!
//! Unlike [`crate::Simulation`], there is no clock: steps are untimed,
//! which matches the proofs' round-step granularity.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::relabel::{RelabelHash, Relabeling};
use twostep_types::{ProcessId, ProcessSet, SystemConfig, Value};

/// Identifier of an in-flight message within a [`ManualExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub usize);

/// A message sitting in the network soup.
#[derive(Debug, Clone)]
pub struct InFlight<M> {
    /// Stable identifier.
    pub id: MsgId,
    /// Sender.
    pub from: ProcessId,
    /// Receiver.
    pub to: ProcessId,
    /// Payload.
    pub msg: M,
    /// Content-only payload hash, precomputed at send time so that
    /// global-state fingerprints (used heavily by the model checker) do
    /// not re-format the message on every visit.
    content_hash: u64,
}

impl<M> InFlight<M> {
    /// A stable content key for this message: a hash of the payload
    /// alone (not the endpoints, not the send position). Two in-flight
    /// messages with equal `(from, to, content_key)` are
    /// interchangeable, which is what makes model-checker
    /// counterexample scripts survive state-space reduction.
    pub fn content_key(&self) -> u64 {
        self.content_hash
    }
}

/// An executor in which every delivery, crash and timer firing is an
/// explicit call.
#[derive(Debug, Clone)]
pub struct ManualExecutor<V: Value, P: Protocol<V>> {
    cfg: SystemConfig,
    procs: Vec<P>,
    alive: ProcessSet,
    started: Vec<bool>,
    /// Pending messages in increasing-id (send) order. Delivered and
    /// dropped messages are removed outright rather than tombstoned, so
    /// cloning an executor (which the model checker does per explored
    /// transition) costs the *current* soup, not the whole history.
    inflight: Vec<InFlight<P::Message>>,
    next_id: usize,
    armed: Vec<BTreeSet<TimerId>>,
    decisions: Vec<Option<V>>,
    decide_log: Vec<(ProcessId, V)>,
}

impl<V: Value, P: Protocol<V>> ManualExecutor<V, P> {
    /// Creates an executor; no process has started yet.
    pub fn new<F>(cfg: SystemConfig, mut make: F) -> Self
    where
        F: FnMut(ProcessId) -> P,
    {
        let n = cfg.n();
        ManualExecutor {
            cfg,
            procs: (0..n as u32).map(|i| make(ProcessId::new(i))).collect(),
            alive: ProcessSet::full(n),
            started: vec![false; n],
            inflight: Vec::new(),
            next_id: 0,
            armed: vec![BTreeSet::new(); n],
            decisions: vec![None; n],
            decide_log: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// Processes still alive.
    pub fn alive(&self) -> ProcessSet {
        self.alive
    }

    /// Read access to a protocol instance.
    pub fn process(&self, p: ProcessId) -> &P {
        &self.procs[p.index()]
    }

    /// First decision of each process.
    pub fn decisions(&self) -> &[Option<V>] {
        &self.decisions
    }

    /// The decision of `p`, if any.
    pub fn decision_of(&self, p: ProcessId) -> Option<&V> {
        self.decisions[p.index()].as_ref()
    }

    /// Every `decide` event observed, in execution order (used to check
    /// Agreement over *all* decisions, not just first ones).
    pub fn decide_log(&self) -> &[(ProcessId, V)] {
        &self.decide_log
    }

    /// Whether all decide events so far agree on one value.
    pub fn agreement(&self) -> bool {
        let mut values = self.decide_log.iter().map(|(_, v)| v);
        match values.next() {
            None => true,
            Some(first) => values.all(|v| v == first),
        }
    }

    /// Starts `p` (runs its `on_start`), if alive and not started.
    /// Returns whether the handler ran.
    pub fn start(&mut self, p: ProcessId) -> bool {
        if !self.alive.contains(p) || self.started[p.index()] {
            return false;
        }
        self.started[p.index()] = true;
        let mut eff = Effects::new();
        self.procs[p.index()].on_start(&mut eff);
        self.apply(p, eff);
        true
    }

    /// Starts every alive process in id order.
    pub fn start_all(&mut self) {
        for i in 0..self.cfg.n() as u32 {
            self.start(ProcessId::new(i));
        }
    }

    /// Submits a client proposal at `p`. Returns whether the handler ran.
    pub fn propose(&mut self, p: ProcessId, value: V) -> bool {
        if !self.alive.contains(p) {
            return false;
        }
        let mut eff = Effects::new();
        self.procs[p.index()].on_propose(value, &mut eff);
        self.apply(p, eff);
        true
    }

    /// Crashes `p`: it takes no further steps. Messages already in flight
    /// from `p` remain deliverable (they were sent before the crash).
    pub fn crash(&mut self, p: ProcessId) {
        self.alive.remove(p);
    }

    /// Restarts a crashed `p` with its pre-crash protocol state intact:
    /// it can again receive deliveries, fire still-armed timers and take
    /// proposals. Returns `false` (and does nothing) if `p` was alive.
    pub fn restart(&mut self, p: ProcessId) -> bool {
        self.alive.insert(p)
    }

    /// The messages currently in flight.
    pub fn pending(&self) -> Vec<&InFlight<P::Message>> {
        self.inflight.iter().collect()
    }

    /// The ids of pending messages addressed to `p`.
    pub fn pending_to(&self, p: ProcessId) -> Vec<MsgId> {
        self.inflight
            .iter()
            .filter(|m| m.to == p)
            .map(|m| m.id)
            .collect()
    }

    /// The ids of pending messages matching `pred`.
    pub fn pending_matching<F>(&self, mut pred: F) -> Vec<MsgId>
    where
        F: FnMut(&InFlight<P::Message>) -> bool,
    {
        self.inflight
            .iter()
            .filter(|m| pred(m))
            .map(|m| m.id)
            .collect()
    }

    /// Removes the pending message with id `id`, if present. Ids are
    /// assigned in increasing order and the soup stays sorted, so this
    /// is a binary search plus a removal.
    fn take_inflight(&mut self, id: MsgId) -> Option<InFlight<P::Message>> {
        let i = self.inflight.binary_search_by_key(&id, |m| m.id).ok()?;
        Some(self.inflight.remove(i))
    }

    /// Delivers the message with id `id`. Returns `false` if the message
    /// no longer exists or its receiver is crashed (the message is
    /// consumed either way, matching a crash swallowing a delivery).
    pub fn deliver(&mut self, id: MsgId) -> bool {
        let Some(m) = self.take_inflight(id) else {
            return false;
        };
        if !self.alive.contains(m.to) {
            return false;
        }
        let mut eff = Effects::new();
        self.procs[m.to.index()].on_message(m.from, m.msg, &mut eff);
        self.apply(m.to, eff);
        true
    }

    /// Delivers every pending message addressed to `p`, in send order.
    /// Returns how many handlers ran.
    pub fn deliver_all_to(&mut self, p: ProcessId) -> usize {
        let ids = self.pending_to(p);
        ids.into_iter().filter(|&id| self.deliver(id)).count()
    }

    /// Removes a pending message without delivering it.
    pub fn drop_message(&mut self, id: MsgId) -> bool {
        self.take_inflight(id).is_some()
    }

    /// Removes every pending message that can never again have an
    /// effect: mail addressed to crashed processes, and mail whose
    /// receiver declares it a *permanent* no-op via
    /// [`Protocol::message_is_noop`]. Returns how many were removed.
    ///
    /// This is the model checker's partial-order reduction: delivering
    /// (or not delivering) inert mail produces indistinguishable
    /// futures, so scrubbing it quotients away up to `2^k` interleaved
    /// subsets per `k` inert messages. It is **only sound for callers
    /// that never [`ManualExecutor::restart`]** — a restarted process
    /// would have been able to receive the scrubbed mail.
    pub fn scrub_inert_mail(&mut self) -> usize {
        let before = self.inflight.len();
        // `retain` needs `&self.procs` while `self.inflight` is
        // mutably borrowed, so temporarily move the soup out.
        let mut soup = std::mem::take(&mut self.inflight);
        soup.retain(|m| {
            self.alive.contains(m.to) && !self.procs[m.to.index()].message_is_noop(m.from, &m.msg)
        });
        self.inflight = soup;
        before - self.inflight.len()
    }

    /// The timers currently armed at `p`.
    pub fn armed_timers(&self, p: ProcessId) -> Vec<TimerId> {
        self.armed[p.index()].iter().copied().collect()
    }

    /// Fires an armed timer at `p`. Returns whether the handler ran.
    pub fn fire_timer(&mut self, p: ProcessId, timer: TimerId) -> bool {
        if !self.alive.contains(p) || !self.armed[p.index()].remove(&timer) {
            return false;
        }
        let mut eff = Effects::new();
        self.procs[p.index()].on_timer(timer, &mut eff);
        self.apply(p, eff);
        true
    }

    fn apply(&mut self, p: ProcessId, eff: Effects<V, P::Message>) {
        for v in eff.decisions {
            self.decide_log.push((p, v.clone()));
            if self.decisions[p.index()].is_none() {
                self.decisions[p.index()] = Some(v);
            }
        }
        for (to, msg) in eff.sends {
            let id = MsgId(self.next_id);
            self.next_id += 1;
            let mut h = DefaultHasher::new();
            format!("{msg:?}").hash(&mut h);
            let content_hash = h.finish();
            self.inflight.push(InFlight {
                id,
                from: p,
                to,
                msg,
                content_hash,
            });
        }
        for (timer, _delay) in eff.timer_sets {
            self.armed[p.index()].insert(timer);
        }
        for timer in eff.timer_cancels {
            self.armed[p.index()].remove(&timer);
        }
    }

    /// A fingerprint of the *global* state: process states, liveness,
    /// pending messages, armed timers and decisions. Used by the model
    /// checker to prune revisited states.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.alive.bits().hash(&mut h);
        self.started.hash(&mut h);
        for p in &self.procs {
            p.state_fingerprint().hash(&mut h);
        }
        // Pending messages as a multiset, order-independent: combine
        // per-message (endpoints + content) hashes commutatively.
        let mut msg_acc: u64 = 0;
        for m in &self.inflight {
            let mut mh = DefaultHasher::new();
            m.from.hash(&mut mh);
            m.to.hash(&mut mh);
            m.content_hash.hash(&mut mh);
            msg_acc = msg_acc.wrapping_add(mh.finish());
        }
        msg_acc.hash(&mut h);
        for t in &self.armed {
            t.hash(&mut h);
        }
        for d in &self.decisions {
            format!("{d:?}").hash(&mut h);
        }
        h.finish()
    }
}

impl<V: Value, P: Protocol<V>> ManualExecutor<V, P>
where
    P::Message: RelabelHash,
{
    /// A fingerprint of the global state *as seen through the relabeling*
    /// `rl`: every process id (slot order, liveness, timers, decisions,
    /// message endpoints, ids embedded in protocol state and payloads) is
    /// mapped through `π`. Two states whose relabeled fingerprints match
    /// under some `π` are behaviorally isomorphic, which is what the
    /// model checker's symmetry reduction canonicalizes over.
    ///
    /// Returns `None` if any process state or pending payload declines
    /// the permutation (see [`Protocol::state_fingerprint_relabeled`] and
    /// [`RelabelHash`]); the checker then falls back to the plain
    /// [`ManualExecutor::fingerprint`].
    pub fn fingerprint_relabeled(&self, rl: &Relabeling) -> Option<u64> {
        let n = self.cfg.n();
        debug_assert_eq!(rl.n(), n);
        let mut h = DefaultHasher::new();
        rl.pset(self.alive).bits().hash(&mut h);
        for j in 0..n as u32 {
            // Slot j of the relabeled state holds original process
            // π⁻¹(j)'s data.
            let orig = rl.preimage(ProcessId::new(j));
            self.started[orig.index()].hash(&mut h);
        }
        for j in 0..n as u32 {
            let orig = rl.preimage(ProcessId::new(j));
            self.procs[orig.index()]
                .state_fingerprint_relabeled(rl)?
                .hash(&mut h);
        }
        let mut msg_acc: u64 = 0;
        for m in &self.inflight {
            let mut mh = DefaultHasher::new();
            rl.pid(m.from).hash(&mut mh);
            rl.pid(m.to).hash(&mut mh);
            m.msg.relabel_hash(rl)?.hash(&mut mh);
            msg_acc = msg_acc.wrapping_add(mh.finish());
        }
        msg_acc.hash(&mut h);
        for j in 0..n as u32 {
            let orig = rl.preimage(ProcessId::new(j));
            self.armed[orig.index()].hash(&mut h);
        }
        for j in 0..n as u32 {
            let orig = rl.preimage(ProcessId::new(j));
            format!("{:?}", self.decisions[orig.index()]).hash(&mut h);
        }
        Some(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    /// Ping protocol: p0 sends Ping to everyone at start; receivers
    /// decide 1 on Ping; p0 arms a timer at start and decides 2 when it
    /// fires.
    #[derive(Debug, Clone)]
    struct Ping {
        me: ProcessId,
        n: usize,
        decided: Option<u64>,
    }

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct P;

    impl Protocol<u64> for Ping {
        type Message = P;
        fn id(&self) -> ProcessId {
            self.me
        }
        fn on_start(&mut self, eff: &mut Effects<u64, P>) {
            if self.me == ProcessId::new(0) {
                eff.broadcast_others(P, self.n, self.me);
                eff.set_timer(TimerId(5), twostep_types::Duration::deltas(1));
            }
        }
        fn on_propose(&mut self, v: u64, eff: &mut Effects<u64, P>) {
            self.decided = Some(v);
            eff.decide(v);
        }
        fn on_message(&mut self, _: ProcessId, _: P, eff: &mut Effects<u64, P>) {
            if self.decided.is_none() {
                self.decided = Some(1);
                eff.decide(1);
            }
        }
        fn on_timer(&mut self, _: TimerId, eff: &mut Effects<u64, P>) {
            if self.decided.is_none() {
                self.decided = Some(2);
                eff.decide(2);
            }
        }
        fn decision(&self) -> Option<u64> {
            self.decided
        }
    }

    fn exec() -> ManualExecutor<u64, Ping> {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        ManualExecutor::new(cfg, |p| Ping {
            me: p,
            n: 3,
            decided: None,
        })
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn start_produces_messages_and_timer() {
        let mut ex = exec();
        assert!(ex.start(p(0)));
        assert!(!ex.start(p(0)), "second start is a no-op");
        assert_eq!(ex.pending().len(), 2);
        assert_eq!(ex.armed_timers(p(0)), vec![TimerId(5)]);
        assert_eq!(ex.pending_to(p(1)).len(), 1);
    }

    #[test]
    fn deliver_runs_handler_once() {
        let mut ex = exec();
        ex.start_all();
        let ids = ex.pending_to(p(1));
        assert!(ex.deliver(ids[0]));
        assert!(
            !ex.deliver(ids[0]),
            "consumed message cannot be redelivered"
        );
        assert_eq!(ex.decision_of(p(1)), Some(&1));
        assert_eq!(ex.decide_log().len(), 1);
        assert!(ex.agreement());
    }

    #[test]
    fn crash_blocks_delivery_and_consumes() {
        let mut ex = exec();
        ex.start_all();
        let ids = ex.pending_to(p(2));
        ex.crash(p(2));
        assert!(!ex.deliver(ids[0]));
        assert_eq!(ex.decision_of(p(2)), None);
        assert!(
            ex.pending_to(p(2)).is_empty(),
            "delivery attempt consumed it"
        );
    }

    #[test]
    fn restart_rejoins_with_state_and_armed_timers() {
        let mut ex = exec();
        ex.start_all();
        ex.crash(p(0));
        assert!(
            !ex.fire_timer(p(0), TimerId(5)),
            "dead process fires nothing"
        );
        assert!(!ex.restart(p(1)), "restarting an alive process is a no-op");
        assert!(ex.restart(p(0)));
        assert!(ex.alive().contains(p(0)));
        // The timer armed before the crash survives the restart.
        assert!(ex.fire_timer(p(0), TimerId(5)));
        assert_eq!(ex.decision_of(p(0)), Some(&2));
    }

    #[test]
    fn drop_message_removes_silently() {
        let mut ex = exec();
        ex.start_all();
        let ids = ex.pending_to(p(1));
        assert!(ex.drop_message(ids[0]));
        assert!(!ex.drop_message(ids[0]));
        assert_eq!(ex.decision_of(p(1)), None);
    }

    #[test]
    fn timers_fire_once() {
        let mut ex = exec();
        ex.start_all();
        assert!(ex.fire_timer(p(0), TimerId(5)));
        assert_eq!(ex.decision_of(p(0)), Some(&2));
        assert!(
            !ex.fire_timer(p(0), TimerId(5)),
            "timer disarmed after firing"
        );
        assert!(!ex.fire_timer(p(1), TimerId(5)), "p1 never armed it");
    }

    #[test]
    fn propose_routed() {
        let mut ex = exec();
        ex.start_all();
        assert!(ex.propose(p(1), 42));
        assert_eq!(ex.decision_of(p(1)), Some(&42));
        ex.crash(p(2));
        assert!(!ex.propose(p(2), 43), "crashed process ignores proposals");
    }

    #[test]
    fn agreement_detects_divergence() {
        let mut ex = exec();
        ex.start_all();
        ex.propose(p(1), 7); // decides 7
        let ids = ex.pending_to(p(2));
        ex.deliver(ids[0]); // decides 1
        assert!(!ex.agreement());
    }

    #[test]
    fn clone_branches_independently() {
        let mut ex = exec();
        ex.start_all();
        let fork = ex.clone();
        let ids = ex.pending_to(p(1));
        ex.deliver(ids[0]);
        assert_eq!(ex.decision_of(p(1)), Some(&1));
        assert_eq!(fork.decision_of(p(1)), None, "fork unaffected");
    }

    #[test]
    fn fingerprint_distinguishes_states_and_matches_self() {
        let mut a = exec();
        let mut b = exec();
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.start_all();
        b.start_all();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let ids = a.pending_to(p(1));
        a.deliver(ids[0]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Deliver the same message in b: states converge again.
        let ids_b = b.pending_to(p(1));
        b.deliver(ids_b[0]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn pending_matching_filters() {
        let mut ex = exec();
        ex.start_all();
        let to_p1 = ex.pending_matching(|m| m.to == p(1));
        assert_eq!(to_p1.len(), 1);
        let from_p0 = ex.pending_matching(|m| m.from == p(0));
        assert_eq!(from_p0.len(), 2);
    }
}
