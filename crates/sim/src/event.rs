//! Event queue internals.

use std::cmp::Ordering;

use twostep_types::protocol::TimerId;
use twostep_types::{ProcessId, Time};

/// Priority class of a simulation event.
///
/// At equal virtual time, events execute in class order. The ordering is
/// chosen to match the paper's run structure:
///
/// * crashes "at the beginning of the round" happen before any step
///   ([`EventClass::Crash`] first) — Definition 2(2); restarts come
///   right after crashes, so a same-time crash+restart nets out to a
///   running process before it takes any step;
/// * protocol startup precedes client proposals at time 0;
/// * message deliveries precede timer expirations, so a fast-path
///   decision landing exactly at `2Δ` is processed before the
///   `new_ballot_timer` armed for `2Δ`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum EventClass {
    /// A process crashes.
    Crash = 0,
    /// A crashed process rejoins.
    Restart = 1,
    /// A process executes its startup handler.
    Start = 2,
    /// A client proposal arrives at a process.
    Propose = 3,
    /// A message is delivered.
    Deliver = 4,
    /// A timer fires.
    Timer = 5,
}

/// What a queued event does when it executes.
#[derive(Debug, Clone)]
pub(crate) enum EventKind<V, M> {
    Crash(ProcessId),
    Restart(ProcessId),
    Start(ProcessId),
    Propose(ProcessId, V),
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: M,
    },
    Timer {
        at: ProcessId,
        timer: TimerId,
        generation: u64,
    },
}

impl<V, M> EventKind<V, M> {
    pub(crate) fn class(&self) -> EventClass {
        match self {
            EventKind::Crash(_) => EventClass::Crash,
            EventKind::Restart(_) => EventClass::Restart,
            EventKind::Start(_) => EventClass::Start,
            EventKind::Propose(..) => EventClass::Propose,
            EventKind::Deliver { .. } => EventClass::Deliver,
            EventKind::Timer { .. } => EventClass::Timer,
        }
    }
}

/// A queued event. Ordered by `(time, class, order_key, seq)`; the
/// payload does not participate in ordering, so `V`/`M` need no `Ord`.
#[derive(Debug, Clone)]
pub(crate) struct QueuedEvent<V, M> {
    pub time: Time,
    pub order_key: u64,
    pub seq: u64,
    pub kind: EventKind<V, M>,
}

impl<V, M> QueuedEvent<V, M> {
    fn key(&self) -> (Time, EventClass, u64, u64) {
        (self.time, self.kind.class(), self.order_key, self.seq)
    }
}

impl<V, M> PartialEq for QueuedEvent<V, M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<V, M> Eq for QueuedEvent<V, M> {}

impl<V, M> PartialOrd for QueuedEvent<V, M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<V, M> Ord for QueuedEvent<V, M> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    use twostep_types::Duration;

    fn ev(
        time: u64,
        class_probe: EventKind<u64, u8>,
        order_key: u64,
        seq: u64,
    ) -> QueuedEvent<u64, u8> {
        QueuedEvent {
            time: Time::from_units(time),
            order_key,
            seq,
            kind: class_probe,
        }
    }

    #[test]
    fn ordering_time_then_class_then_key_then_seq() {
        let p = ProcessId::new(0);
        let mut heap: BinaryHeap<Reverse<QueuedEvent<u64, u8>>> = BinaryHeap::new();
        heap.push(Reverse(ev(
            5,
            EventKind::Timer {
                at: p,
                timer: TimerId(0),
                generation: 0,
            },
            0,
            0,
        )));
        heap.push(Reverse(ev(
            5,
            EventKind::Deliver {
                from: p,
                to: p,
                msg: 1,
            },
            9,
            9,
        )));
        heap.push(Reverse(ev(5, EventKind::Crash(p), 9, 9)));
        heap.push(Reverse(ev(
            1,
            EventKind::Timer {
                at: p,
                timer: TimerId(0),
                generation: 0,
            },
            0,
            0,
        )));
        heap.push(Reverse(ev(
            5,
            EventKind::Deliver {
                from: p,
                to: p,
                msg: 2,
            },
            0,
            3,
        )));
        heap.push(Reverse(ev(
            5,
            EventKind::Deliver {
                from: p,
                to: p,
                msg: 3,
            },
            0,
            1,
        )));

        let order: Vec<EventClass> =
            std::iter::from_fn(|| heap.pop().map(|Reverse(e)| e.kind.class())).collect();
        assert_eq!(
            order,
            vec![
                EventClass::Timer,   // t=1
                EventClass::Crash,   // t=5 class 0
                EventClass::Deliver, // t=5 key 0 seq 1
                EventClass::Deliver, // t=5 key 0 seq 3
                EventClass::Deliver, // t=5 key 9
                EventClass::Timer,   // t=5 class 4
            ]
        );
    }

    #[test]
    fn crash_before_restart_before_any_step() {
        // A same-time crash + restart must resolve with the crash first
        // (so the restart wins) and both before any delivery or timer.
        let p = ProcessId::new(1);
        let restart = ev(3, EventKind::Restart(p), 0, 0);
        let crash = ev(3, EventKind::Crash(p), 9, 9);
        let deliver = ev(
            3,
            EventKind::Deliver {
                from: p,
                to: p,
                msg: 0,
            },
            0,
            0,
        );
        assert!(crash < restart);
        assert!(restart < deliver);
    }

    #[test]
    fn deliver_before_timer_at_two_delta() {
        // The scenario that motivates class ordering: at exactly 2Δ the
        // fast-path 2B arrives and the new-ballot timer fires; delivery
        // must win.
        let t = Time::ZERO + Duration::deltas(2);
        let p = ProcessId::new(0);
        let deliver = ev(
            t.units(),
            EventKind::Deliver {
                from: p,
                to: p,
                msg: 0,
            },
            u64::MAX,
            u64::MAX,
        );
        let timer = ev(
            t.units(),
            EventKind::Timer {
                at: p,
                timer: TimerId(0),
                generation: 0,
            },
            0,
            0,
        );
        assert!(deliver < timer);
    }
}
