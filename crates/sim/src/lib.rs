//! Deterministic discrete-event simulator for partially synchronous
//! message-passing protocols.
//!
//! The paper's model (§2) is: `n ≥ 3` crash-prone processes over
//! reliable links; after an unknown global stabilization time (GST)
//! messages take at most `Δ`; events in `[kΔ, (k+1)Δ)` form round `k+1`.
//! Its latency claims are stated in *message delays* — a run is
//! *two-step* for `p` if `p` decides by time `2Δ`. This crate makes that
//! model executable and exactly measurable:
//!
//! * [`Simulation`] — the general engine: virtual clock, deterministic
//!   event queue, pluggable [`DelayModel`]s (synchronous rounds, uniform,
//!   random with seeds, WAN matrices, GST composition), crash injection
//!   at arbitrary times, client proposals, and a structured [`Trace`].
//! * [`SyncRunner`] — builds exactly the paper's *E-faulty synchronous
//!   runs* (Definition 2): processes in `E` crash at the beginning of
//!   the first round, every message sent in round `k` is delivered
//!   precisely at the beginning of round `k+1`, and local computation is
//!   instantaneous.
//! * [`ManualExecutor`] — a message-soup executor with explicit,
//!   step-level control over which message is delivered when; this is
//!   what the model checker and the mechanized lower-bound adversary in
//!   `twostep-verify` are built on.
//!
//! Determinism: given the same protocol code, configuration, seed and
//! schedule hooks, a simulation replays identically. All randomness is
//! drawn from a caller-seeded [`rand::rngs::StdRng`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod engine;
mod event;
mod manual;
mod seeds;
mod sync;
mod trace;
pub mod wan;

pub use delay::{
    DelayModel, LinkBehavior, Lossy, PartialSynchrony, Partition, RandomDelay, SynchronousRounds,
    UniformDelay, WanMatrix,
};
pub use engine::{DeliveryOrder, RunOutcome, Simulation, SimulationBuilder};
pub use event::EventClass;
pub use manual::{InFlight, ManualExecutor, MsgId};
pub use seeds::test_seeds;
pub use sync::{SyncOutcome, SyncRunner};
pub use trace::{msg_kind, Trace, TraceEvent};
