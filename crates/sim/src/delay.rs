//! Message delay models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use twostep_types::{Duration, ProcessId, ProcessSet, Time, DELTA};

/// What the network does with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkBehavior {
    /// Deliver after the given delay.
    Deliver(Duration),
    /// Drop the message (only meaningful before GST; links are reliable
    /// afterwards).
    Drop,
}

/// Decides the fate of each message sent through the simulated network.
///
/// Models receive the sender, receiver and send time and return a
/// [`LinkBehavior`]. Self-addressed messages bypass the model: the engine
/// delivers them locally with zero delay.
pub trait DelayModel: Send {
    /// The behavior of the link `from → to` for a message sent at
    /// `send_time`.
    fn delay(&mut self, from: ProcessId, to: ProcessId, send_time: Time) -> LinkBehavior;
}

/// Definition 2(3): every message sent during a round is delivered
/// precisely at the beginning of the next round.
///
/// A message sent at time `t` (round `⌊t/Δ⌋`) is delivered at
/// `(⌊t/Δ⌋ + 1)·Δ`.
///
/// # Example
///
/// ```rust
/// use twostep_sim::{DelayModel, LinkBehavior, SynchronousRounds};
/// use twostep_types::{Duration, ProcessId, Time, DELTA};
///
/// let mut m = SynchronousRounds;
/// let p = ProcessId::new(0);
/// let q = ProcessId::new(1);
/// assert_eq!(m.delay(p, q, Time::ZERO), LinkBehavior::Deliver(DELTA));
/// // Sent mid-round: still lands exactly on the next boundary.
/// let t = Time::from_units(DELTA.units() + 1);
/// assert_eq!(
///     m.delay(p, q, t),
///     LinkBehavior::Deliver(Duration::from_units(DELTA.units() - 1))
/// );
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SynchronousRounds;

impl DelayModel for SynchronousRounds {
    fn delay(&mut self, _from: ProcessId, _to: ProcessId, send_time: Time) -> LinkBehavior {
        let next_boundary = (send_time.round() + 1) * DELTA.units();
        LinkBehavior::Deliver(Duration::from_units(next_boundary - send_time.units()))
    }
}

/// Every message takes exactly the same delay.
#[derive(Debug, Clone, Copy)]
pub struct UniformDelay(pub Duration);

impl DelayModel for UniformDelay {
    fn delay(&mut self, _from: ProcessId, _to: ProcessId, _send_time: Time) -> LinkBehavior {
        LinkBehavior::Deliver(self.0)
    }
}

/// A network partition layered over an inner delay model.
///
/// During `[from, until)` (with `until = None` meaning forever),
/// messages whose endpoints share no group are dropped; everything else
/// is delegated to the inner model. This is the delay-model counterpart
/// of [`crate::Simulation::partition_at`]/[`crate::Simulation::heal_at`]
/// for callers who compose delay models instead of scripting the engine.
///
/// # Example
///
/// ```rust
/// use twostep_sim::{DelayModel, LinkBehavior, Partition, SynchronousRounds};
/// use twostep_types::{Duration, ProcessId, ProcessSet, Time};
///
/// let groups = vec![
///     [ProcessId::new(0), ProcessId::new(1)].into_iter().collect::<ProcessSet>(),
///     [ProcessId::new(2)].into_iter().collect::<ProcessSet>(),
/// ];
/// let mut m = Partition::new(SynchronousRounds, groups)
///     .active_from(Time::ZERO)
///     .heal_after(Time::ZERO + Duration::deltas(2));
/// let p0 = ProcessId::new(0);
/// let p2 = ProcessId::new(2);
/// assert_eq!(m.delay(p0, p2, Time::ZERO), LinkBehavior::Drop);
/// // After the heal the inner model takes over again.
/// assert!(matches!(
///     m.delay(p0, p2, Time::ZERO + Duration::deltas(2)),
///     LinkBehavior::Deliver(_)
/// ));
/// ```
#[derive(Debug)]
pub struct Partition<D> {
    inner: D,
    groups: Vec<ProcessSet>,
    from: Time,
    until: Option<Time>,
}

impl<D: DelayModel> Partition<D> {
    /// Partitions the network into `groups`, active from time zero and
    /// never healing until configured otherwise.
    pub fn new(inner: D, groups: Vec<ProcessSet>) -> Self {
        Partition {
            inner,
            groups,
            from: Time::ZERO,
            until: None,
        }
    }

    /// Sets when the partition starts cutting links (inclusive).
    pub fn active_from(mut self, from: Time) -> Self {
        self.from = from;
        self
    }

    /// Sets when the partition heals (exclusive: sends at `until` get
    /// through).
    pub fn heal_after(mut self, until: Time) -> Self {
        self.until = Some(until);
        self
    }

    fn cuts(&self, from: ProcessId, to: ProcessId, send_time: Time) -> bool {
        if from == to || send_time < self.from {
            return false;
        }
        if let Some(until) = self.until {
            if send_time >= until {
                return false;
            }
        }
        !self
            .groups
            .iter()
            .any(|g| g.contains(from) && g.contains(to))
    }
}

impl<D: DelayModel> DelayModel for Partition<D> {
    fn delay(&mut self, from: ProcessId, to: ProcessId, send_time: Time) -> LinkBehavior {
        if self.cuts(from, to, send_time) {
            LinkBehavior::Drop
        } else {
            self.inner.delay(from, to, send_time)
        }
    }
}

/// Per-message delay drawn uniformly from `[min, max]`, deterministic for
/// a given seed.
#[derive(Debug)]
pub struct RandomDelay {
    min: Duration,
    max: Duration,
    rng: StdRng,
}

impl RandomDelay {
    /// Creates a random-delay model with delays in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: Duration, max: Duration, seed: u64) -> Self {
        assert!(min <= max, "min delay must not exceed max delay");
        RandomDelay {
            min,
            max,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A model spanning `[Δ/5, Δ]`, a convenient "asynchronous but
    /// post-GST-bounded" default.
    pub fn sub_delta(seed: u64) -> Self {
        Self::new(Duration::from_units(DELTA.units() / 5), DELTA, seed)
    }
}

impl DelayModel for RandomDelay {
    fn delay(&mut self, _from: ProcessId, _to: ProcessId, _send_time: Time) -> LinkBehavior {
        let units = self.rng.gen_range(self.min.units()..=self.max.units());
        LinkBehavior::Deliver(Duration::from_units(units))
    }
}

/// Pre-GST chaos: drops each message with probability `drop_probability`
/// and delays survivors by up to `max_delay`.
///
/// Reliable-link note: the paper assumes reliable links, but protocol
/// messages may still be arbitrarily delayed before GST; dropping models
/// the extreme of that (equivalent to delaying past the horizon of
/// interest) and is how we stress liveness mechanisms in tests.
#[derive(Debug)]
pub struct Lossy {
    drop_probability: f64,
    max_delay: Duration,
    rng: StdRng,
}

impl Lossy {
    /// Creates a lossy model.
    ///
    /// # Panics
    ///
    /// Panics if `drop_probability` is not within `[0, 1]`.
    pub fn new(drop_probability: f64, max_delay: Duration, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability must be in [0, 1]"
        );
        Lossy {
            drop_probability,
            max_delay,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DelayModel for Lossy {
    fn delay(&mut self, _from: ProcessId, _to: ProcessId, _send_time: Time) -> LinkBehavior {
        if self.rng.gen_bool(self.drop_probability) {
            LinkBehavior::Drop
        } else {
            let units = self.rng.gen_range(1..=self.max_delay.units().max(1));
            LinkBehavior::Deliver(Duration::from_units(units))
        }
    }
}

/// Partial synchrony (Dwork–Lynch–Stockmeyer): before GST an arbitrary
/// model applies; from GST on, a well-behaved model (delays `≤ Δ`) takes
/// over.
///
/// # Example
///
/// ```rust
/// use twostep_sim::{Lossy, PartialSynchrony, SynchronousRounds};
/// use twostep_types::{Duration, Time, DELTA};
///
/// let gst = Time::ZERO + DELTA * 10;
/// let model = PartialSynchrony::new(
///     gst,
///     Lossy::new(0.5, DELTA * 4, 42),
///     SynchronousRounds,
/// );
/// # let _ = model;
/// ```
pub struct PartialSynchrony<B, A> {
    gst: Time,
    before: B,
    after: A,
}

impl<B: DelayModel, A: DelayModel> PartialSynchrony<B, A> {
    /// Creates a partially synchronous model switching at `gst`.
    pub fn new(gst: Time, before: B, after: A) -> Self {
        PartialSynchrony { gst, before, after }
    }

    /// The global stabilization time.
    pub fn gst(&self) -> Time {
        self.gst
    }
}

impl<B: DelayModel, A: DelayModel> DelayModel for PartialSynchrony<B, A> {
    fn delay(&mut self, from: ProcessId, to: ProcessId, send_time: Time) -> LinkBehavior {
        if send_time < self.gst {
            // Pre-GST messages must still eventually arrive by GST+Δ at
            // the latest to honour reliable links; we cap the behavior.
            match self.before.delay(from, to, send_time) {
                LinkBehavior::Drop => LinkBehavior::Drop,
                LinkBehavior::Deliver(d) => LinkBehavior::Deliver(d),
            }
        } else {
            self.after.delay(from, to, send_time)
        }
    }
}

/// A wide-area network modelled as a matrix of one-way latencies between
/// the regions hosting each process.
///
/// See [`crate::wan`] for realistic region presets.
#[derive(Debug, Clone)]
pub struct WanMatrix {
    /// `one_way[i][j]` = latency from process i to process j.
    one_way: Vec<Vec<Duration>>,
}

impl WanMatrix {
    /// Creates a WAN model from a full one-way latency matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(one_way: Vec<Vec<Duration>>) -> Self {
        let n = one_way.len();
        assert!(
            one_way.iter().all(|row| row.len() == n),
            "latency matrix must be square"
        );
        WanMatrix { one_way }
    }

    /// Number of processes covered.
    pub fn len(&self) -> usize {
        self.one_way.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.one_way.is_empty()
    }

    /// The one-way latency from `from` to `to`.
    pub fn latency(&self, from: ProcessId, to: ProcessId) -> Duration {
        self.one_way[from.index()][to.index()]
    }

    /// The largest one-way latency in the matrix — a valid `Δ` for this
    /// network.
    pub fn max_latency(&self) -> Duration {
        self.one_way
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

impl DelayModel for WanMatrix {
    fn delay(&mut self, from: ProcessId, to: ProcessId, _send_time: Time) -> LinkBehavior {
        LinkBehavior::Deliver(self.latency(from, to))
    }
}

impl DelayModel for Box<dyn DelayModel> {
    fn delay(&mut self, from: ProcessId, to: ProcessId, send_time: Time) -> LinkBehavior {
        (**self).delay(from, to, send_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn synchronous_rounds_land_on_boundaries() {
        let mut m = SynchronousRounds;
        for sent in [0u64, 1, 500, 999, 1000, 1001, 2500] {
            let t = Time::from_units(sent);
            let LinkBehavior::Deliver(d) = m.delay(p(0), p(1), t) else {
                panic!("synchronous model never drops");
            };
            let arrival = t + d;
            assert_eq!(arrival.units() % DELTA.units(), 0, "sent at {sent}");
            assert_eq!(arrival.round(), t.round() + 1, "sent at {sent}");
        }
    }

    #[test]
    fn uniform_is_constant() {
        let mut m = UniformDelay(Duration::from_units(7));
        for _ in 0..3 {
            assert_eq!(
                m.delay(p(0), p(1), Time::ZERO),
                LinkBehavior::Deliver(Duration::from_units(7))
            );
        }
    }

    #[test]
    fn random_delay_within_bounds_and_deterministic() {
        let run = |seed| {
            let mut m = RandomDelay::new(Duration::from_units(10), Duration::from_units(20), seed);
            (0..50)
                .map(|i| match m.delay(p(0), p(1), Time::from_units(i)) {
                    LinkBehavior::Deliver(d) => d.units(),
                    LinkBehavior::Drop => panic!("random model never drops"),
                })
                .collect::<Vec<_>>()
        };
        let a = run(1);
        let b = run(1);
        let c = run(2);
        assert_eq!(a, b, "same seed replays identically");
        assert_ne!(a, c, "different seeds differ");
        assert!(a.iter().all(|&d| (10..=20).contains(&d)));
    }

    #[test]
    #[should_panic(expected = "min delay")]
    fn random_delay_rejects_inverted_bounds() {
        let _ = RandomDelay::new(Duration::from_units(5), Duration::from_units(1), 0);
    }

    #[test]
    fn lossy_drops_roughly_at_rate() {
        let mut m = Lossy::new(0.5, DELTA, 7);
        let drops = (0..1000)
            .filter(|_| m.delay(p(0), p(1), Time::ZERO) == LinkBehavior::Drop)
            .count();
        assert!(
            (350..=650).contains(&drops),
            "got {drops} drops out of 1000"
        );
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn lossy_rejects_bad_probability() {
        let _ = Lossy::new(1.5, DELTA, 0);
    }

    #[test]
    fn partial_synchrony_switches_at_gst() {
        let gst = Time::ZERO + DELTA * 3;
        let mut m = PartialSynchrony::new(
            gst,
            UniformDelay(Duration::from_units(5000)),
            UniformDelay(Duration::from_units(100)),
        );
        assert_eq!(
            m.delay(p(0), p(1), Time::ZERO),
            LinkBehavior::Deliver(Duration::from_units(5000))
        );
        assert_eq!(
            m.delay(p(0), p(1), gst),
            LinkBehavior::Deliver(Duration::from_units(100))
        );
    }

    #[test]
    fn wan_matrix_lookup() {
        let d = |u| Duration::from_units(u);
        let mut m = WanMatrix::new(vec![
            vec![d(0), d(30), d(80)],
            vec![d(30), d(0), d(60)],
            vec![d(80), d(60), d(0)],
        ]);
        assert_eq!(
            m.delay(p(0), p(2), Time::ZERO),
            LinkBehavior::Deliver(d(80))
        );
        assert_eq!(m.latency(p(2), p(1)), d(60));
        assert_eq!(m.max_latency(), d(80));
        assert_eq!(m.len(), 3);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn wan_matrix_rejects_ragged() {
        let d = |u| Duration::from_units(u);
        let _ = WanMatrix::new(vec![vec![d(0), d(1)], vec![d(1)]]);
    }

    #[test]
    fn partition_model_cuts_only_cross_group_in_window() {
        let groups = vec![
            [p(0), p(1)].into_iter().collect::<ProcessSet>(),
            [p(2)].into_iter().collect::<ProcessSet>(),
        ];
        let heal = Time::ZERO + Duration::deltas(2);
        let mut m = Partition::new(UniformDelay(Duration::from_units(10)), groups)
            .active_from(Time::ZERO)
            .heal_after(heal);
        // Cross-group: dropped while the partition is up.
        assert_eq!(m.delay(p(0), p(2), Time::ZERO), LinkBehavior::Drop);
        assert_eq!(m.delay(p(2), p(1), Time::from_units(1)), LinkBehavior::Drop);
        // Same-group and self links pass through to the inner model.
        assert_eq!(
            m.delay(p(0), p(1), Time::ZERO),
            LinkBehavior::Deliver(Duration::from_units(10))
        );
        assert_eq!(
            m.delay(p(2), p(2), Time::ZERO),
            LinkBehavior::Deliver(Duration::from_units(10))
        );
        // After the heal everything passes.
        assert_eq!(
            m.delay(p(0), p(2), heal),
            LinkBehavior::Deliver(Duration::from_units(10))
        );
    }

    #[test]
    fn partition_model_isolates_unlisted_processes() {
        // p2 appears in no group: every non-self link to or from it is cut.
        let groups = vec![[p(0), p(1)].into_iter().collect::<ProcessSet>()];
        let mut m = Partition::new(UniformDelay(Duration::from_units(10)), groups);
        assert_eq!(m.delay(p(2), p(0), Time::ZERO), LinkBehavior::Drop);
        assert_eq!(m.delay(p(1), p(2), Time::ZERO), LinkBehavior::Drop);
        assert_eq!(
            m.delay(p(2), p(2), Time::ZERO),
            LinkBehavior::Deliver(Duration::from_units(10))
        );
    }
}
