//! `TWOSTEP_SEED` support for seeded randomized tests.
//!
//! Loop-over-seeds tests across the workspace draw their seed list from
//! [`test_seeds`] and embed the seed in every assertion message, so a
//! failing seed can be re-run alone:
//!
//! ```text
//! TWOSTEP_SEED=17 cargo test -p twostep-core randomized_schedules
//! ```

/// The seeds a randomized test should exercise: just the `TWOSTEP_SEED`
/// environment variable's value when it is set, otherwise `default`.
///
/// Panics on an unparsable override so a typo cannot silently fall back
/// to the default seed list.
pub fn test_seeds(default: impl IntoIterator<Item = u64>) -> Vec<u64> {
    match std::env::var("TWOSTEP_SEED") {
        Ok(s) => {
            let seed = s
                .parse()
                .unwrap_or_else(|_| panic!("TWOSTEP_SEED must be a u64, got {s:?}"));
            vec![seed]
        }
        Err(_) => default.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not testing the env-var branch here: cargo runs tests in threads
    // sharing one environment, so setting TWOSTEP_SEED would race with
    // every other randomized test in the process.
    #[test]
    fn default_passes_through_without_override() {
        if std::env::var("TWOSTEP_SEED").is_ok() {
            return; // an override is legitimately active for this run
        }
        assert_eq!(test_seeds(0..3), vec![0, 1, 2]);
        assert_eq!(test_seeds([7, 42]), vec![7, 42]);
    }
}
