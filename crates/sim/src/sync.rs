//! E-faulty synchronous runs (Definition 2).

use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::Protocol;
use twostep_types::{Duration, ProcessId, ProcessSet, SystemConfig, Time, Value};

use crate::engine::{DeliveryOrder, RunOutcome, SimulationBuilder};
use crate::SynchronousRounds;

/// The outcome of an E-faulty synchronous run; see [`RunOutcome`] for the
/// accessors (notably [`RunOutcome::fast_deciders`], which implements
/// Definition 3's "decided by `2Δ`").
pub type SyncOutcome<V, P> = RunOutcome<V, P>;

/// Builds and executes the paper's *E-faulty synchronous runs*
/// (Definition 2):
///
/// 1. processes in `E` are faulty, all others correct;
/// 2. processes in `E` crash at the beginning of the first round;
/// 3. all messages sent during a round are delivered precisely at the
///    beginning of the next round;
/// 4. local computation is instantaneous.
///
/// The definitions of e-two-step protocols (Definitions 4 and A.1)
/// quantify *existentially* over such runs; the residual freedom is the
/// order in which same-round messages are processed, controlled here via
/// [`SyncRunner::favoring`] (deliver one process's messages first).
///
/// # Example
///
/// ```rust
/// use twostep_sim::SyncRunner;
/// use twostep_types::{ProcessId, ProcessSet, SystemConfig};
/// # use twostep_types::protocol::{Effects, Protocol, TimerId};
/// # #[derive(Debug, Clone)] struct Noop(ProcessId);
/// # impl Protocol<u64> for Noop {
/// #     type Message = u8;
/// #     fn id(&self) -> ProcessId { self.0 }
/// #     fn on_start(&mut self, _: &mut Effects<u64, u8>) {}
/// #     fn on_propose(&mut self, _: u64, _: &mut Effects<u64, u8>) {}
/// #     fn on_message(&mut self, _: ProcessId, _: u8, _: &mut Effects<u64, u8>) {}
/// #     fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, u8>) {}
/// #     fn decision(&self) -> Option<u64> { None }
/// # }
///
/// let cfg = SystemConfig::for_protocol(twostep_types::ProtocolKind::TaskTwoStep, 4, 1, 1)?;
/// let faulty: ProcessSet = [ProcessId::new(0)].into_iter().collect();
/// let outcome = SyncRunner::new(cfg)
///     .crashed(faulty)
///     .favoring(ProcessId::new(3))
///     .run(|p| Noop(p));
/// assert!(outcome.crashed.contains(ProcessId::new(0)));
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct SyncRunner {
    cfg: SystemConfig,
    crashed: ProcessSet,
    favor: Option<ProcessId>,
    horizon: Duration,
    obs: ObserverHandle,
}

impl SyncRunner {
    /// Creates a runner with no crashes, send-order delivery and a 50Δ
    /// horizon (ample for slow-path recovery).
    pub fn new(cfg: SystemConfig) -> Self {
        SyncRunner {
            cfg,
            crashed: ProcessSet::new(),
            favor: None,
            horizon: Duration::deltas(50),
            obs: ObserverHandle::none(),
        }
    }

    /// Attaches telemetry hooks to the underlying simulation engine; see
    /// [`SimulationBuilder::observed`].
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// The failure set `E`: these processes crash at the beginning of the
    /// first round.
    ///
    /// # Panics
    ///
    /// Panics if `set` is not a subset of `Π`.
    pub fn crashed(mut self, set: ProcessSet) -> Self {
        assert!(
            set.is_subset(self.cfg.all_processes()),
            "failure set must be a subset of the process set"
        );
        self.crashed = set;
        self
    }

    /// Delivers messages from `p` before other same-time messages; this
    /// picks the existential witness run in which `p` wins the fast path.
    pub fn favoring(mut self, p: ProcessId) -> Self {
        self.favor = Some(p);
        self
    }

    /// Sets the virtual-time horizon of the run.
    pub fn horizon(mut self, horizon: Duration) -> Self {
        self.horizon = horizon;
        self
    }

    fn builder(&self) -> SimulationBuilder {
        let mut b = SimulationBuilder::new(self.cfg)
            .delay_model(SynchronousRounds)
            .observed(self.obs.clone());
        if let Some(p) = self.favor {
            b = b.delivery_order(DeliveryOrder::Favor(p));
        }
        for p in self.crashed.iter() {
            b = b.crash_at(p, Time::ZERO);
        }
        b
    }

    /// Runs a *task*-style protocol (initial values fixed at
    /// construction) until all correct processes decide or the horizon is
    /// reached.
    pub fn run<V, P, F>(self, make: F) -> SyncOutcome<V, P>
    where
        V: Value,
        P: Protocol<V>,
        F: FnMut(ProcessId) -> P,
    {
        let horizon = self.horizon;
        self.builder()
            .build(make)
            .run_until_all_decided(Time::ZERO + horizon)
    }

    /// Runs an *object*-style protocol: `proposals` are `propose(v)`
    /// invocations scheduled at given times (time 0 = the beginning of
    /// the first round, as in Definition A.1(2)).
    pub fn run_object<V, P, F>(
        self,
        make: F,
        proposals: Vec<(ProcessId, V, Time)>,
    ) -> SyncOutcome<V, P>
    where
        V: Value,
        P: Protocol<V>,
        F: FnMut(ProcessId) -> P,
    {
        let horizon = self.horizon;
        let mut sim = self.builder().build(make);
        for (p, v, t) in proposals {
            sim.schedule_propose(p, v, t);
        }
        sim.run_until_all_decided(Time::ZERO + horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use twostep_types::protocol::{Effects, TimerId};

    /// One-round "echo max" toy protocol: broadcast value, decide the
    /// max of own + received values after hearing from all alive peers
    /// is impossible to know, so decide on first message (enough to test
    /// synchronous-round delivery timing).
    #[derive(Debug, Clone)]
    struct Toy {
        me: ProcessId,
        n: usize,
        value: u64,
        decided: Option<u64>,
    }

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct M(u64);

    impl Protocol<u64> for Toy {
        type Message = M;
        fn id(&self) -> ProcessId {
            self.me
        }
        fn on_start(&mut self, eff: &mut Effects<u64, M>) {
            eff.broadcast_others(M(self.value), self.n, self.me);
        }
        fn on_propose(&mut self, v: u64, eff: &mut Effects<u64, M>) {
            self.value = v;
            eff.broadcast_others(M(v), self.n, self.me);
        }
        fn on_message(&mut self, _: ProcessId, m: M, eff: &mut Effects<u64, M>) {
            if self.decided.is_none() {
                self.decided = Some(m.0);
                eff.decide(m.0);
            }
        }
        fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, M>) {}
        fn decision(&self) -> Option<u64> {
            self.decided
        }
    }

    #[test]
    fn deliveries_land_exactly_on_round_boundaries() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = SyncRunner::new(cfg).run(|p| Toy {
            me: p,
            n: 3,
            value: u64::from(p.as_u32()),
            decided: None,
        });
        for i in 0..3u32 {
            assert_eq!(
                outcome.decision_time_of(ProcessId::new(i)),
                Some(Time::ZERO + Duration::deltas(1)),
                "p{i} must decide exactly at Δ"
            );
        }
    }

    #[test]
    fn crashed_set_never_acts() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let e: ProcessSet = [ProcessId::new(1)].into_iter().collect();
        let outcome = SyncRunner::new(cfg).crashed(e).run(|p| Toy {
            me: p,
            n: 3,
            value: u64::from(p.as_u32()),
            decided: None,
        });
        assert_eq!(outcome.decision_of(ProcessId::new(1)), None);
        // p0 hears only from p2 and vice versa.
        assert_eq!(outcome.decision_of(ProcessId::new(0)), Some(&2));
        assert_eq!(outcome.decision_of(ProcessId::new(2)), Some(&0));
    }

    #[test]
    fn favoring_controls_who_wins() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        for favored in 0..3u32 {
            let outcome = SyncRunner::new(cfg)
                .favoring(ProcessId::new(favored))
                .run(|p| Toy {
                    me: p,
                    n: 3,
                    value: u64::from(p.as_u32()),
                    decided: None,
                });
            for i in 0..3u32 {
                if i != favored {
                    assert_eq!(
                        outcome.decision_of(ProcessId::new(i)),
                        Some(&u64::from(favored)),
                        "favoring p{favored}: p{i} must see p{favored}'s message first"
                    );
                }
            }
        }
    }

    #[test]
    fn object_proposals_scheduled() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = SyncRunner::new(cfg).run_object(
            |p| Toy {
                me: p,
                n: 3,
                value: 0,
                decided: None,
            },
            vec![(ProcessId::new(0), 99u64, Time::ZERO)],
        );
        // Only p0 proposes; others decide 99 at Δ... but p0's startup
        // also broadcast 0 first, so receivers see 0 then 99; first wins.
        // What matters here: proposals flow through and are traced.
        assert_eq!(outcome.trace.proposals(), vec![(ProcessId::new(0), 99)]);
    }

    #[test]
    #[should_panic(expected = "subset")]
    fn rejects_out_of_range_failure_set() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let bad: ProcessSet = [ProcessId::new(7)].into_iter().collect();
        let _ = SyncRunner::new(cfg).crashed(bad);
    }
}
