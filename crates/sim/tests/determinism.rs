//! Property tests for the simulator substrate: determinism (identical
//! seeds replay identical runs) and round-structure invariants
//! (Definition 2 semantics hold for every generated schedule).

use proptest::prelude::*;
use serde::{Deserialize, Serialize};

use twostep_sim::{DeliveryOrder, RandomDelay, SimulationBuilder, SyncRunner, TraceEvent};
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::{Duration, ProcessId, SystemConfig, Time, DELTA};

/// A protocol with rich, deterministic behavior for exercising the
/// engine: every process gossips a counter, re-broadcasting increments
/// until a bound, decides the first value ≥ a threshold it sees, and
/// runs a periodic timer.
#[derive(Debug, Clone)]
struct Chatter {
    me: ProcessId,
    n: usize,
    bound: u32,
    threshold: u32,
    decided: Option<u64>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Gossip(u32);

impl Protocol<u64> for Chatter {
    type Message = Gossip;
    fn id(&self) -> ProcessId {
        self.me
    }
    fn on_start(&mut self, eff: &mut Effects<u64, Gossip>) {
        eff.broadcast_others(Gossip(self.me.as_u32()), self.n, self.me);
        eff.set_timer(TimerId(0), Duration::deltas(1));
    }
    fn on_propose(&mut self, _: u64, _: &mut Effects<u64, Gossip>) {}
    fn on_message(&mut self, _: ProcessId, g: Gossip, eff: &mut Effects<u64, Gossip>) {
        if g.0 < self.bound {
            eff.broadcast_others(Gossip(g.0 + 1), self.n, self.me);
        }
        if g.0 >= self.threshold && self.decided.is_none() {
            self.decided = Some(u64::from(g.0));
            eff.decide(u64::from(g.0));
        }
    }
    fn on_timer(&mut self, _: TimerId, eff: &mut Effects<u64, Gossip>) {
        eff.set_timer(TimerId(0), Duration::deltas(1));
    }
    fn decision(&self) -> Option<u64> {
        self.decided
    }
}

fn run_once(seed: u64, n: usize, bound: u32, threshold: u32) -> (u64, Vec<String>) {
    let cfg = SystemConfig::new(n, 1, (n - 1) / 2).unwrap();
    let outcome = SimulationBuilder::new(cfg)
        .delay_model(RandomDelay::sub_delta(seed))
        .delivery_order(DeliveryOrder::randomized(seed))
        .build(|p| Chatter {
            me: p,
            n,
            bound,
            threshold,
            decided: None,
        })
        .run(Time::ZERO + Duration::deltas(8));
    let summary: Vec<String> = outcome
        .trace
        .events()
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    (outcome.events_executed, summary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed + same parameters ⇒ byte-identical trace.
    #[test]
    fn identical_seeds_replay_identically(
        seed in 0u64..1_000_000,
        n in 3usize..7,
        bound in 1u32..5,
    ) {
        let (e1, t1) = run_once(seed, n, bound, bound);
        let (e2, t2) = run_once(seed, n, bound, bound);
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(t1, t2);
    }

    /// Under the synchronous-rounds model, every delivery lands exactly
    /// on a round boundary one round after its send (Definition 2(3)).
    #[test]
    fn synchronous_deliveries_on_boundaries(n in 3usize..7, bound in 1u32..4) {
        let cfg = SystemConfig::new(n, 1, (n - 1) / 2).unwrap();
        let outcome = SyncRunner::new(cfg)
            .horizon(Duration::deltas(8))
            .run(|p| Chatter { me: p, n, bound, threshold: u32::MAX, decided: None });
        let mut sends: std::collections::HashMap<(u32, u32, String), Vec<Time>> =
            std::collections::HashMap::new();
        for ev in outcome.trace.events() {
            match ev {
                TraceEvent::MessageSent { time, from, to, kind } => sends
                    .entry((from.as_u32(), to.as_u32(), kind.clone()))
                    .or_default()
                    .push(*time),
                TraceEvent::MessageDelivered { time, .. } => {
                    prop_assert_eq!(
                        time.units() % DELTA.units(),
                        0,
                        "delivery off-boundary at {:?}",
                        time
                    );
                }
                _ => {}
            }
        }
        // Every send leaves on a boundary too (instantaneous handlers at
        // boundary-aligned deliveries/timers).
        for times in sends.values() {
            for t in times {
                prop_assert_eq!(t.units() % DELTA.units(), 0);
            }
        }
    }

    /// Crashed processes take no action after their crash time.
    #[test]
    fn crashed_processes_are_silent(
        seed in 0u64..100_000,
        victim in 0u32..5,
        crash_units in 0u64..4000,
    ) {
        let n = 5;
        let cfg = SystemConfig::new(n, 1, 2).unwrap();
        let crash_at = Time::from_units(crash_units);
        let outcome = SimulationBuilder::new(cfg)
            .delay_model(RandomDelay::sub_delta(seed))
            .crash_at(ProcessId::new(victim), crash_at)
            .build(|p| Chatter { me: p, n, bound: 3, threshold: u32::MAX, decided: None })
            .run(Time::ZERO + Duration::deltas(8));
        for ev in outcome.trace.events() {
            let acted = match ev {
                TraceEvent::MessageSent { time, from, .. } => Some((*from, *time)),
                TraceEvent::MessageDelivered { time, to, .. } => Some((*to, *time)),
                TraceEvent::TimerFired { time, process, .. } => Some((*process, *time)),
                _ => None,
            };
            if let Some((who, when)) = acted {
                if who == ProcessId::new(victim) {
                    prop_assert!(
                        when <= crash_at,
                        "crashed {who} acted at {when} (crash at {crash_at})"
                    );
                }
            }
        }
    }

    /// Trace decisions and the outcome decision table agree.
    #[test]
    fn trace_and_outcome_decisions_agree(seed in 0u64..100_000, n in 3usize..6) {
        let cfg = SystemConfig::new(n, 1, (n - 1) / 2).unwrap();
        let outcome = SimulationBuilder::new(cfg)
            .delay_model(RandomDelay::sub_delta(seed))
            .build(|p| Chatter { me: p, n, bound: 4, threshold: 2, decided: None })
            .run(Time::ZERO + Duration::deltas(8));
        for (i, slot) in outcome.decisions.iter().enumerate() {
            let p = ProcessId::new(i as u32);
            let first_in_trace = outcome.trace.first_decision(p);
            prop_assert_eq!(*slot, first_in_trace, "{}", p);
        }
    }
}
