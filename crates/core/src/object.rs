//! The consensus-object wrapper.

use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::{ProcessId, SystemConfig, Value};

use crate::builder::TwoStepBuilder;
use crate::consensus::{DecisionPath, TwoStep};
use crate::msg::Msg;

/// The paper's protocol as a consensus **object** (Figure 1 *with* the
/// red lines): processes propose values by explicitly invoking
/// `propose(v)` — possibly never — and the two extra preconditions
/// constrain the fast path:
///
/// * `propose(v)` only takes effect if the process has not yet voted
///   (`val = ⊥`);
/// * a `Propose(v)` from another process is accepted only if this
///   process has not proposed, or proposed the same `v`
///   (`initial_val ≠ ⊥ ⟹ v = initial_val`).
///
/// These restrictions are what allow the object formulation to shave one
/// more process off the bound: implementable iff
/// `n ≥ max{2e+f-1, 2f+1}` (Theorem 6); use
/// [`SystemConfig::minimal_object`] for the tight configuration.
///
/// # Example
///
/// ```rust
/// use twostep_core::ObjectConsensus;
/// use twostep_sim::SyncRunner;
/// use twostep_types::{ProcessId, SystemConfig, Time};
///
/// // Definition A.1(1): a lone proposer decides its own value by 2Δ.
/// let cfg = SystemConfig::minimal_object(2, 2)?; // n = 5
/// let proposer = ProcessId::new(4);
/// let outcome = SyncRunner::new(cfg).run_object(
///     |p| ObjectConsensus::<u64>::new(cfg, p),
///     vec![(proposer, 7, Time::ZERO)],
/// );
/// let (fast, v) = outcome.fast_deciders();
/// assert!(fast.contains(proposer));
/// assert_eq!(v, Some(7));
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ObjectConsensus<V>(TwoStep<V>);

impl<V: Value> ObjectConsensus<V> {
    /// Creates an object instance for `me` (no proposal yet) with
    /// default options — sugar for
    /// [`TwoStepBuilder::object`](crate::TwoStepBuilder::object). Use
    /// the builder to select an Ω mode, ablations, or telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg`.
    pub fn new(cfg: SystemConfig, me: ProcessId) -> Self {
        TwoStepBuilder::new(cfg).object(me)
    }

    /// Wraps a machine built by [`TwoStepBuilder`].
    pub(crate) fn from_machine(inner: TwoStep<V>) -> Self {
        ObjectConsensus(inner)
    }

    /// Attaches telemetry hooks (builder style).
    pub fn observed(self, obs: twostep_telemetry::ObserverHandle) -> Self {
        ObjectConsensus(self.0.observed(obs))
    }

    /// The underlying state machine, for white-box inspection.
    pub fn inner(&self) -> &TwoStep<V> {
        &self.0
    }

    /// How the decision was reached, if decided.
    pub fn decision_path(&self) -> Option<DecisionPath> {
        self.0.decision_path()
    }

    /// Updates the leader hint of a statically-configured Ω.
    pub fn set_leader_hint(&mut self, leader: ProcessId) {
        self.0.set_leader_hint(leader);
    }
}

impl<V: Value> Protocol<V> for ObjectConsensus<V> {
    type Message = Msg<V>;

    fn id(&self) -> ProcessId {
        self.0.id()
    }

    fn on_start(&mut self, eff: &mut Effects<V, Msg<V>>) {
        self.0.on_start(eff);
    }

    fn on_propose(&mut self, value: V, eff: &mut Effects<V, Msg<V>>) {
        self.0.on_propose(value, eff);
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg<V>, eff: &mut Effects<V, Msg<V>>) {
        self.0.on_message(from, msg, eff);
    }

    fn on_timer(&mut self, timer: TimerId, eff: &mut Effects<V, Msg<V>>) {
        self.0.on_timer(timer, eff);
    }

    fn decision(&self) -> Option<V> {
        self.0.decision()
    }

    fn state_fingerprint(&self) -> u64 {
        self.0.state_fingerprint()
    }

    fn state_fingerprint_relabeled(&self, rl: &twostep_types::relabel::Relabeling) -> Option<u64> {
        self.0.state_fingerprint_relabeled(rl)
    }

    fn message_is_noop(&self, from: ProcessId, msg: &Msg<V>) -> bool {
        self.0.message_is_noop(from, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_starts_without_proposal() {
        let cfg = SystemConfig::minimal_object(2, 2).unwrap();
        let mut o = ObjectConsensus::<u64>::new(cfg, ProcessId::new(0));
        let mut eff = Effects::new();
        o.on_start(&mut eff);
        assert!(
            !eff.sends.iter().any(|(_, m)| matches!(m, Msg::Propose(_))),
            "no Propose before propose() is invoked"
        );
        assert_eq!(o.inner().initial_value(), None);

        let mut eff = Effects::new();
        o.on_propose(9, &mut eff);
        assert!(eff.sends.iter().any(|(_, m)| matches!(m, Msg::Propose(9))));
        assert_eq!(o.inner().initial_value(), Some(&9));
    }
}
