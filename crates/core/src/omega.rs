//! The Ω leader-election service (§C.1).
//!
//! Under partial synchrony Ω is implementable with heartbeats (Chandra &
//! Toueg): every process periodically broadcasts a beacon; a process
//! suspects the peers it has not heard from recently and trusts the
//! lowest-id unsuspected process. After GST all correct processes hear
//! each other within `Δ`, so they converge on the same correct leader —
//! which is all the protocol needs for Termination.
//!
//! For deterministic unit tests, [`OmegaMode::Static`] pins the leader
//! and suppresses heartbeat traffic.

use twostep_types::{ProcessId, ProcessSet};

/// How the Ω service obtains its leader estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OmegaMode {
    /// Heartbeat-based failure detection (the real mechanism).
    Heartbeats,
    /// A fixed leader; no heartbeats are exchanged. Only for tests and
    /// experiments that control crashes explicitly.
    Static(ProcessId),
}

/// Per-process Ω state.
///
/// # Example
///
/// ```rust
/// use twostep_core::{Omega, OmegaMode};
/// use twostep_types::ProcessId;
///
/// let mut omega = Omega::new(ProcessId::new(2), 4, OmegaMode::Heartbeats);
/// assert_eq!(omega.leader(), ProcessId::new(0)); // everyone trusted at start
///
/// // One sweep with only p2 (self) and p3 heard: p0, p1 become suspects.
/// omega.observe(ProcessId::new(3));
/// omega.sweep();
/// assert_eq!(omega.leader(), ProcessId::new(2));
/// ```
#[derive(Debug, Clone)]
pub struct Omega {
    me: ProcessId,
    n: usize,
    mode: OmegaMode,
    rotation: u32,
    heard: ProcessSet,
    suspected: ProcessSet,
}

impl Omega {
    /// Creates the Ω state for process `me` in a system of `n`.
    pub fn new(me: ProcessId, n: usize, mode: OmegaMode) -> Self {
        Self::with_rotation(me, n, mode, 0)
    }

    /// Creates the Ω state with a rotated preference order: in heartbeat
    /// mode the leader is the first *unsuspected* process scanning ids
    /// cyclically from `rotation % n` (so with nothing suspected the
    /// leader is `rotation % n` itself). Sharded deployments use this to
    /// spread the per-group leaders round-robin across the nodes while
    /// keeping the failure-detection behaviour identical: every correct
    /// process still converges on the same leader after GST, because
    /// they scan the same cyclic order over the same suspicion sets.
    /// `rotation = 0` reproduces [`Omega::new`] exactly (lowest-id
    /// unsuspected).
    pub fn with_rotation(me: ProcessId, n: usize, mode: OmegaMode, rotation: u32) -> Self {
        Omega {
            me,
            n,
            mode,
            rotation: rotation % n as u32,
            heard: ProcessSet::new(),
            suspected: ProcessSet::new(),
        }
    }

    /// The mode this instance runs in.
    pub fn mode(&self) -> OmegaMode {
        self.mode
    }

    /// Whether heartbeat traffic should be generated.
    pub fn uses_heartbeats(&self) -> bool {
        matches!(self.mode, OmegaMode::Heartbeats)
    }

    /// Records evidence that `q` is alive (any message counts, not just
    /// heartbeats).
    pub fn observe(&mut self, q: ProcessId) {
        self.heard.insert(q);
    }

    /// Periodic suspicion sweep: peers not heard from since the previous
    /// sweep become suspects; the evidence window resets.
    pub fn sweep(&mut self) {
        if let OmegaMode::Static(_) = self.mode {
            return;
        }
        let mut trusted = self.heard;
        trusted.insert(self.me);
        self.suspected = trusted.complement(self.n);
        self.heard = ProcessSet::new();
    }

    /// The current leader estimate: the first unsuspected process in
    /// cyclic id order starting from the rotation offset (the lowest-id
    /// unsuspected process when the rotation is 0, the default).
    pub fn leader(&self) -> ProcessId {
        match self.mode {
            OmegaMode::Static(p) => p,
            OmegaMode::Heartbeats => {
                let trusted = self.suspected.complement(self.n);
                (0..self.n as u32)
                    .map(|k| ProcessId::new((self.rotation + k) % self.n as u32))
                    .find(|&p| trusted.contains(p))
                    .unwrap_or(self.me)
            }
        }
    }

    /// The rotation offset this instance scans from.
    pub fn rotation(&self) -> u32 {
        self.rotation
    }

    /// Whether this process currently believes itself to be the leader.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.me
    }

    /// The currently suspected processes.
    pub fn suspected(&self) -> ProcessSet {
        self.suspected
    }

    /// Overrides the pinned leader of a [`OmegaMode::Static`] instance.
    ///
    /// Used by layers that run their own failure detection (e.g. the SMR
    /// replica, which maintains one Ω for all its consensus instances)
    /// and feed the elected leader down to statically-configured
    /// instances. No-op in heartbeat mode.
    pub fn set_static_leader(&mut self, leader: ProcessId) {
        if let OmegaMode::Static(p) = &mut self.mode {
            *p = leader;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn initial_leader_is_p0() {
        let omega = Omega::new(p(3), 5, OmegaMode::Heartbeats);
        assert_eq!(omega.leader(), p(0));
        assert!(!omega.is_leader());
        assert!(omega.suspected().is_empty());
    }

    #[test]
    fn static_mode_pins_leader_and_ignores_sweeps() {
        let mut omega = Omega::new(p(0), 5, OmegaMode::Static(p(4)));
        assert_eq!(omega.leader(), p(4));
        assert!(!omega.uses_heartbeats());
        omega.sweep();
        omega.sweep();
        assert_eq!(omega.leader(), p(4));
        assert!(omega.suspected().is_empty());
    }

    #[test]
    fn sweep_suspects_silent_peers() {
        let mut omega = Omega::new(p(2), 4, OmegaMode::Heartbeats);
        omega.observe(p(0));
        omega.observe(p(3));
        omega.sweep();
        // p1 silent → suspected; leader is lowest unsuspected = p0.
        assert!(omega.suspected().contains(p(1)));
        assert_eq!(omega.leader(), p(0));

        // Next window: p0 goes silent too.
        omega.observe(p(3));
        omega.sweep();
        assert!(omega.suspected().contains(p(0)));
        assert_eq!(omega.leader(), p(2), "self is never suspected");
        assert!(omega.is_leader());
    }

    #[test]
    fn recovery_after_silence() {
        let mut omega = Omega::new(p(1), 3, OmegaMode::Heartbeats);
        omega.sweep(); // nobody heard: suspect all others
        assert_eq!(omega.leader(), p(1));
        omega.observe(p(0));
        omega.sweep();
        assert_eq!(omega.leader(), p(0), "p0 trusted again after beacon");
    }

    #[test]
    fn rotation_shifts_the_initial_leader() {
        for r in 0..5u32 {
            let omega = Omega::with_rotation(p(0), 5, OmegaMode::Heartbeats, r);
            assert_eq!(omega.leader(), p(r), "nothing suspected: leader = rotation");
        }
        // Rotation is reduced mod n.
        let omega = Omega::with_rotation(p(0), 5, OmegaMode::Heartbeats, 7);
        assert_eq!(omega.leader(), p(2));
        assert_eq!(omega.rotation(), 2);
    }

    #[test]
    fn rotated_leader_skips_suspects_cyclically() {
        let mut omega = Omega::with_rotation(p(0), 4, OmegaMode::Heartbeats, 3);
        assert_eq!(omega.leader(), p(3));
        // p3 goes silent: the scan wraps to p0.
        omega.observe(p(1));
        omega.observe(p(2));
        omega.sweep();
        assert!(omega.suspected().contains(p(3)));
        assert_eq!(omega.leader(), p(0), "cyclic scan wraps past the suspect");

        // Everyone but self silent: self wins regardless of rotation.
        omega.sweep();
        assert_eq!(omega.leader(), p(0));
    }

    #[test]
    fn zero_rotation_matches_lowest_id_rule() {
        let mut rotated = Omega::with_rotation(p(2), 4, OmegaMode::Heartbeats, 0);
        let mut plain = Omega::new(p(2), 4, OmegaMode::Heartbeats);
        for round in 0..3 {
            if round != 1 {
                rotated.observe(p(0));
                plain.observe(p(0));
            }
            rotated.observe(p(3));
            plain.observe(p(3));
            rotated.sweep();
            plain.sweep();
            assert_eq!(rotated.leader(), plain.leader());
        }
    }

    #[test]
    fn evidence_window_resets_each_sweep() {
        let mut omega = Omega::new(p(0), 3, OmegaMode::Heartbeats);
        omega.observe(p(1));
        omega.sweep();
        assert!(!omega.suspected().contains(p(1)));
        // No new evidence in this window.
        omega.sweep();
        assert!(omega.suspected().contains(p(1)));
    }
}
