//! Wire messages of the two-step protocol (Figure 1).

use serde::{Deserialize, Serialize};

use twostep_types::{Ballot, ProcessId};

/// Messages exchanged by [`crate::TwoStep`].
///
/// The names follow the paper (which follows Paxos): `1A`/`1B` prepare a
/// slow ballot, `2A`/`2B` vote in it; `Propose` and the fast-ballot `2B`
/// form the fast path; `Decide` disseminates decisions; `Heartbeat`
/// implements the Ω failure-detector substrate (§C.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Msg<V> {
    /// Fast-path proposal broadcast by a proposer (Figure 1 line 5).
    Propose(V),
    /// Ballot-joining request from a would-be leader (line 39).
    OneA(Ballot),
    /// State report answering a `1A` (line 31).
    OneB {
        /// The ballot being joined.
        bal: Ballot,
        /// Last ballot in which the sender voted.
        vbal: Ballot,
        /// The sender's current vote (`⊥` if none).
        val: Option<V>,
        /// Proposer of `val` (`⊥` if none) — drives the recovery rule's
        /// proposer-exclusion set `R`.
        proposer: Option<ProcessId>,
        /// The sender's decision (`⊥` if undecided).
        decided: Option<V>,
    },
    /// The leader's proposal for a slow ballot (line 63).
    TwoA(Ballot, V),
    /// A vote: in ballot 0 it answers a `Propose` (line 13); in slow
    /// ballots it answers a `2A` (line 69).
    TwoB(Ballot, V),
    /// Decision dissemination (line 20).
    Decide(V),
    /// Ω liveness beacon (§C.1 substrate).
    Heartbeat,
}

impl<V> Msg<V> {
    /// Whether this message belongs to the fast path.
    pub fn is_fast_path(&self) -> bool {
        matches!(self, Msg::Propose(_) | Msg::TwoB(Ballot::FAST, _))
    }

    /// The ballot carried by the message, if any.
    pub fn ballot(&self) -> Option<Ballot> {
        match self {
            Msg::OneA(b) | Msg::TwoA(b, _) | Msg::TwoB(b, _) => Some(*b),
            Msg::OneB { bal, .. } => Some(*bal),
            Msg::Propose(_) | Msg::Decide(_) | Msg::Heartbeat => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_classification() {
        assert!(Msg::Propose(1u64).is_fast_path());
        assert!(Msg::<u64>::TwoB(Ballot::FAST, 1).is_fast_path());
        assert!(!Msg::<u64>::TwoB(Ballot::new(3), 1).is_fast_path());
        assert!(!Msg::<u64>::OneA(Ballot::new(1)).is_fast_path());
        assert!(!Msg::<u64>::Heartbeat.is_fast_path());
    }

    #[test]
    fn ballot_extraction() {
        assert_eq!(
            Msg::<u64>::OneA(Ballot::new(4)).ballot(),
            Some(Ballot::new(4))
        );
        assert_eq!(
            Msg::<u64>::TwoA(Ballot::new(2), 9).ballot(),
            Some(Ballot::new(2))
        );
        assert_eq!(Msg::Propose(9u64).ballot(), None);
        assert_eq!(Msg::<u64>::Heartbeat.ballot(), None);
        let oneb = Msg::<u64>::OneB {
            bal: Ballot::new(7),
            vbal: Ballot::FAST,
            val: None,
            proposer: None,
            decided: None,
        };
        assert_eq!(oneb.ballot(), Some(Ballot::new(7)));
    }
}
