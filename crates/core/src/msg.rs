//! Wire messages of the two-step protocol (Figure 1).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use twostep_types::relabel::{RelabelHash, Relabeling};
use twostep_types::{Ballot, ProcessId};

/// Messages exchanged by [`crate::TwoStep`].
///
/// The names follow the paper (which follows Paxos): `1A`/`1B` prepare a
/// slow ballot, `2A`/`2B` vote in it; `Propose` and the fast-ballot `2B`
/// form the fast path; `Decide` disseminates decisions; `Heartbeat`
/// implements the Ω failure-detector substrate (§C.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Msg<V> {
    /// Fast-path proposal broadcast by a proposer (Figure 1 line 5).
    Propose(V),
    /// Ballot-joining request from a would-be leader (line 39).
    OneA(Ballot),
    /// State report answering a `1A` (line 31).
    OneB {
        /// The ballot being joined.
        bal: Ballot,
        /// Last ballot in which the sender voted.
        vbal: Ballot,
        /// The sender's current vote (`⊥` if none).
        val: Option<V>,
        /// Proposer of `val` (`⊥` if none) — drives the recovery rule's
        /// proposer-exclusion set `R`.
        proposer: Option<ProcessId>,
        /// The sender's decision (`⊥` if undecided).
        decided: Option<V>,
    },
    /// The leader's proposal for a slow ballot (line 63).
    TwoA(Ballot, V),
    /// A vote: in ballot 0 it answers a `Propose` (line 13); in slow
    /// ballots it answers a `2A` (line 69).
    TwoB(Ballot, V),
    /// Decision dissemination (line 20).
    Decide(V),
    /// Ω liveness beacon (§C.1 substrate).
    Heartbeat,
}

impl<V> Msg<V> {
    /// Whether this message belongs to the fast path.
    pub fn is_fast_path(&self) -> bool {
        matches!(self, Msg::Propose(_) | Msg::TwoB(Ballot::FAST, _))
    }

    /// The ballot carried by the message, if any.
    pub fn ballot(&self) -> Option<Ballot> {
        match self {
            Msg::OneA(b) | Msg::TwoA(b, _) | Msg::TwoB(b, _) => Some(*b),
            Msg::OneB { bal, .. } => Some(*bal),
            Msg::Propose(_) | Msg::Decide(_) | Msg::Heartbeat => None,
        }
    }
}

impl<V: Hash> RelabelHash for Msg<V> {
    /// Content hash with the embedded process ids (the `OneB` proposer
    /// and every ballot owner) mapped through `rl`. Ballots whose
    /// owner `rl` moves decline the permutation (see
    /// [`Relabeling::ballot`]); values are id-free and hash directly.
    fn relabel_hash(&self, rl: &Relabeling) -> Option<u64> {
        let mut h = DefaultHasher::new();
        match self {
            Msg::Propose(v) => {
                0u8.hash(&mut h);
                v.hash(&mut h);
            }
            Msg::OneA(b) => {
                1u8.hash(&mut h);
                rl.ballot(*b)?.hash(&mut h);
            }
            Msg::OneB {
                bal,
                vbal,
                val,
                proposer,
                decided,
            } => {
                2u8.hash(&mut h);
                rl.ballot(*bal)?.hash(&mut h);
                rl.ballot(*vbal)?.hash(&mut h);
                val.hash(&mut h);
                proposer.map(|p| rl.pid(p)).hash(&mut h);
                decided.hash(&mut h);
            }
            Msg::TwoA(b, v) => {
                3u8.hash(&mut h);
                rl.ballot(*b)?.hash(&mut h);
                v.hash(&mut h);
            }
            Msg::TwoB(b, v) => {
                4u8.hash(&mut h);
                rl.ballot(*b)?.hash(&mut h);
                v.hash(&mut h);
            }
            Msg::Decide(v) => {
                5u8.hash(&mut h);
                v.hash(&mut h);
            }
            Msg::Heartbeat => 6u8.hash(&mut h),
        }
        Some(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_classification() {
        assert!(Msg::Propose(1u64).is_fast_path());
        assert!(Msg::<u64>::TwoB(Ballot::FAST, 1).is_fast_path());
        assert!(!Msg::<u64>::TwoB(Ballot::new(3), 1).is_fast_path());
        assert!(!Msg::<u64>::OneA(Ballot::new(1)).is_fast_path());
        assert!(!Msg::<u64>::Heartbeat.is_fast_path());
    }

    #[test]
    fn ballot_extraction() {
        assert_eq!(
            Msg::<u64>::OneA(Ballot::new(4)).ballot(),
            Some(Ballot::new(4))
        );
        assert_eq!(
            Msg::<u64>::TwoA(Ballot::new(2), 9).ballot(),
            Some(Ballot::new(2))
        );
        assert_eq!(Msg::Propose(9u64).ballot(), None);
        assert_eq!(Msg::<u64>::Heartbeat.ballot(), None);
        let oneb = Msg::<u64>::OneB {
            bal: Ballot::new(7),
            vbal: Ballot::FAST,
            val: None,
            proposer: None,
            decided: None,
        };
        assert_eq!(oneb.ballot(), Some(Ballot::new(7)));
    }
}
