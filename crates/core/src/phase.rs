//! Protocol phases as types: the typestate core behind [`TwoStep`].
//!
//! Each phase of Figure 1 is a distinct type, and every transition is a
//! method that *consumes* the source phase, returns the target phase,
//! and takes the [`Effects`] sink — so a transition cannot occur without
//! the sends the paper attaches to it (the 1B reply of lines 29–31, the
//! 2B vote of line 69, the 2A broadcast of line 62, the `Decide`
//! broadcast of line 17). Illegal transitions are not runtime bugs the
//! lint or model checker must catch; they simply do not exist as
//! methods.
//!
//! The voter-side phases (per-process state of Figure 1):
//!
//! * [`FastVoting`] — ballot 0, lines 9–16: the process may vote for a
//!   `Propose` and may fast-decide its own proposal. The object
//!   variant's red-line precondition exists only on states born from
//!   the crate-internal `FastVoting::object` constructor.
//! * [`SlowBallot`] — lines 27–31 and 65–69: the process has joined a
//!   slow ballot; it answers `1A` with its report and votes on `2A`.
//!   Entered from the crate-internal `FastVoting::join` /
//!   `FastVoting::adopt` transitions and never left except by
//!   deciding.
//! * [`Decided`] — lines 16–25: a decision certificate plus the still
//!   live ballot position, because a decided process keeps serving
//!   `1B` reports (carrying `decided`, which recovery's
//!   reported-decision branch resurrects) and `2B` votes.
//!
//! The leader-side phases (lines 42–63, one ballot at a time):
//!
//! * [`LeaderPhase::Idle`] — not coordinating.
//! * [`Collecting`] — a `1A` broadcast is out (the crate-internal
//!   `Collecting::open` is the only way in, and it broadcasts as it
//!   constructs) and `1B` reports are accumulating.
//! * [`Proposing`] — the `1B` quorum is frozen and the recovery rule
//!   has chosen the ballot's value (`Collecting::propose`, which
//!   consumes the collector and forces the `2A` broadcast).
//!
//! The recovery rule's two vote-count cases are themselves types —
//! [`crate::recovery::RecoveryGt`] and [`crate::recovery::RecoveryEq`]
//! — so the paper's max-value tie-break (line 58) only exists where the
//! paper applies it: on the exact-threshold case.
//!
//! [`TwoStep`]: crate::TwoStep
//! [`Effects`]: twostep_types::protocol::Effects

use twostep_types::protocol::Effects;
use twostep_types::quorum::Collector;
use twostep_types::{Ballot, ProcessId, ProcessSet, Value};

use crate::consensus::{Common, DecisionPath};
use crate::msg::Msg;
use crate::recovery::{classify, Recovery, Report};

/// Which voter-side phase a process is in (observable shadow of the
/// phase types, for tests and telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseKind {
    /// Ballot 0: may still vote fast and fast-decide.
    FastVoting,
    /// Joined a slow ballot; fast path permanently closed.
    SlowBallot,
    /// Holds a decision certificate.
    Decided,
}

/// Which leader-side phase a process is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeaderPhase {
    /// Not coordinating a ballot.
    Idle,
    /// Collecting `1B` reports for an open ballot.
    Collecting,
    /// Phase one complete: the ballot's value is fixed (or the ballot
    /// yields nothing) and `2B` votes are being counted.
    Proposing,
}

// ---------------------------------------------------------------------
// Voter-side phases
// ---------------------------------------------------------------------

/// The fast-voting phase: `bal = 0`, lines 9–16 of Figure 1.
#[derive(Debug, Clone)]
pub struct FastVoting<V> {
    /// Current vote (`val`), `⊥` if none.
    val: Option<V>,
    /// Proposer of `val`.
    proposer: Option<ProcessId>,
    /// The object variant's red-line precondition, armed only by
    /// [`FastVoting::object`]: a `Propose(v)` is accepted only if this
    /// process has not proposed, or proposed the same `v`.
    red_line: bool,
}

impl<V: Value> FastVoting<V> {
    /// Birth state of the consensus *task* (Figure 1 without the red
    /// lines).
    pub(crate) fn task() -> Self {
        FastVoting {
            val: None,
            proposer: None,
            red_line: false,
        }
    }

    /// Birth state of the consensus *object*, with the red-line vote
    /// precondition armed. This constructor is the only source of the
    /// red line: task-born states cannot acquire it.
    pub(crate) fn object() -> Self {
        FastVoting {
            val: None,
            proposer: None,
            red_line: true,
        }
    }

    /// Placeholder used while a transition is in flight; never
    /// observable.
    pub(crate) fn vacant() -> Self {
        FastVoting {
            val: None,
            proposer: None,
            red_line: false,
        }
    }

    /// Current vote.
    pub fn val(&self) -> Option<&V> {
        self.val.as_ref()
    }

    /// Proposer of the current vote.
    pub fn proposer(&self) -> Option<ProcessId> {
        self.proposer
    }

    /// Whether the red-line precondition is armed (object variant).
    pub fn red_line(&self) -> bool {
        self.red_line
    }

    /// Lines 9–13: vote for a `Propose(v)` from `from` if the
    /// preconditions hold (`val = ⊥`, `v ≥ initial_val`, and — only on
    /// object-born states — the red line `initial_val ≠ ⊥ ⟹ v =
    /// initial_val`). Voting sends the fast `2B` to the proposer.
    pub(crate) fn consider(
        &mut self,
        common: &Common<V>,
        from: ProcessId,
        v: &V,
        eff: &mut Effects<V, Msg<V>>,
    ) {
        let geq_initial = common.initial_val.as_ref().is_none_or(|iv| *v >= *iv);
        let red_line_ok = !self.red_line
            || common.ablations.no_object_guard
            || common.initial_val.as_ref().is_none_or(|iv| *v == *iv);
        if self.val.is_none() && geq_initial && red_line_ok {
            self.val = Some(v.clone());
            self.proposer = Some(from);
            eff.send(from, Msg::TwoB(Ballot::FAST, v.clone()));
        }
    }

    /// Line 16, first disjunct: fast-path decision check. Consumes the
    /// phase; on success the `Decide` broadcast is forced by the
    /// transition itself.
    pub(crate) fn try_fast_decide(
        self,
        common: &mut Common<V>,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Phase<V> {
        let Some(v) = common.initial_val.clone() else {
            return Phase::Fast(self);
        };
        // `val ∈ {⊥, v}`: a vote for someone else's value blocks us.
        if let Some(cur) = &self.val {
            if *cur != v {
                return Phase::Fast(self);
            }
        }
        let mut supporters = common.fast_votes;
        supporters.insert(common.me); // `|P ∪ {p_i}| ≥ n - e`
        if supporters.len() >= common.cfg.fast_quorum() {
            let n = common.cfg.n();
            let me = common.me;
            let decided = Decided::record(
                Voter::Fast(self),
                v.clone(),
                DecisionPath::Fast,
                common,
                eff,
            );
            eff.broadcast_others(Msg::Decide(v), n, me);
            Phase::Decided(decided)
        } else {
            Phase::Fast(self)
        }
    }

    /// Lines 27–31: join slow ballot `b > 0`, leaving the fast phase
    /// forever. The transition replies the `1B` report to `from`
    /// (`decided` is the certificate of an already-decided voter, `⊥`
    /// here on the undecided path).
    pub(crate) fn join(
        self,
        common: &mut Common<V>,
        from: ProcessId,
        b: Ballot,
        decided: Option<V>,
        eff: &mut Effects<V, Msg<V>>,
    ) -> SlowBallot<V> {
        common.obs.ballot_advanced(common.me);
        eff.send(
            from,
            Msg::OneB {
                bal: b,
                vbal: Ballot::FAST,
                val: self.val.clone(),
                proposer: self.proposer,
                decided,
            },
        );
        SlowBallot {
            bal: b,
            vbal: Ballot::FAST,
            val: self.val,
            proposer: self.proposer,
        }
    }

    /// Lines 65–69 with `b > 0`: adopt a `2A` value, voting `2B` and
    /// leaving the fast phase.
    pub(crate) fn adopt(
        self,
        common: &mut Common<V>,
        from: ProcessId,
        b: Ballot,
        v: V,
        eff: &mut Effects<V, Msg<V>>,
    ) -> SlowBallot<V> {
        common.obs.ballot_advanced(common.me);
        eff.send(from, Msg::TwoB(b, v.clone()));
        SlowBallot {
            bal: b,
            vbal: b,
            val: Some(v),
            proposer: self.proposer,
        }
    }

    /// Lines 65–69 with `b = 0` (a fast `2A`, unreachable from correct
    /// peers but handled for uniformity): revote without leaving the
    /// phase.
    pub(crate) fn revote(&mut self, from: ProcessId, v: V, eff: &mut Effects<V, Msg<V>>) {
        self.val = Some(v.clone());
        eff.send(from, Msg::TwoB(Ballot::FAST, v));
    }
}

/// The slow-ballot phase: `bal > 0`, lines 27–31 and 65–69.
#[derive(Debug, Clone)]
pub struct SlowBallot<V> {
    /// Current ballot (`bal`).
    bal: Ballot,
    /// Last ballot voted in (`vbal`).
    vbal: Ballot,
    /// Current vote (`val`).
    val: Option<V>,
    /// Proposer of `val`.
    proposer: Option<ProcessId>,
}

impl<V: Value> SlowBallot<V> {
    /// Current ballot.
    pub fn bal(&self) -> Ballot {
        self.bal
    }

    /// Last voted ballot.
    pub fn vbal(&self) -> Ballot {
        self.vbal
    }

    /// Current vote.
    pub fn val(&self) -> Option<&V> {
        self.val.as_ref()
    }

    /// Proposer of the current vote.
    pub fn proposer(&self) -> Option<ProcessId> {
        self.proposer
    }

    /// Lines 27–31: advance to a higher ballot `b`, replying the `1B`
    /// report. A stale `b ≤ bal` leaves the phase untouched.
    pub(crate) fn on_one_a(
        mut self,
        common: &mut Common<V>,
        from: ProcessId,
        b: Ballot,
        decided: Option<V>,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Self {
        if b > self.bal {
            self.bal = b;
            common.obs.ballot_advanced(common.me);
            eff.send(
                from,
                Msg::OneB {
                    bal: b,
                    vbal: self.vbal,
                    val: self.val.clone(),
                    proposer: self.proposer,
                    decided,
                },
            );
        }
        self
    }

    /// Lines 65–69: vote for a `2A` value at `b ≥ bal`.
    pub(crate) fn on_two_a(
        mut self,
        common: &mut Common<V>,
        from: ProcessId,
        b: Ballot,
        v: V,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Self {
        if self.bal <= b {
            self.val = Some(v.clone());
            if b > self.bal {
                common.obs.ballot_advanced(common.me);
            }
            self.bal = b;
            self.vbal = b;
            eff.send(from, Msg::TwoB(b, v));
        }
        self
    }
}

/// The undecided ballot position: fast or slow. Also lives on inside
/// [`Decided`], because a decided process keeps serving reports and
/// votes.
#[derive(Debug, Clone)]
pub(crate) enum Voter<V> {
    /// Still at ballot 0.
    Fast(FastVoting<V>),
    /// In a slow ballot.
    Slow(SlowBallot<V>),
}

impl<V: Value> Voter<V> {
    pub(crate) fn bal(&self) -> Ballot {
        match self {
            Voter::Fast(_) => Ballot::FAST,
            Voter::Slow(s) => s.bal,
        }
    }

    pub(crate) fn vbal(&self) -> Ballot {
        match self {
            Voter::Fast(_) => Ballot::FAST,
            Voter::Slow(s) => s.vbal,
        }
    }

    pub(crate) fn val(&self) -> Option<&V> {
        match self {
            Voter::Fast(f) => f.val.as_ref(),
            Voter::Slow(s) => s.val.as_ref(),
        }
    }

    pub(crate) fn proposer(&self) -> Option<ProcessId> {
        match self {
            Voter::Fast(f) => f.proposer,
            Voter::Slow(s) => s.proposer,
        }
    }

    /// Overwrites the vote (line 23: a decision rewrites `val`).
    pub(crate) fn set_val(&mut self, v: V) {
        match self {
            Voter::Fast(f) => f.val = Some(v),
            Voter::Slow(s) => s.val = Some(v),
        }
    }

    /// `1A` dispatch shared by the decided and undecided positions.
    pub(crate) fn on_one_a(
        self,
        common: &mut Common<V>,
        from: ProcessId,
        b: Ballot,
        decided: Option<V>,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Voter<V> {
        match self {
            Voter::Fast(f) if b > Ballot::FAST => {
                Voter::Slow(f.join(common, from, b, decided, eff))
            }
            Voter::Fast(f) => Voter::Fast(f),
            Voter::Slow(s) => Voter::Slow(s.on_one_a(common, from, b, decided, eff)),
        }
    }

    /// `2A` dispatch shared by the decided and undecided positions.
    pub(crate) fn on_two_a(
        self,
        common: &mut Common<V>,
        from: ProcessId,
        b: Ballot,
        v: V,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Voter<V> {
        match self {
            Voter::Fast(mut f) if b == Ballot::FAST => {
                f.revote(from, v, eff);
                Voter::Fast(f)
            }
            Voter::Fast(f) => Voter::Slow(f.adopt(common, from, b, v, eff)),
            Voter::Slow(s) => Voter::Slow(s.on_two_a(common, from, b, v, eff)),
        }
    }
}

/// The decided phase: a decision certificate (lines 16–25) plus the
/// still-live ballot position.
#[derive(Debug, Clone)]
pub struct Decided<V> {
    /// The ballot position keeps answering `1A`/`2A` so recovery can
    /// learn the decision from this process's reports.
    voter: Voter<V>,
    /// The decision (`decided`).
    value: V,
    /// How it was reached.
    path: DecisionPath,
}

impl<V: Value> Decided<V> {
    /// Lines 17/21/24: records a decision, emitting the decision effect
    /// — the only constructor, so a `Decided` state cannot exist
    /// without its decision having been surfaced to the engine.
    pub(crate) fn record(
        mut voter: Voter<V>,
        v: V,
        path: DecisionPath,
        common: &mut Common<V>,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Self {
        voter.set_val(v.clone());
        // Report the path before the engine drains the decision effect,
        // so the engine's latency report joins onto it.
        common.obs.decided(common.me, common.refined_path(path));
        eff.decide(v.clone());
        Decided {
            voter,
            value: v,
            path,
        }
    }

    /// The decided value.
    pub fn value(&self) -> &V {
        &self.value
    }

    /// How the decision was reached.
    pub fn path(&self) -> DecisionPath {
        self.path
    }

    /// Lines 22–25 after deciding: a redundant `Decide` rewrites `val`;
    /// a *conflicting* one is surfaced as a second decision effect so
    /// the trace checkers can flag the agreement violation (reachable
    /// only under ablations or below-bound configurations).
    pub(crate) fn on_decide(&mut self, v: V, eff: &mut Effects<V, Msg<V>>) {
        self.voter.set_val(v.clone());
        if self.value != v {
            eff.decide(v);
        }
    }

    /// `1A` while decided: the report carries the certificate.
    pub(crate) fn on_one_a(
        mut self,
        common: &mut Common<V>,
        from: ProcessId,
        b: Ballot,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Self {
        let decided = Some(self.value.clone());
        self.voter = self.voter.on_one_a(common, from, b, decided, eff);
        self
    }

    /// `2A` while decided: still votes (the ballot may outrun the
    /// certificate's propagation).
    pub(crate) fn on_two_a(
        mut self,
        common: &mut Common<V>,
        from: ProcessId,
        b: Ballot,
        v: V,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Self {
        self.voter = self.voter.on_two_a(common, from, b, v, eff);
        self
    }
}

/// The voter-side phase of one process: the enum the thin
/// [`Protocol`](twostep_types::protocol::Protocol) wrapper dispatches
/// over.
#[derive(Debug, Clone)]
pub(crate) enum Phase<V> {
    /// Ballot 0 (lines 9–16).
    Fast(FastVoting<V>),
    /// A slow ballot (lines 27–31, 65–69).
    Slow(SlowBallot<V>),
    /// Decided (lines 16–25).
    Decided(Decided<V>),
}

impl<V: Value> Phase<V> {
    /// Takes the phase out of `slot` for a consuming transition,
    /// leaving a vacant placeholder that is immediately overwritten.
    pub(crate) fn take(slot: &mut Phase<V>) -> Phase<V> {
        std::mem::replace(slot, Phase::Fast(FastVoting::vacant()))
    }

    /// The observable phase kind.
    pub(crate) fn kind(&self) -> PhaseKind {
        match self {
            Phase::Fast(_) => PhaseKind::FastVoting,
            Phase::Slow(_) => PhaseKind::SlowBallot,
            Phase::Decided(_) => PhaseKind::Decided,
        }
    }

    pub(crate) fn bal(&self) -> Ballot {
        match self {
            Phase::Fast(_) => Ballot::FAST,
            Phase::Slow(s) => s.bal,
            Phase::Decided(d) => d.voter.bal(),
        }
    }

    pub(crate) fn vbal(&self) -> Ballot {
        match self {
            Phase::Fast(_) => Ballot::FAST,
            Phase::Slow(s) => s.vbal,
            Phase::Decided(d) => d.voter.vbal(),
        }
    }

    pub(crate) fn val(&self) -> Option<&V> {
        match self {
            Phase::Fast(f) => f.val.as_ref(),
            Phase::Slow(s) => s.val.as_ref(),
            Phase::Decided(d) => d.voter.val(),
        }
    }

    pub(crate) fn proposer(&self) -> Option<ProcessId> {
        match self {
            Phase::Fast(f) => f.proposer,
            Phase::Slow(s) => s.proposer,
            Phase::Decided(d) => d.voter.proposer(),
        }
    }

    pub(crate) fn decided(&self) -> Option<&V> {
        match self {
            Phase::Decided(d) => Some(&d.value),
            Phase::Fast(_) | Phase::Slow(_) => None,
        }
    }

    /// Lines 17/21/24: moves the phase to [`Decided`], recording the
    /// decision through [`Decided::record`]. Re-deciding rewrites `val`
    /// (line 23); a *conflicting* re-decision surfaces a second
    /// decision effect for the trace checkers.
    pub(crate) fn into_decided(
        self,
        v: V,
        path: DecisionPath,
        common: &mut Common<V>,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Phase<V> {
        match self {
            Phase::Fast(f) => Phase::Decided(Decided::record(Voter::Fast(f), v, path, common, eff)),
            Phase::Slow(s) => Phase::Decided(Decided::record(Voter::Slow(s), v, path, common, eff)),
            Phase::Decided(mut d) => {
                d.on_decide(v, eff);
                Phase::Decided(d)
            }
        }
    }

    /// Lines 27–31 dispatch.
    pub(crate) fn on_one_a(
        self,
        common: &mut Common<V>,
        from: ProcessId,
        b: Ballot,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Phase<V> {
        match self {
            Phase::Fast(f) if b > Ballot::FAST => Phase::Slow(f.join(common, from, b, None, eff)),
            Phase::Fast(f) => Phase::Fast(f),
            Phase::Slow(s) => Phase::Slow(s.on_one_a(common, from, b, None, eff)),
            Phase::Decided(d) => Phase::Decided(d.on_one_a(common, from, b, eff)),
        }
    }

    /// Lines 65–69 dispatch.
    pub(crate) fn on_two_a(
        self,
        common: &mut Common<V>,
        from: ProcessId,
        b: Ballot,
        v: V,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Phase<V> {
        match self {
            Phase::Fast(mut f) if b == Ballot::FAST => {
                f.revote(from, v, eff);
                Phase::Fast(f)
            }
            Phase::Fast(f) => Phase::Slow(f.adopt(common, from, b, v, eff)),
            Phase::Slow(s) => Phase::Slow(s.on_two_a(common, from, b, v, eff)),
            Phase::Decided(d) => Phase::Decided(d.on_two_a(common, from, b, v, eff)),
        }
    }
}

// ---------------------------------------------------------------------
// Leader-side phases
// ---------------------------------------------------------------------

/// The leader-side state of one process: which coordination phase (if
/// any) it is in for the ballot it owns.
#[derive(Debug, Clone)]
pub(crate) enum Leader<V> {
    /// Not coordinating.
    Idle,
    /// Phase one in flight.
    Collecting(Collecting<V>),
    /// Phase one complete.
    Proposing(Proposing<V>),
}

impl<V: Value> Leader<V> {
    /// Takes the leader state out of `slot` for a consuming transition.
    pub(crate) fn take(slot: &mut Leader<V>) -> Leader<V> {
        std::mem::replace(slot, Leader::Idle)
    }

    /// The observable leader phase kind.
    pub(crate) fn kind(&self) -> LeaderPhase {
        match self {
            Leader::Idle => LeaderPhase::Idle,
            Leader::Collecting(_) => LeaderPhase::Collecting,
            Leader::Proposing(_) => LeaderPhase::Proposing,
        }
    }

    /// The ballot this process is coordinating, if any (`my_ballot`).
    pub(crate) fn ballot(&self) -> Option<Ballot> {
        match self {
            Leader::Idle => None,
            Leader::Collecting(c) => Some(c.bal),
            Leader::Proposing(p) => Some(p.bal),
        }
    }

    /// The frozen or accumulating `1B` quorum, if any.
    pub(crate) fn reports(&self) -> Option<&Collector<Report<V>>> {
        match self {
            Leader::Idle => None,
            Leader::Collecting(c) => Some(&c.onebs),
            Leader::Proposing(p) => Some(&p.onebs),
        }
    }

    /// The ballot's chosen value, once phase one completed.
    pub(crate) fn slow_value(&self) -> Option<&V> {
        match self {
            Leader::Proposing(p) => p.value.as_ref(),
            Leader::Idle | Leader::Collecting(_) => None,
        }
    }

    /// The `2B` votes counted so far for the chosen value.
    pub(crate) fn slow_votes(&self) -> ProcessSet {
        match self {
            Leader::Proposing(p) => p.votes,
            Leader::Idle | Leader::Collecting(_) => ProcessSet::new(),
        }
    }
}

/// Phase one of a slow ballot, collection side (lines 42–45).
#[derive(Debug, Clone)]
pub struct Collecting<V> {
    /// The ballot being coordinated.
    bal: Ballot,
    /// `1B` reports received so far.
    onebs: Collector<Report<V>>,
}

impl<V: Value> Collecting<V> {
    /// §C.1: opens the next ballot owned by this process, broadcasting
    /// the `1A` — the only constructor, so an open ballot always has
    /// its `1A` on the wire.
    pub(crate) fn open(
        current: Ballot,
        common: &mut Common<V>,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Self {
        let b = current.next_owned_by(common.me, common.cfg.n());
        common.recovery_case = None;
        common.obs.slow_path_entered(common.me);
        eff.broadcast_all(Msg::OneA(b), common.cfg.n());
        Collecting {
            bal: b,
            onebs: Collector::new(),
        }
    }

    /// Lines 42–45: folds in one `1B` report; once a slow quorum is in,
    /// completes phase one via [`Collecting::propose`].
    pub(crate) fn on_report(
        mut self,
        common: &mut Common<V>,
        from: ProcessId,
        report: Report<V>,
        eff: &mut Effects<V, Msg<V>>,
    ) -> Leader<V> {
        self.onebs.insert(from, report);
        if self.onebs.len() >= common.cfg.slow_quorum() {
            Leader::Proposing(self.propose(common, eff))
        } else {
            Leader::Collecting(self)
        }
    }

    /// Lines 46–63: consumes the collector, runs the recovery rule over
    /// the frozen quorum, and — if a value was selected — forces the
    /// `2A` broadcast. The `> n-f-e` and `= n-f-e` cases arrive as the
    /// distinct types [`crate::recovery::RecoveryGt`] /
    /// [`crate::recovery::RecoveryEq`]: only the latter offers the
    /// max-value tie-break.
    fn propose(self, common: &mut Common<V>, eff: &mut Effects<V, Msg<V>>) -> Proposing<V> {
        let (selected, case) = match classify(&common.cfg, &self.onebs, common.ablations) {
            Recovery::ReportedDecision(v) => {
                (Some(v), twostep_telemetry::RecoveryCase::ReportedDecision)
            }
            Recovery::SlowBallot(v) => (v, twostep_telemetry::RecoveryCase::SlowBallot),
            Recovery::Gt(gt) => (Some(gt.into_value()), twostep_telemetry::RecoveryCase::Gt),
            Recovery::Eq(eq) => {
                let v = if common.ablations.no_max_tiebreak {
                    eq.least_ablated()
                } else {
                    eq.greatest()
                };
                (Some(v), twostep_telemetry::RecoveryCase::Eq)
            }
            Recovery::Fallback => (
                common
                    .initial_val
                    .clone()
                    .or_else(|| common.observed.clone()),
                twostep_telemetry::RecoveryCase::Fallback,
            ),
        };
        common.recovery_case = Some(case);
        common.obs.recovery_case(common.me, case);
        if let Some(v) = &selected {
            eff.broadcast_all(Msg::TwoA(self.bal, v.clone()), common.cfg.n());
        }
        Proposing {
            bal: self.bal,
            onebs: self.onebs,
            value: selected,
            votes: ProcessSet::new(),
        }
    }
}

/// Phase two of a slow ballot, leader side (lines 16 second disjunct,
/// 18–21): the value is fixed and `2B` votes are being counted.
#[derive(Debug, Clone)]
pub struct Proposing<V> {
    /// The ballot being coordinated.
    bal: Ballot,
    /// The frozen `1B` quorum phase one selected from.
    onebs: Collector<Report<V>>,
    /// The ballot's value (`⊥` when the recovery rule yielded nothing —
    /// the ballot then simply never gathers votes, line 63's guard).
    value: Option<V>,
    /// `2B` votes received for `value`.
    votes: ProcessSet,
}

impl<V: Value> Proposing<V> {
    /// Counts one `2B` vote; returns whether a slow quorum is now in
    /// (the caller then records the decision, which forces the `Decide`
    /// broadcast).
    pub(crate) fn record_vote(&mut self, from: ProcessId, slow_quorum: usize) -> bool {
        self.votes.insert(from);
        self.votes.len() >= slow_quorum
    }
}
