//! The paper's two-step consensus protocol (Figure 1).
//!
//! This crate implements the protocol of *"Revisiting Lower Bounds for
//! Two-Step Consensus"* (Ryabinin, Gotsman, Sutra; PODC 2025), in both
//! formulations studied by the paper:
//!
//! * [`TaskConsensus`] — the consensus *task*: every process is born
//!   with an initial value; tight bound `n ≥ max{2e+f, 2f+1}`
//!   (Theorem 5).
//! * [`ObjectConsensus`] — the consensus *object*: processes explicitly
//!   invoke `propose(v)` (possibly never); tight bound
//!   `n ≥ max{2e+f-1, 2f+1}` (Theorem 6). This variant adds the paper's
//!   red-line preconditions.
//!
//! Both variants are built through [`TwoStepBuilder`] and share one
//! state-machine shell ([`TwoStep`]) over the typestate phases of
//! [`phase`]: each protocol phase is a distinct type whose transitions
//! consume `self` and issue their sends through the `Effects` sink, so
//! an illegal transition (fast-deciding from a slow ballot, proposing
//! without a frozen `1B` quorum, …) does not typecheck. The key novelty
//! is the value-selection rule run by a new leader
//! ([`recovery::classify`]): votes whose proposer is inside the `1B`
//! quorum are *excluded* (such proposers can no longer take the fast
//! path), and a surviving vote count of exactly `n-f-e` is resolved by a
//! max-value tie-break — a tie-break that only exists on the
//! [`recovery::RecoveryEq`] case type.
//!
//! # Liveness notes (documented deviations)
//!
//! The brief announcement elides two standard mechanisms that this
//! implementation adds for end-to-end liveness; both only ever *add*
//! messages and never alter the vote/selection logic, so the paper's
//! safety argument is untouched:
//!
//! 1. **Proposal retransmission / forwarding.** An object-variant
//!    proposer whose `Propose` reaches processes already in a slow
//!    ballot would otherwise starve (its value is in nobody's
//!    `initial_val` and in no vote). Proposers rebroadcast their
//!    proposal on the new-ballot timer, and every process remembers the
//!    last proposal it has *seen* (even if it could not vote for it);
//!    the recovery rule falls back to such an observed proposal only in
//!    its final branch, where any valid value is safe to choose.
//! 2. **Decision gossip.** A decided process rebroadcasts `Decide` on
//!    its periodic timer so a decision reaches processes that missed the
//!    original broadcast.
//!
//! # Example
//!
//! ```rust
//! use twostep_core::TaskConsensus;
//! use twostep_sim::SyncRunner;
//! use twostep_types::{ProcessId, ProcessSet, SystemConfig};
//!
//! // Theorem 5 bound: e = f = 1 needs n = max{3, 3} = 3... with e=f=2,
//! // n = max{6, 5} = 6.
//! let cfg = SystemConfig::minimal_task(2, 2)?;
//! let proposals: Vec<u64> = (0..cfg.n() as u64).map(|i| 100 + i).collect();
//!
//! // Crash E = {p0, p1} at the start of round 1; favor the highest
//! // correct proposer p5: it must decide by 2Δ.
//! let e: ProcessSet = [0u32, 1].into_iter().map(ProcessId::new).collect();
//! let outcome = SyncRunner::new(cfg)
//!     .crashed(e)
//!     .favoring(ProcessId::new(5))
//!     .run(|p| TaskConsensus::new(cfg, p, proposals[p.index()]));
//!
//! let (fast, value) = outcome.fast_deciders();
//! assert!(fast.contains(ProcessId::new(5)));
//! assert_eq!(value, Some(105));
//! assert!(outcome.agreement());
//! # Ok::<(), twostep_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablation;
mod builder;
mod consensus;
mod msg;
mod object;
mod omega;
pub mod phase;
pub mod recovery;
mod task;

pub use ablation::Ablations;
pub use builder::TwoStepBuilder;
pub use consensus::{DecisionPath, TwoStep, Variant};
pub use msg::Msg;
pub use object::ObjectConsensus;
pub use omega::{Omega, OmegaMode};
pub use phase::{LeaderPhase, PhaseKind};
pub use task::TaskConsensus;
