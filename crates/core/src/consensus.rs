//! The thin [`Protocol`] wrapper over the typestate phases (Figure 1).
//!
//! The protocol itself lives in [`crate::phase`] as one type per phase
//! — [`FastVoting`](crate::phase::FastVoting),
//! [`SlowBallot`](crate::phase::SlowBallot),
//! [`Decided`](crate::phase::Decided) on the voter side;
//! [`Collecting`](crate::phase::Collecting) /
//! [`Proposing`](crate::phase::Proposing) on the leader side — with
//! transitions that consume the source phase and force their sends.
//! [`TwoStep`] is the enum-dispatch shell that keeps the engines (sim,
//! fuzz, SMR, model checker) working unchanged at the [`Protocol`]
//! seam: it owns the phase-independent [`Common`] state, routes each
//! handler call to the current phase, and stores whichever phase the
//! transition returned.

use serde::{Deserialize, Serialize};

use twostep_telemetry::{ObserverHandle, Path, RecoveryCase};
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::{Ballot, Duration, ProcessId, ProcessSet, SystemConfig, Value, DELTA};

use crate::msg::Msg;
use crate::omega::{Omega, OmegaMode};
use crate::phase::{Collecting, Leader, LeaderPhase, Phase, PhaseKind};
use crate::recovery::Report;
use crate::Ablations;

/// Heartbeat broadcast period.
pub(crate) const HEARTBEAT_PERIOD: Duration = DELTA;
/// Ω suspicion-sweep period (must exceed the heartbeat period plus `Δ`).
pub(crate) const SUSPECT_PERIOD: Duration = Duration::from_units(3 * DELTA.units());
/// Initial new-ballot timeout: "2Δ, giving just enough time for the
/// processes to reach agreement on the fast path" (§C.1).
pub(crate) const INITIAL_BALLOT_DELAY: Duration = Duration::from_units(2 * DELTA.units());
/// Subsequent new-ballot period: "the timer is reset with a delay of 5Δ"
/// (§C.1).
pub(crate) const BALLOT_RETRY: Duration = Duration::from_units(5 * DELTA.units());

/// Which consensus formulation a [`TwoStep`] instance implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// Consensus *task*: the initial value is fixed at construction and
    /// proposed at startup. Requires `n ≥ max{2e+f, 2f+1}` (Theorem 5).
    Task,
    /// Consensus *object*: values arrive via explicit `propose(v)`
    /// invocations; the paper's red-line preconditions apply. Requires
    /// `n ≥ max{2e+f-1, 2f+1}` (Theorem 6).
    Object,
}

/// How a process reached its decision (for experiment metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionPath {
    /// Collected a fast quorum of `2B(0, v)` votes for its own proposal.
    Fast,
    /// Decided as the leader of a slow ballot.
    Slow,
    /// Learned the decision from a `Decide` message.
    Learned,
}

/// The phase-independent per-process state, shared by every phase type:
/// configuration, Ω, the own proposal, the fast-vote tally, and the
/// telemetry hooks. Transitions borrow it alongside the phase they
/// consume.
#[derive(Debug, Clone)]
pub(crate) struct Common<V> {
    pub(crate) cfg: SystemConfig,
    pub(crate) me: ProcessId,
    pub(crate) variant: Variant,
    pub(crate) ablations: Ablations,
    pub(crate) omega: Omega,
    /// Own proposal (`initial_val`), `⊥` until proposed.
    pub(crate) initial_val: Option<V>,
    /// A proposal observed in a `Propose` message this process could not
    /// vote for; feeds only the recovery rule's final fallback branch.
    pub(crate) observed: Option<V>,
    /// Fast-path `2B(0, ·)` votes collected for our own proposal.
    pub(crate) fast_votes: ProcessSet,
    /// Value pending proposal at startup (task variant).
    pub(crate) startup_value: Option<V>,
    /// Which recovery-rule case selected the value for the ballot this
    /// process currently leads, if any (telemetry bookkeeping).
    pub(crate) recovery_case: Option<RecoveryCase>,
    /// Telemetry hooks; detached by default.
    pub(crate) obs: ObserverHandle,
}

impl<V: Value> Common<V> {
    /// Refines [`DecisionPath::Slow`] by the recovery case that chose
    /// the ballot's value.
    pub(crate) fn refined_path(&self, path: DecisionPath) -> Path {
        match path {
            DecisionPath::Fast => Path::Fast,
            DecisionPath::Learned => Path::Learned,
            DecisionPath::Slow => self
                .recovery_case
                .map(RecoveryCase::as_path)
                .unwrap_or(Path::Slow),
        }
    }
}

/// The two-step consensus state machine of Figure 1, as a shell over
/// the typestate phases.
///
/// There is no public constructor: build instances through
/// [`crate::TwoStepBuilder`] (or the [`crate::TaskConsensus`] /
/// [`crate::ObjectConsensus`] wrappers), which is what fixes the
/// variant and arms the object red line on the birth phase.
#[derive(Debug, Clone)]
pub struct TwoStep<V> {
    common: Common<V>,
    phase: Phase<V>,
    leader: Leader<V>,
}

impl<V: Value> TwoStep<V> {
    /// Crate-internal constructor behind [`crate::TwoStepBuilder`].
    ///
    /// Panics if `me` is out of range for `cfg`. The old "task without
    /// an initial value" panic no longer exists: the builder's `task`
    /// terminal takes the value by parameter, so the state is
    /// unrepresentable.
    pub(crate) fn new_machine(
        cfg: SystemConfig,
        me: ProcessId,
        variant: Variant,
        startup_value: Option<V>,
        omega_mode: OmegaMode,
        ablations: Ablations,
        obs: ObserverHandle,
    ) -> Self {
        assert!(me.index() < cfg.n(), "process {me} out of range for {cfg}");
        let phase = match variant {
            Variant::Task => crate::phase::FastVoting::task(),
            Variant::Object => crate::phase::FastVoting::object(),
        };
        TwoStep {
            common: Common {
                cfg,
                me,
                variant,
                ablations,
                omega: Omega::new(me, cfg.n(), omega_mode),
                initial_val: None,
                observed: None,
                fast_votes: ProcessSet::new(),
                startup_value,
                recovery_case: None,
                obs,
            },
            phase: Phase::Fast(phase),
            leader: Leader::Idle,
        }
    }

    /// Attaches telemetry hooks (crate-internal; the builder and the
    /// wrappers' `observed` methods are the public path).
    pub(crate) fn observed(mut self, obs: ObserverHandle) -> Self {
        self.common.obs = obs;
        self
    }

    /// The system configuration.
    pub fn config(&self) -> SystemConfig {
        self.common.cfg
    }

    /// The variant this instance implements.
    pub fn variant(&self) -> Variant {
        self.common.variant
    }

    /// Which voter-side phase this process is in.
    pub fn phase(&self) -> PhaseKind {
        self.phase.kind()
    }

    /// Which leader-side phase this process is in.
    pub fn leader_phase(&self) -> LeaderPhase {
        self.leader.kind()
    }

    /// Current ballot.
    pub fn ballot(&self) -> Ballot {
        self.phase.bal()
    }

    /// Last ballot voted in.
    pub fn voted_ballot(&self) -> Ballot {
        self.phase.vbal()
    }

    /// Current vote.
    pub fn vote(&self) -> Option<&V> {
        self.phase.val()
    }

    /// Own proposal, if any.
    pub fn initial_value(&self) -> Option<&V> {
        self.common.initial_val.as_ref()
    }

    /// The decision, if reached.
    pub fn decided_value(&self) -> Option<&V> {
        self.phase.decided()
    }

    /// How the decision was reached, if decided.
    pub fn decision_path(&self) -> Option<DecisionPath> {
        if let Phase::Decided(d) = &self.phase {
            Some(d.path())
        } else {
            None
        }
    }

    /// Which recovery-rule case selected the value of the slow ballot
    /// this process most recently led, if any.
    pub fn recovery_case(&self) -> Option<RecoveryCase> {
        self.common.recovery_case
    }

    /// The telemetry decision path of this process, refining
    /// [`DecisionPath::Slow`] by the recovery case that chose the
    /// ballot's value ([`Path::RecoveryGt`] / [`Path::RecoveryEq`]).
    pub fn telemetry_path(&self) -> Option<Path> {
        self.decision_path().map(|p| self.common.refined_path(p))
    }

    /// The Ω leader-election state.
    pub fn omega(&self) -> &Omega {
        &self.common.omega
    }

    /// Updates the leader hint of a statically-configured Ω (see
    /// [`Omega::set_static_leader`]); no-op in heartbeat mode.
    pub fn set_leader_hint(&mut self, leader: ProcessId) {
        self.common.omega.set_static_leader(leader);
    }

    // ---- internal helpers ----

    /// Lines 2–5: `if val = ⊥ then initial_val ← v; send Propose(v)`.
    fn do_propose(&mut self, v: V, eff: &mut Effects<V, Msg<V>>) {
        if self.phase.val().is_none() && self.common.initial_val.is_none() {
            self.common.initial_val = Some(v.clone());
            eff.broadcast_others(Msg::Propose(v), self.common.cfg.n(), self.common.me);
        }
    }

    fn on_msg(&mut self, from: ProcessId, msg: Msg<V>, eff: &mut Effects<V, Msg<V>>) {
        self.common.omega.observe(from);
        match msg {
            Msg::Heartbeat => {}

            // Lines 9–13: only the fast-voting phase can vote; the
            // observed fallback is phase-independent.
            Msg::Propose(v) => {
                if self.common.observed.is_none() {
                    self.common.observed = Some(v.clone());
                }
                if let Phase::Fast(f) = &mut self.phase {
                    f.consider(&self.common, from, &v, eff);
                }
            }

            // Line 16: the two disjuncts of the 2B handler.
            Msg::TwoB(b, v) => {
                if b == Ballot::FAST {
                    // Votes for our own fast-path proposal. The tally
                    // accrues in every phase; only the fast-voting phase
                    // can still turn it into a decision.
                    if self.common.initial_val.as_ref() == Some(&v) {
                        self.common.fast_votes.insert(from);
                        self.phase = match Phase::take(&mut self.phase) {
                            Phase::Fast(f) => f.try_fast_decide(&mut self.common, eff),
                            Phase::Slow(s) => Phase::Slow(s),
                            Phase::Decided(d) => Phase::Decided(d),
                        };
                    }
                } else if self.phase.decided().is_none()
                    && self.phase.bal() == b
                    && self.leader.ballot() == Some(b)
                    && self.leader.slow_value() == Some(&v)
                {
                    let quorum_in = if let Leader::Proposing(p) = &mut self.leader {
                        p.record_vote(from, self.common.cfg.slow_quorum())
                    } else {
                        false
                    };
                    if quorum_in {
                        self.phase = Phase::take(&mut self.phase).into_decided(
                            v.clone(),
                            DecisionPath::Slow,
                            &mut self.common,
                            eff,
                        );
                        eff.broadcast_others(Msg::Decide(v), self.common.cfg.n(), self.common.me);
                    }
                }
            }

            // Lines 22–25.
            Msg::Decide(v) => {
                self.phase = Phase::take(&mut self.phase).into_decided(
                    v,
                    DecisionPath::Learned,
                    &mut self.common,
                    eff,
                );
            }

            // Lines 27–31.
            Msg::OneA(b) => {
                self.phase = Phase::take(&mut self.phase).on_one_a(&mut self.common, from, b, eff);
            }

            // Lines 42–63 (collection side).
            Msg::OneB {
                bal,
                vbal,
                val,
                proposer,
                decided,
            } => {
                if self.leader.ballot() == Some(bal) {
                    self.leader = match Leader::take(&mut self.leader) {
                        Leader::Collecting(c) => c.on_report(
                            &mut self.common,
                            from,
                            Report {
                                vbal,
                                val,
                                proposer,
                                decided,
                            },
                            eff,
                        ),
                        // Phase one already complete: the quorum froze.
                        Leader::Proposing(p) => Leader::Proposing(p),
                        Leader::Idle => Leader::Idle,
                    };
                }
            }

            // Lines 65–69.
            Msg::TwoA(b, v) => {
                self.phase =
                    Phase::take(&mut self.phase).on_two_a(&mut self.common, from, b, v, eff);
            }
        }
    }
}

impl<V: Value> Protocol<V> for TwoStep<V> {
    type Message = Msg<V>;

    fn id(&self) -> ProcessId {
        self.common.me
    }

    fn on_start(&mut self, eff: &mut Effects<V, Msg<V>>) {
        eff.set_timer(TimerId::NEW_BALLOT, INITIAL_BALLOT_DELAY);
        if self.common.omega.uses_heartbeats() {
            eff.broadcast_others(Msg::Heartbeat, self.common.cfg.n(), self.common.me);
            eff.set_timer(TimerId::HEARTBEAT, HEARTBEAT_PERIOD);
            eff.set_timer(TimerId::SUSPECT, SUSPECT_PERIOD);
        }
        if let Some(v) = self.common.startup_value.take() {
            self.do_propose(v, eff);
        }
    }

    fn on_propose(&mut self, value: V, eff: &mut Effects<V, Msg<V>>) {
        match self.common.variant {
            // The task variant's proposal is fixed at construction.
            Variant::Task => {}
            Variant::Object => self.do_propose(value, eff),
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg<V>, eff: &mut Effects<V, Msg<V>>) {
        self.on_msg(from, msg, eff);
    }

    fn on_timer(&mut self, timer: TimerId, eff: &mut Effects<V, Msg<V>>) {
        match timer {
            TimerId::HEARTBEAT => {
                eff.broadcast_others(Msg::Heartbeat, self.common.cfg.n(), self.common.me);
                eff.set_timer(TimerId::HEARTBEAT, HEARTBEAT_PERIOD);
            }
            TimerId::SUSPECT => {
                let before = self.common.omega.leader();
                self.common.omega.sweep();
                let after = self.common.omega.leader();
                if before != after {
                    self.common.obs.leader_changed(self.common.me, after);
                }
                eff.set_timer(TimerId::SUSPECT, SUSPECT_PERIOD);
            }
            TimerId::NEW_BALLOT => {
                eff.set_timer(TimerId::NEW_BALLOT, BALLOT_RETRY);
                if let Some(v) = self.phase.decided().cloned() {
                    // Decision gossip (liveness extension).
                    eff.broadcast_others(Msg::Decide(v), self.common.cfg.n(), self.common.me);
                    return;
                }
                if let Some(iv) = self.common.initial_val.clone() {
                    // Proposal retransmission (liveness extension).
                    eff.broadcast_others(Msg::Propose(iv), self.common.cfg.n(), self.common.me);
                }
                if self.common.omega.is_leader() {
                    // §C.1: Collecting::open is the only way to start a
                    // ballot, and it broadcasts the 1A as it constructs.
                    self.leader = Leader::Collecting(Collecting::open(
                        self.phase.bal(),
                        &mut self.common,
                        eff,
                    ));
                }
            }
            _ => {}
        }
    }

    fn decision(&self) -> Option<V> {
        self.phase.decided().cloned()
    }

    fn state_fingerprint(&self) -> u64 {
        // Structured hashing of the protocol-relevant state: orders of
        // magnitude cheaper than the Debug-string default, which matters
        // because the model checker fingerprints millions of states.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.common.me.hash(&mut h);
        self.phase.bal().hash(&mut h);
        self.phase.vbal().hash(&mut h);
        self.phase.val().hash(&mut h);
        self.phase.proposer().hash(&mut h);
        self.common.initial_val.hash(&mut h);
        self.phase.decided().hash(&mut h);
        self.common.fast_votes.hash(&mut h);
        self.leader.ballot().hash(&mut h);
        matches!(self.leader, Leader::Proposing(_)).hash(&mut h);
        self.leader.slow_value().hash(&mut h);
        self.leader.slow_votes().hash(&mut h);
        self.common.observed.hash(&mut h);
        self.common.startup_value.hash(&mut h);
        self.common.omega.leader().hash(&mut h);
        self.common.omega.suspected().hash(&mut h);
        if let Some(onebs) = self.leader.reports() {
            for (q, r) in onebs.iter() {
                q.hash(&mut h);
                r.vbal.hash(&mut h);
                r.val.hash(&mut h);
                r.proposer.hash(&mut h);
                r.decided.hash(&mut h);
            }
        }
        h.finish()
    }

    fn state_fingerprint_relabeled(&self, rl: &twostep_types::relabel::Relabeling) -> Option<u64> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Decline permutations the behavior distinguishes. Heartbeat-mode
        // Ω tracks who it `heard` from (not part of the fingerprint), so
        // only the identity is safe; a pinned static leader must be a
        // fixed point of `π`.
        match self.common.omega.mode() {
            OmegaMode::Heartbeats => {
                if !rl.is_identity() {
                    return None;
                }
            }
            OmegaMode::Static(leader) => {
                if !rl.fixes(leader) {
                    return None;
                }
            }
        }
        let mut h = DefaultHasher::new();
        rl.pid(self.common.me).hash(&mut h);
        rl.ballot(self.phase.bal())?.hash(&mut h);
        rl.ballot(self.phase.vbal())?.hash(&mut h);
        self.phase.val().hash(&mut h);
        self.phase.proposer().map(|p| rl.pid(p)).hash(&mut h);
        self.common.initial_val.hash(&mut h);
        self.phase.decided().hash(&mut h);
        rl.pset(self.common.fast_votes).hash(&mut h);
        match self.leader.ballot() {
            None => None::<Ballot>.hash(&mut h),
            Some(b) => Some(rl.ballot(b)?).hash(&mut h),
        }
        matches!(self.leader, Leader::Proposing(_)).hash(&mut h);
        self.leader.slow_value().hash(&mut h);
        rl.pset(self.leader.slow_votes()).hash(&mut h);
        self.common.observed.hash(&mut h);
        self.common.startup_value.hash(&mut h);
        rl.pid(self.common.omega.leader()).hash(&mut h);
        rl.pset(self.common.omega.suspected()).hash(&mut h);
        // The 1B quorum, re-sorted by relabeled reporter so the hash is
        // independent of collection order under `π`.
        if let Some(onebs) = self.leader.reports() {
            let mut entries: Vec<(ProcessId, u64)> = Vec::with_capacity(onebs.len());
            for (q, r) in onebs.iter() {
                let mut eh = DefaultHasher::new();
                rl.ballot(r.vbal)?.hash(&mut eh);
                r.val.hash(&mut eh);
                r.proposer.map(|p| rl.pid(p)).hash(&mut eh);
                r.decided.hash(&mut eh);
                entries.push((rl.pid(q), eh.finish()));
            }
            entries.sort_unstable();
            entries.hash(&mut h);
        } else {
            // Hash the empty quorum the same way an empty collector did.
            let entries: Vec<(ProcessId, u64)> = Vec::new();
            entries.hash(&mut h);
        }
        Some(h.finish())
    }

    /// Permanent no-op classification for the model checker's inert-mail
    /// scrub. Every `true` below rests on a monotonicity argument:
    /// `bal` never decreases, `val`/`initial_val`/`decided`/`observed`
    /// are never cleared once set, and future led ballots come from
    /// [`Ballot::next_owned_by`], which is strictly greater than the
    /// then-current `bal`.
    fn message_is_noop(&self, _from: ProcessId, msg: &Msg<V>) -> bool {
        // In heartbeat mode every delivery feeds `omega.observe`, whose
        // `heard` set steers future sweeps: nothing is ever inert.
        if self.common.omega.uses_heartbeats() {
            return false;
        }
        let bal = self.phase.bal();
        match msg {
            Msg::Heartbeat => true,
            Msg::Propose(v) => {
                // Effect requires `observed = ⊥` (set once) or the vote
                // precondition; the vote precondition is permanently dead
                // once the ballot left FAST, a vote was cast, or our own
                // (immutable once set) proposal rejects `v`.
                self.common.observed.is_some()
                    && (bal != Ballot::FAST
                        || self.phase.val().is_some()
                        || self.common.initial_val.as_ref().is_some_and(|iv| {
                            *v < *iv
                                || (self.common.variant == Variant::Object
                                    && !self.common.ablations.no_object_guard
                                    && *v != *iv)
                        }))
            }
            Msg::TwoB(b, v) if *b == Ballot::FAST => {
                // A fast vote only counts toward our own proposal.
                self.common.initial_val.as_ref().is_some_and(|iv| iv != v)
            }
            Msg::TwoB(b, _) => {
                self.phase.decided().is_some()
                    || *b < bal
                    || (*b == bal && self.leader.ballot() != Some(*b))
            }
            // Redelivering a known decision still rewrites `val` (which a
            // later `2A` may have overwritten), and a *conflicting*
            // decision is the violation witness itself: never inert.
            Msg::Decide(_) => false,
            Msg::OneA(b) => *b <= bal,
            Msg::OneB { bal: b, .. } => *b <= bal && self.leader.ballot() != Some(*b),
            Msg::TwoA(b, _) => *b < bal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjectConsensus, TaskConsensus, TwoStepBuilder};
    use twostep_sim::ManualExecutor;

    fn cfg() -> SystemConfig {
        // Task-minimal for e = f = 1: n = max{3, 3} = 3.
        SystemConfig::minimal_task(1, 1).unwrap()
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Task setup without heartbeat noise and a pinned leader.
    fn task_exec(leader: u32) -> ManualExecutor<u64, TaskConsensus<u64>> {
        let cfg = cfg();
        ManualExecutor::new(cfg, move |pid| {
            TwoStepBuilder::new(cfg)
                .omega(OmegaMode::Static(p(leader)))
                .task(pid, 10 * (u64::from(pid.as_u32()) + 1))
        })
    }

    /// Object setup without heartbeat noise and a pinned leader.
    fn object_exec(ablations: Ablations) -> ManualExecutor<u64, ObjectConsensus<u64>> {
        let cfg = cfg();
        ManualExecutor::new(cfg, move |pid| {
            TwoStepBuilder::new(cfg)
                .omega(OmegaMode::Static(p(0)))
                .ablations(ablations)
                .object(pid)
        })
    }

    #[test]
    fn startup_broadcasts_proposal() {
        let mut ex = task_exec(0);
        ex.start(p(0));
        let proposes = ex.pending_matching(|m| matches!(m.msg, Msg::Propose(_)));
        assert_eq!(proposes.len(), 2, "Propose goes to Π \\ {{p0}}");
        assert_eq!(ex.process(p(0)).inner().initial_value(), Some(&10));
        assert_eq!(ex.process(p(0)).inner().phase(), PhaseKind::FastVoting);
        assert_eq!(ex.process(p(0)).inner().leader_phase(), LeaderPhase::Idle);
    }

    #[test]
    fn first_proposal_wins_the_vote() {
        let mut ex = task_exec(0);
        ex.start_all();
        // Deliver p2's Propose(30) to p1 first: p1 votes for it.
        let ids = ex.pending_matching(|m| m.from == p(2) && m.to == p(1));
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(1)).inner().vote(), Some(&30));
        // p0's Propose(10) now fails the `val = ⊥` precondition.
        let ids = ex.pending_matching(|m| m.from == p(0) && m.to == p(1));
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(1)).inner().vote(), Some(&30));
        // Exactly one fast 2B left p1, addressed to p2.
        let twobs =
            ex.pending_matching(|m| m.from == p(1) && matches!(m.msg, Msg::TwoB(Ballot::FAST, _)));
        assert_eq!(twobs.len(), 1);
    }

    #[test]
    fn lower_proposal_rejected_by_higher_initial() {
        let mut ex = task_exec(0);
        ex.start_all();
        // p0's Propose(10) reaches p2 (initial 30): 10 < 30 fails the
        // `v ≥ initial_val` precondition.
        let ids = ex.pending_matching(|m| m.from == p(0) && m.to == p(2));
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(2)).inner().vote(), None);
        assert!(ex
            .pending_matching(|m| m.from == p(2) && matches!(m.msg, Msg::TwoB(..)))
            .is_empty());
    }

    #[test]
    fn fast_path_decides_with_fast_quorum() {
        // n = 3, e = 1: fast quorum = 2 = proposer + 1 vote.
        let mut ex = task_exec(0);
        ex.start_all();
        // p2's proposal (30, the max) reaches p0 and p1; they vote.
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(|m| m.from == p(2) && m.to == target);
            ex.deliver(ids[0]);
        }
        // Deliver one 2B back to p2: together with itself that is n-e=2.
        let ids = ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::TwoB(..)));
        ex.deliver(ids[0]);
        assert_eq!(ex.decision_of(p(2)), Some(&30));
        assert_eq!(ex.process(p(2)).decision_path(), Some(DecisionPath::Fast));
        assert_eq!(ex.process(p(2)).inner().phase(), PhaseKind::Decided);
        // Decide broadcast went out.
        let decides = ex.pending_matching(|m| matches!(m.msg, Msg::Decide(_)));
        assert_eq!(decides.len(), 2);
    }

    #[test]
    fn decide_message_propagates_decision() {
        let mut ex = task_exec(0);
        ex.start_all();
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(|m| m.from == p(2) && m.to == target);
            ex.deliver(ids[0]);
        }
        let ids = ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::TwoB(..)));
        ex.deliver(ids[0]);
        let ids = ex.pending_matching(|m| matches!(m.msg, Msg::Decide(_)) && m.to == p(0));
        ex.deliver(ids[0]);
        assert_eq!(ex.decision_of(p(0)), Some(&30));
        assert_eq!(
            ex.process(p(0)).decision_path(),
            Some(DecisionPath::Learned)
        );
        assert!(ex.agreement());
    }

    #[test]
    fn own_vote_for_other_value_blocks_fast_decision() {
        let mut ex = task_exec(0);
        ex.start_all();
        // p2 votes for... no wait: p2 has the max value; use p1 (20).
        // p1 first votes for p2's 30.
        let ids = ex.pending_matching(|m| m.from == p(2) && m.to == p(1));
        ex.deliver(ids[0]);
        // Now p0 votes for p1's 20? No — p0 has initial 10, 20 ≥ 10: ok.
        let ids = ex.pending_matching(|m| m.from == p(1) && m.to == p(0));
        ex.deliver(ids[0]);
        // p0's 2B(0, 20) arrives at p1. p1's val = 30 ≠ 20: the
        // `val ∈ {⊥, v}` precondition must block p1's fast decision.
        let ids = ex
            .pending_matching(|m| m.from == p(0) && m.to == p(1) && matches!(m.msg, Msg::TwoB(..)));
        ex.deliver(ids[0]);
        assert_eq!(ex.decision_of(p(1)), None);
    }

    #[test]
    fn one_a_advances_ballot_and_replies_state() {
        let mut ex = task_exec(1);
        ex.start_all();
        // p1 (leader) times out and starts ballot 1 (1 ≡ 1 mod 3).
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        assert_eq!(
            ex.process(p(1)).inner().leader_phase(),
            LeaderPhase::Collecting
        );
        let oneas = ex.pending_matching(|m| matches!(m.msg, Msg::OneA(_)));
        assert_eq!(oneas.len(), 3, "1A goes to all of Π including self");
        // Deliver 1A to p0.
        let ids = ex.pending_matching(|m| m.to == p(0) && matches!(m.msg, Msg::OneA(_)));
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(0)).inner().ballot(), Ballot::new(1));
        assert_eq!(ex.process(p(0)).inner().phase(), PhaseKind::SlowBallot);
        let onebs = ex.pending_matching(|m| m.from == p(0) && matches!(m.msg, Msg::OneB { .. }));
        assert_eq!(onebs.len(), 1);
    }

    #[test]
    fn stale_one_a_ignored() {
        let mut ex = task_exec(1);
        ex.start_all();
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        let ids = ex.pending_matching(|m| m.to == p(0) && matches!(m.msg, Msg::OneA(_)));
        ex.deliver(ids[0]);
        // A later 1A with the same ballot (replayed) is rejected.
        // Simulate by making p1 lead again without progress: next ballot
        // is 4 (> 1, ≡ 1 mod 3); deliver it, then replay nothing lower.
        assert_eq!(ex.process(p(0)).inner().ballot(), Ballot::new(1));
    }

    #[test]
    fn slow_path_decides_after_fast_path_stalls() {
        // Crash the two non-leader processes' proposals from reaching
        // anyone: simply drop everything from round 1, then run a slow
        // ballot at the leader.
        let mut ex = task_exec(1);
        ex.start_all();
        // Drop all fast-path traffic.
        for id in ex.pending_matching(|_| true) {
            ex.drop_message(id);
        }
        // Leader p1 starts ballot 1.
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        // Deliver 1A to everyone (incl. self), then 1Bs back.
        for target in [p(0), p(1), p(2)] {
            let ids = ex.pending_matching(move |m| m.to == target && matches!(m.msg, Msg::OneA(_)));
            ex.deliver(ids[0]);
        }
        let onebs = ex.pending_matching(|m| matches!(m.msg, Msg::OneB { .. }));
        assert_eq!(onebs.len(), 3);
        // Slow quorum is n-f = 2: deliver two 1Bs.
        for id in onebs.into_iter().take(2) {
            ex.deliver(id);
        }
        // Phase one froze the quorum: the leader is now proposing.
        assert_eq!(
            ex.process(p(1)).inner().leader_phase(),
            LeaderPhase::Proposing
        );
        // Leader selected its own initial value (20) and sent 2A to all.
        let twoas = ex.pending_matching(|m| matches!(m.msg, Msg::TwoA(..)));
        assert_eq!(twoas.len(), 3);
        for id in twoas {
            ex.deliver(id);
        }
        // 2Bs flow back to the leader; n-f = 2 suffice.
        let twobs = ex.pending_matching(|m| m.to == p(1) && matches!(m.msg, Msg::TwoB(..)));
        assert!(twobs.len() >= 2);
        for id in twobs.into_iter().take(2) {
            ex.deliver(id);
        }
        assert_eq!(ex.decision_of(p(1)), Some(&20));
        assert_eq!(ex.process(p(1)).decision_path(), Some(DecisionPath::Slow));
        assert!(ex.agreement());
    }

    #[test]
    fn recovery_preserves_fast_decision() {
        // p2 fast-decides 30, then a slow ballot led by p1 must select 30
        // (Lemma 7 at the protocol level).
        let mut ex = task_exec(1);
        ex.start_all();
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(|m| m.from == p(2) && m.to == target);
            ex.deliver(ids[0]);
        }
        let ids = ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::TwoB(..)));
        ex.deliver(ids[0]);
        assert_eq!(ex.decision_of(p(2)), Some(&30));
        // Drop the Decide broadcasts: the others must recover via a slow
        // ballot instead.
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::Decide(_))) {
            ex.drop_message(id);
        }
        // p2 crashes. n-f = 2 correct remain: p0, p1.
        ex.crash(p(2));
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(move |m| m.to == target && matches!(m.msg, Msg::OneA(_)));
            ex.deliver(ids[0]);
        }
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::OneB { .. })) {
            ex.deliver(id);
        }
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::TwoA(..))) {
            ex.deliver(id);
        }
        for id in ex.pending_matching(|m| m.to == p(1) && matches!(m.msg, Msg::TwoB(..))) {
            ex.deliver(id);
        }
        assert_eq!(
            ex.decision_of(p(1)),
            Some(&30),
            "recovery must stick with the fast value"
        );
        assert!(ex.agreement());
    }

    #[test]
    fn object_variant_red_line_blocks_conflicting_propose() {
        let mut ex = object_exec(Ablations::NONE);
        ex.start_all();
        assert!(
            ex.pending().is_empty(),
            "object variant proposes nothing at startup"
        );
        ex.propose(p(0), 10);
        ex.propose(p(1), 99);
        // p1 has proposed 99; p0's Propose(10) violates the red-line
        // precondition (initial_val ≠ ⊥ ⟹ v = initial_val) even though
        // 10 < 99 would anyway fail v ≥ initial_val; test the other
        // direction: p1's Propose(99) at p0 passes v ≥ 10 but p0 has
        // proposed 10 ≠ 99 → blocked.
        let ids = ex.pending_matching(|m| {
            m.from == p(1) && m.to == p(0) && matches!(m.msg, Msg::Propose(_))
        });
        ex.deliver(ids[0]);
        assert_eq!(
            ex.process(p(0)).inner().vote(),
            None,
            "red line must block the vote"
        );

        // Same value is fine: p2 proposes 99 as well... p2 hasn't
        // proposed; it simply votes.
        let ids = ex.pending_matching(|m| {
            m.from == p(1) && m.to == p(2) && matches!(m.msg, Msg::Propose(_))
        });
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(2)).inner().vote(), Some(&99));
    }

    #[test]
    fn object_guard_ablation_allows_conflicting_vote() {
        let mut ex = object_exec(Ablations {
            no_object_guard: true,
            ..Ablations::NONE
        });
        ex.start_all();
        ex.propose(p(0), 10);
        ex.propose(p(1), 99);
        let ids = ex.pending_matching(|m| {
            m.from == p(1) && m.to == p(0) && matches!(m.msg, Msg::Propose(_))
        });
        ex.deliver(ids[0]);
        assert_eq!(
            ex.process(p(0)).inner().vote(),
            Some(&99),
            "ablation drops the red line"
        );
    }

    #[test]
    fn task_variant_ignores_client_proposals() {
        let mut ex = task_exec(0);
        ex.start_all();
        let before = ex.pending().len();
        ex.propose(p(0), 12345);
        assert_eq!(ex.pending().len(), before);
        assert_eq!(ex.process(p(0)).inner().initial_value(), Some(&10));
    }

    #[test]
    fn object_repeat_propose_is_idempotent() {
        let mut ex = object_exec(Ablations::NONE);
        ex.start_all();
        ex.propose(p(0), 10);
        let first = ex.pending().len();
        ex.propose(p(0), 77);
        assert_eq!(ex.pending().len(), first, "second propose ignored");
        assert_eq!(ex.process(p(0)).inner().initial_value(), Some(&10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_process_panics() {
        let _ = TwoStepBuilder::new(cfg()).task(p(9), 1u64);
    }

    #[test]
    fn two_a_vote_updates_ballot_state() {
        let mut ex = task_exec(1);
        ex.start_all();
        for id in ex.pending_matching(|_| true) {
            ex.drop_message(id);
        }
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        for target in [p(0), p(1), p(2)] {
            let ids = ex.pending_matching(move |m| m.to == target && matches!(m.msg, Msg::OneA(_)));
            ex.deliver(ids[0]);
        }
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::OneB { .. })) {
            ex.deliver(id);
        }
        let ids = ex.pending_matching(|m| m.to == p(0) && matches!(m.msg, Msg::TwoA(..)));
        ex.deliver(ids[0]);
        let st = ex.process(p(0)).inner();
        assert_eq!(st.ballot(), Ballot::new(1));
        assert_eq!(st.voted_ballot(), Ballot::new(1));
        assert_eq!(st.vote(), Some(&20));
    }

    #[test]
    fn observer_reports_fast_decision() {
        use twostep_telemetry::Metrics;
        let (metrics, obs) = Metrics::shared();
        let cfg = cfg();
        let mut ex = ManualExecutor::new(cfg, move |pid| {
            TwoStepBuilder::new(cfg)
                .omega(OmegaMode::Static(p(0)))
                .observed(obs.clone())
                .task(pid, 10 * (u64::from(pid.as_u32()) + 1))
        });
        ex.start_all();
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(|m| m.from == p(2) && m.to == target);
            ex.deliver(ids[0]);
        }
        let ids = ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::TwoB(..)));
        ex.deliver(ids[0]);
        assert_eq!(ex.decision_of(p(2)), Some(&30));
        let snap = metrics.snapshot();
        assert_eq!(snap.decided(twostep_telemetry::Path::Fast), 1);
        assert_eq!(snap.slow_entries, 0);
        assert_eq!(ex.process(p(2)).inner().telemetry_path(), Some(Path::Fast));
    }

    #[test]
    fn observer_reports_slow_path_entry_recovery_case_and_ballot_advances() {
        use twostep_telemetry::Metrics;
        let (metrics, obs) = Metrics::shared();
        let cfg = cfg();
        let mut ex = ManualExecutor::new(cfg, move |pid| {
            TwoStepBuilder::new(cfg)
                .omega(OmegaMode::Static(p(1)))
                .observed(obs.clone())
                .task(pid, 10 * (u64::from(pid.as_u32()) + 1))
        });
        ex.start_all();
        for id in ex.pending_matching(|_| true) {
            ex.drop_message(id);
        }
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        for target in [p(0), p(1), p(2)] {
            let ids = ex.pending_matching(move |m| m.to == target && matches!(m.msg, Msg::OneA(_)));
            ex.deliver(ids[0]);
        }
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::OneB { .. })) {
            ex.deliver(id);
        }
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::TwoA(..))) {
            ex.deliver(id);
        }
        for id in ex.pending_matching(|m| m.to == p(1) && matches!(m.msg, Msg::TwoB(..))) {
            ex.deliver(id);
        }
        assert_eq!(ex.decision_of(p(1)), Some(&20));
        let snap = metrics.snapshot();
        assert_eq!(snap.slow_entries, 1, "one ballot opened");
        assert_eq!(
            snap.recovery(RecoveryCase::Fallback),
            1,
            "all reports were empty: the coordinator fell back to its own value"
        );
        assert_eq!(snap.decided(Path::Slow), 1);
        // Every process adopted ballot 1 exactly once.
        assert_eq!(snap.ballot_advances, 3);
        assert_eq!(
            ex.process(p(1)).inner().recovery_case(),
            Some(RecoveryCase::Fallback)
        );
    }

    #[test]
    fn fast_votes_ignored_after_joining_slow_ballot() {
        // The "they will not take it in the future either" remark: a
        // process that moved to a slow ballot must not fast-decide.
        let mut ex = task_exec(1);
        ex.start_all();
        // p2's Propose reaches p0 and p1; they vote and reply.
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(|m| m.from == p(2) && m.to == target);
            ex.deliver(ids[0]);
        }
        // Before the 2Bs reach p2, p2 joins ballot 1.
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        let ids = ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::OneA(_)));
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(2)).inner().ballot(), Ballot::new(1));
        assert_eq!(ex.process(p(2)).inner().phase(), PhaseKind::SlowBallot);
        // Now the fast 2Bs arrive: the slow phase has no fast-decide
        // transition — the tally still accrues, but nothing can fire.
        for id in
            ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::TwoB(Ballot::FAST, _)))
        {
            ex.deliver(id);
        }
        assert_eq!(ex.decision_of(p(2)), None);
    }
}
