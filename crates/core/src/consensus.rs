//! The shared state machine behind both protocol variants (Figure 1).

use serde::{Deserialize, Serialize};

use twostep_telemetry::{ObserverHandle, Path, RecoveryCase};
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::quorum::Collector;
use twostep_types::{Ballot, Duration, ProcessId, ProcessSet, SystemConfig, Value, DELTA};

use crate::msg::Msg;
use crate::omega::{Omega, OmegaMode};
use crate::recovery::{select_value_explained, Report};
use crate::Ablations;

/// Heartbeat broadcast period.
pub(crate) const HEARTBEAT_PERIOD: Duration = DELTA;
/// Ω suspicion-sweep period (must exceed the heartbeat period plus `Δ`).
pub(crate) const SUSPECT_PERIOD: Duration = Duration::from_units(3 * DELTA.units());
/// Initial new-ballot timeout: "2Δ, giving just enough time for the
/// processes to reach agreement on the fast path" (§C.1).
pub(crate) const INITIAL_BALLOT_DELAY: Duration = Duration::from_units(2 * DELTA.units());
/// Subsequent new-ballot period: "the timer is reset with a delay of 5Δ"
/// (§C.1).
pub(crate) const BALLOT_RETRY: Duration = Duration::from_units(5 * DELTA.units());

/// Which consensus formulation a [`TwoStep`] instance implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// Consensus *task*: the initial value is fixed at construction and
    /// proposed at startup. Requires `n ≥ max{2e+f, 2f+1}` (Theorem 5).
    Task,
    /// Consensus *object*: values arrive via explicit `propose(v)`
    /// invocations; the paper's red-line preconditions apply. Requires
    /// `n ≥ max{2e+f-1, 2f+1}` (Theorem 6).
    Object,
}

/// How a process reached its decision (for experiment metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionPath {
    /// Collected a fast quorum of `2B(0, v)` votes for its own proposal.
    Fast,
    /// Decided as the leader of a slow ballot.
    Slow,
    /// Learned the decision from a `Decide` message.
    Learned,
}

/// The two-step consensus state machine of Figure 1.
///
/// Use the [`crate::TaskConsensus`] / [`crate::ObjectConsensus`] wrappers
/// unless you need variant-generic code.
#[derive(Debug, Clone)]
pub struct TwoStep<V> {
    cfg: SystemConfig,
    me: ProcessId,
    variant: Variant,
    ablations: Ablations,
    omega: Omega,

    // ---- Figure 1 per-process state ----
    /// Current ballot (`bal`, line: initialised to the fast ballot 0).
    bal: Ballot,
    /// Last ballot in which this process voted (`vbal`).
    vbal: Ballot,
    /// Current vote (`val`), `⊥` if none.
    val: Option<V>,
    /// Proposer of `val` (`proposer`).
    proposer: Option<ProcessId>,
    /// Own proposal (`initial_val`), `⊥` until proposed.
    initial_val: Option<V>,
    /// Decision (`decided`), `⊥` until decided.
    decided: Option<V>,

    // ---- fast-path vote collection (as proposer) ----
    fast_votes: ProcessSet,

    // ---- slow-ballot leadership ----
    /// The ballot this process is currently leading, if any.
    my_ballot: Option<Ballot>,
    onebs: Collector<Report<V>>,
    oneb_done: bool,
    slow_value: Option<V>,
    slow_votes: ProcessSet,

    // ---- liveness extension (see crate docs) ----
    /// A proposal observed in a `Propose` message this process could not
    /// vote for; feeds only the recovery rule's final fallback branch.
    observed: Option<V>,

    // ---- bookkeeping ----
    decision_path: Option<DecisionPath>,
    /// Value pending proposal at startup (task variant).
    startup_value: Option<V>,
    /// Which recovery-rule case selected `slow_value` for the ballot
    /// this process currently leads, if any (telemetry bookkeeping).
    recovery_case: Option<RecoveryCase>,
    /// Telemetry hooks; detached by default (see [`TwoStep::observed`]).
    obs: ObserverHandle,
}

impl<V: Value> TwoStep<V> {
    /// Creates a task-variant instance that proposes `initial` at
    /// startup.
    pub fn task(cfg: SystemConfig, me: ProcessId, initial: V) -> Self {
        Self::with_options(
            cfg,
            me,
            Variant::Task,
            Some(initial),
            OmegaMode::Heartbeats,
            Ablations::NONE,
        )
    }

    /// Creates an object-variant instance (no proposal until
    /// `propose(v)` is invoked).
    pub fn object(cfg: SystemConfig, me: ProcessId) -> Self {
        Self::with_options(
            cfg,
            me,
            Variant::Object,
            None,
            OmegaMode::Heartbeats,
            Ablations::NONE,
        )
    }

    /// Fully parameterised constructor.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg`, or if a task-variant
    /// instance is created without a startup value.
    pub fn with_options(
        cfg: SystemConfig,
        me: ProcessId,
        variant: Variant,
        startup_value: Option<V>,
        omega_mode: OmegaMode,
        ablations: Ablations,
    ) -> Self {
        assert!(me.index() < cfg.n(), "process {me} out of range for {cfg}");
        assert!(
            variant == Variant::Object || startup_value.is_some(),
            "the task variant requires an initial value"
        );
        TwoStep {
            cfg,
            me,
            variant,
            ablations,
            omega: Omega::new(me, cfg.n(), omega_mode),
            bal: Ballot::FAST,
            vbal: Ballot::FAST,
            val: None,
            proposer: None,
            initial_val: None,
            decided: None,
            fast_votes: ProcessSet::new(),
            my_ballot: None,
            onebs: Collector::new(),
            oneb_done: false,
            slow_value: None,
            slow_votes: ProcessSet::new(),
            observed: None,
            decision_path: None,
            startup_value,
            recovery_case: None,
            obs: ObserverHandle::none(),
        }
    }

    /// Attaches telemetry hooks (builder style). The instance reports
    /// fast-path decisions, slow-path entries, recovery-rule cases, Ω
    /// leader changes and ballot advances through the handle; with the
    /// default detached handle every report is a no-op.
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// The system configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// The variant this instance implements.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Current ballot.
    pub fn ballot(&self) -> Ballot {
        self.bal
    }

    /// Last ballot voted in.
    pub fn voted_ballot(&self) -> Ballot {
        self.vbal
    }

    /// Current vote.
    pub fn vote(&self) -> Option<&V> {
        self.val.as_ref()
    }

    /// Own proposal, if any.
    pub fn initial_value(&self) -> Option<&V> {
        self.initial_val.as_ref()
    }

    /// The decision, if reached.
    pub fn decided_value(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// How the decision was reached, if decided.
    pub fn decision_path(&self) -> Option<DecisionPath> {
        self.decision_path
    }

    /// Which recovery-rule case selected the value of the slow ballot
    /// this process most recently led, if any.
    pub fn recovery_case(&self) -> Option<RecoveryCase> {
        self.recovery_case
    }

    /// The telemetry decision path of this process, refining
    /// [`DecisionPath::Slow`] by the recovery case that chose the
    /// ballot's value ([`Path::RecoveryGt`] / [`Path::RecoveryEq`]).
    pub fn telemetry_path(&self) -> Option<Path> {
        self.decision_path.map(|p| self.refine_path(p))
    }

    fn refine_path(&self, path: DecisionPath) -> Path {
        match path {
            DecisionPath::Fast => Path::Fast,
            DecisionPath::Learned => Path::Learned,
            DecisionPath::Slow => self
                .recovery_case
                .map(RecoveryCase::as_path)
                .unwrap_or(Path::Slow),
        }
    }

    /// The Ω leader-election state.
    pub fn omega(&self) -> &Omega {
        &self.omega
    }

    /// Updates the leader hint of a statically-configured Ω (see
    /// [`Omega::set_static_leader`]); no-op in heartbeat mode.
    pub fn set_leader_hint(&mut self, leader: ProcessId) {
        self.omega.set_static_leader(leader);
    }

    // ---- internal helpers ----

    /// Lines 2–5: `if val = ⊥ then initial_val ← v; send Propose(v)`.
    fn do_propose(&mut self, v: V, eff: &mut Effects<V, Msg<V>>) {
        if self.val.is_none() && self.initial_val.is_none() {
            self.initial_val = Some(v.clone());
            eff.broadcast_others(Msg::Propose(v), self.cfg.n(), self.me);
        }
    }

    fn record_decision(&mut self, v: V, path: DecisionPath, eff: &mut Effects<V, Msg<V>>) {
        self.val = Some(v.clone());
        if self.decided.is_none() {
            self.decided = Some(v.clone());
            self.decision_path = Some(path);
            // Report the path before the engine drains the decision
            // effect, so the engine's latency report joins onto it.
            self.obs.decided(self.me, self.refine_path(path));
            eff.decide(v);
        } else if self.decided.as_ref() != Some(&v) {
            // A second, conflicting decision: surface it so the trace
            // checkers can flag the agreement violation (reachable only
            // under ablations or below-bound configurations).
            eff.decide(v);
        }
    }

    /// Line 16, first disjunct: fast-path decision check.
    fn try_fast_decide(&mut self, eff: &mut Effects<V, Msg<V>>) {
        if self.bal != Ballot::FAST || self.decided.is_some() {
            return;
        }
        let Some(v) = self.initial_val.clone() else {
            return;
        };
        // `val ∈ {⊥, v}`: a vote for someone else's value blocks us.
        if let Some(cur) = &self.val {
            if *cur != v {
                return;
            }
        }
        let mut supporters = self.fast_votes;
        supporters.insert(self.me); // `|P ∪ {p_i}| ≥ n - e`
        if supporters.len() >= self.cfg.fast_quorum() {
            self.record_decision(v.clone(), DecisionPath::Fast, eff);
            eff.broadcast_others(Msg::Decide(v), self.cfg.n(), self.me);
        }
    }

    /// §C.1: new-ballot initiation when Ω nominates us.
    fn start_new_ballot(&mut self, eff: &mut Effects<V, Msg<V>>) {
        let b = self.bal.next_owned_by(self.me, self.cfg.n());
        self.my_ballot = Some(b);
        self.onebs.clear();
        self.oneb_done = false;
        self.slow_value = None;
        self.slow_votes = ProcessSet::new();
        self.recovery_case = None;
        self.obs.slow_path_entered(self.me);
        eff.broadcast_all(Msg::OneA(b), self.cfg.n());
    }

    /// Lines 42–63: recovery once a `1B` quorum for our ballot is in.
    fn try_complete_phase_one(&mut self, eff: &mut Effects<V, Msg<V>>) {
        let Some(b) = self.my_ballot else { return };
        if self.oneb_done || self.onebs.len() < self.cfg.slow_quorum() {
            return;
        }
        self.oneb_done = true;
        let (selected, case) = select_value_explained(
            &self.cfg,
            &self.onebs,
            self.initial_val.as_ref(),
            self.observed.as_ref(),
            self.ablations,
        );
        self.recovery_case = Some(case);
        self.obs.recovery_case(self.me, case);
        if let Some(v) = selected {
            self.slow_value = Some(v.clone());
            eff.broadcast_all(Msg::TwoA(b, v), self.cfg.n());
        }
    }

    fn on_msg(&mut self, from: ProcessId, msg: Msg<V>, eff: &mut Effects<V, Msg<V>>) {
        self.omega.observe(from);
        match msg {
            Msg::Heartbeat => {}

            // Lines 9–13.
            Msg::Propose(v) => {
                if self.observed.is_none() {
                    self.observed = Some(v.clone());
                }
                let geq_initial = self.initial_val.as_ref().is_none_or(|iv| v >= *iv);
                let object_guard = self.variant != Variant::Object
                    || self.ablations.no_object_guard
                    || self.initial_val.as_ref().is_none_or(|iv| v == *iv);
                if self.bal == Ballot::FAST && self.val.is_none() && geq_initial && object_guard {
                    self.val = Some(v.clone());
                    self.proposer = Some(from);
                    eff.send(from, Msg::TwoB(Ballot::FAST, v));
                }
            }

            // Line 16: the two disjuncts of the 2B handler.
            Msg::TwoB(b, v) => {
                if b == Ballot::FAST {
                    // Votes for our own fast-path proposal.
                    if self.initial_val.as_ref() == Some(&v) {
                        self.fast_votes.insert(from);
                        self.try_fast_decide(eff);
                    }
                } else if self.bal == b
                    && self.my_ballot == Some(b)
                    && self.slow_value.as_ref() == Some(&v)
                    && self.decided.is_none()
                {
                    self.slow_votes.insert(from);
                    if self.slow_votes.len() >= self.cfg.slow_quorum() {
                        self.record_decision(v.clone(), DecisionPath::Slow, eff);
                        eff.broadcast_others(Msg::Decide(v), self.cfg.n(), self.me);
                    }
                }
            }

            // Lines 22–25.
            Msg::Decide(v) => {
                self.record_decision(v, DecisionPath::Learned, eff);
            }

            // Lines 27–31.
            Msg::OneA(b) => {
                if b > self.bal {
                    self.bal = b;
                    self.obs.ballot_advanced(self.me);
                    eff.send(
                        from,
                        Msg::OneB {
                            bal: b,
                            vbal: self.vbal,
                            val: self.val.clone(),
                            proposer: self.proposer,
                            decided: self.decided.clone(),
                        },
                    );
                }
            }

            // Lines 42–63 (collection side).
            Msg::OneB {
                bal,
                vbal,
                val,
                proposer,
                decided,
            } => {
                if self.my_ballot == Some(bal) && !self.oneb_done {
                    self.onebs.insert(
                        from,
                        Report {
                            vbal,
                            val,
                            proposer,
                            decided,
                        },
                    );
                    self.try_complete_phase_one(eff);
                }
            }

            // Lines 65–69.
            Msg::TwoA(b, v) => {
                if self.bal <= b {
                    self.val = Some(v.clone());
                    if b > self.bal {
                        self.obs.ballot_advanced(self.me);
                    }
                    self.bal = b;
                    self.vbal = b;
                    eff.send(from, Msg::TwoB(b, v));
                }
            }
        }
    }
}

impl<V: Value> Protocol<V> for TwoStep<V> {
    type Message = Msg<V>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_start(&mut self, eff: &mut Effects<V, Msg<V>>) {
        eff.set_timer(TimerId::NEW_BALLOT, INITIAL_BALLOT_DELAY);
        if self.omega.uses_heartbeats() {
            eff.broadcast_others(Msg::Heartbeat, self.cfg.n(), self.me);
            eff.set_timer(TimerId::HEARTBEAT, HEARTBEAT_PERIOD);
            eff.set_timer(TimerId::SUSPECT, SUSPECT_PERIOD);
        }
        if let Some(v) = self.startup_value.take() {
            self.do_propose(v, eff);
        }
    }

    fn on_propose(&mut self, value: V, eff: &mut Effects<V, Msg<V>>) {
        match self.variant {
            // The task variant's proposal is fixed at construction.
            Variant::Task => {}
            Variant::Object => self.do_propose(value, eff),
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg<V>, eff: &mut Effects<V, Msg<V>>) {
        self.on_msg(from, msg, eff);
    }

    fn on_timer(&mut self, timer: TimerId, eff: &mut Effects<V, Msg<V>>) {
        match timer {
            TimerId::HEARTBEAT => {
                eff.broadcast_others(Msg::Heartbeat, self.cfg.n(), self.me);
                eff.set_timer(TimerId::HEARTBEAT, HEARTBEAT_PERIOD);
            }
            TimerId::SUSPECT => {
                let before = self.omega.leader();
                self.omega.sweep();
                let after = self.omega.leader();
                if before != after {
                    self.obs.leader_changed(self.me, after);
                }
                eff.set_timer(TimerId::SUSPECT, SUSPECT_PERIOD);
            }
            TimerId::NEW_BALLOT => {
                eff.set_timer(TimerId::NEW_BALLOT, BALLOT_RETRY);
                if let Some(v) = self.decided.clone() {
                    // Decision gossip (liveness extension).
                    eff.broadcast_others(Msg::Decide(v), self.cfg.n(), self.me);
                    return;
                }
                if let Some(iv) = self.initial_val.clone() {
                    // Proposal retransmission (liveness extension).
                    eff.broadcast_others(Msg::Propose(iv), self.cfg.n(), self.me);
                }
                if self.omega.is_leader() {
                    self.start_new_ballot(eff);
                }
            }
            _ => {}
        }
    }

    fn decision(&self) -> Option<V> {
        self.decided.clone()
    }

    fn state_fingerprint(&self) -> u64 {
        // Structured hashing of the protocol-relevant state: orders of
        // magnitude cheaper than the Debug-string default, which matters
        // because the model checker fingerprints millions of states.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.me.hash(&mut h);
        self.bal.hash(&mut h);
        self.vbal.hash(&mut h);
        self.val.hash(&mut h);
        self.proposer.hash(&mut h);
        self.initial_val.hash(&mut h);
        self.decided.hash(&mut h);
        self.fast_votes.hash(&mut h);
        self.my_ballot.hash(&mut h);
        self.oneb_done.hash(&mut h);
        self.slow_value.hash(&mut h);
        self.slow_votes.hash(&mut h);
        self.observed.hash(&mut h);
        self.startup_value.hash(&mut h);
        self.omega.leader().hash(&mut h);
        self.omega.suspected().hash(&mut h);
        for (q, r) in self.onebs.iter() {
            q.hash(&mut h);
            r.vbal.hash(&mut h);
            r.val.hash(&mut h);
            r.proposer.hash(&mut h);
            r.decided.hash(&mut h);
        }
        h.finish()
    }

    fn state_fingerprint_relabeled(&self, rl: &twostep_types::relabel::Relabeling) -> Option<u64> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Decline permutations the behavior distinguishes. Heartbeat-mode
        // Ω tracks who it `heard` from (not part of the fingerprint), so
        // only the identity is safe; a pinned static leader must be a
        // fixed point of `π`.
        match self.omega.mode() {
            OmegaMode::Heartbeats => {
                if !rl.is_identity() {
                    return None;
                }
            }
            OmegaMode::Static(leader) => {
                if !rl.fixes(leader) {
                    return None;
                }
            }
        }
        let mut h = DefaultHasher::new();
        rl.pid(self.me).hash(&mut h);
        rl.ballot(self.bal)?.hash(&mut h);
        rl.ballot(self.vbal)?.hash(&mut h);
        self.val.hash(&mut h);
        self.proposer.map(|p| rl.pid(p)).hash(&mut h);
        self.initial_val.hash(&mut h);
        self.decided.hash(&mut h);
        rl.pset(self.fast_votes).hash(&mut h);
        match self.my_ballot {
            None => None::<Ballot>.hash(&mut h),
            Some(b) => Some(rl.ballot(b)?).hash(&mut h),
        }
        self.oneb_done.hash(&mut h);
        self.slow_value.hash(&mut h);
        rl.pset(self.slow_votes).hash(&mut h);
        self.observed.hash(&mut h);
        self.startup_value.hash(&mut h);
        rl.pid(self.omega.leader()).hash(&mut h);
        rl.pset(self.omega.suspected()).hash(&mut h);
        // The 1B quorum, re-sorted by relabeled reporter so the hash is
        // independent of collection order under `π`.
        let mut entries: Vec<(ProcessId, u64)> = Vec::with_capacity(self.onebs.len());
        for (q, r) in self.onebs.iter() {
            let mut eh = DefaultHasher::new();
            rl.ballot(r.vbal)?.hash(&mut eh);
            r.val.hash(&mut eh);
            r.proposer.map(|p| rl.pid(p)).hash(&mut eh);
            r.decided.hash(&mut eh);
            entries.push((rl.pid(q), eh.finish()));
        }
        entries.sort_unstable();
        entries.hash(&mut h);
        Some(h.finish())
    }

    /// Permanent no-op classification for the model checker's inert-mail
    /// scrub. Every `true` below rests on a monotonicity argument:
    /// `bal` never decreases, `val`/`initial_val`/`decided`/`observed`
    /// are never cleared once set, and future `my_ballot` assignments
    /// come from [`Ballot::next_owned_by`], which is strictly greater
    /// than the then-current `bal`.
    fn message_is_noop(&self, _from: ProcessId, msg: &Msg<V>) -> bool {
        // In heartbeat mode every delivery feeds `omega.observe`, whose
        // `heard` set steers future sweeps: nothing is ever inert.
        if self.omega.uses_heartbeats() {
            return false;
        }
        match msg {
            Msg::Heartbeat => true,
            Msg::Propose(v) => {
                // Effect requires `observed = ⊥` (set once) or the vote
                // precondition; the vote precondition is permanently dead
                // once the ballot left FAST, a vote was cast, or our own
                // (immutable once set) proposal rejects `v`.
                self.observed.is_some()
                    && (self.bal != Ballot::FAST
                        || self.val.is_some()
                        || self.initial_val.as_ref().is_some_and(|iv| {
                            *v < *iv
                                || (self.variant == Variant::Object
                                    && !self.ablations.no_object_guard
                                    && *v != *iv)
                        }))
            }
            Msg::TwoB(b, v) if *b == Ballot::FAST => {
                // A fast vote only counts toward our own proposal.
                self.initial_val.as_ref().is_some_and(|iv| iv != v)
            }
            Msg::TwoB(b, _) => {
                self.decided.is_some()
                    || *b < self.bal
                    || (*b == self.bal && self.my_ballot != Some(*b))
            }
            // Redelivering a known decision still rewrites `val` (which a
            // later `2A` may have overwritten), and a *conflicting*
            // decision is the violation witness itself: never inert.
            Msg::Decide(_) => false,
            Msg::OneA(b) => *b <= self.bal,
            Msg::OneB { bal: b, .. } => *b <= self.bal && self.my_ballot != Some(*b),
            Msg::TwoA(b, _) => *b < self.bal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_sim::ManualExecutor;

    fn cfg() -> SystemConfig {
        // Task-minimal for e = f = 1: n = max{3, 3} = 3.
        SystemConfig::minimal_task(1, 1).unwrap()
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Task setup without heartbeat noise and a pinned leader.
    fn task_exec(leader: u32) -> ManualExecutor<u64, TwoStep<u64>> {
        let cfg = cfg();
        ManualExecutor::new(cfg, |pid| {
            TwoStep::with_options(
                cfg,
                pid,
                Variant::Task,
                Some(10 * (u64::from(pid.as_u32()) + 1)),
                OmegaMode::Static(p(leader)),
                Ablations::NONE,
            )
        })
    }

    #[test]
    fn startup_broadcasts_proposal() {
        let mut ex = task_exec(0);
        ex.start(p(0));
        let proposes = ex.pending_matching(|m| matches!(m.msg, Msg::Propose(_)));
        assert_eq!(proposes.len(), 2, "Propose goes to Π \\ {{p0}}");
        assert_eq!(ex.process(p(0)).initial_value(), Some(&10));
    }

    #[test]
    fn first_proposal_wins_the_vote() {
        let mut ex = task_exec(0);
        ex.start_all();
        // Deliver p2's Propose(30) to p1 first: p1 votes for it.
        let ids = ex.pending_matching(|m| m.from == p(2) && m.to == p(1));
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(1)).vote(), Some(&30));
        // p0's Propose(10) now fails the `val = ⊥` precondition.
        let ids = ex.pending_matching(|m| m.from == p(0) && m.to == p(1));
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(1)).vote(), Some(&30));
        // Exactly one fast 2B left p1, addressed to p2.
        let twobs =
            ex.pending_matching(|m| m.from == p(1) && matches!(m.msg, Msg::TwoB(Ballot::FAST, _)));
        assert_eq!(twobs.len(), 1);
    }

    #[test]
    fn lower_proposal_rejected_by_higher_initial() {
        let mut ex = task_exec(0);
        ex.start_all();
        // p0's Propose(10) reaches p2 (initial 30): 10 < 30 fails the
        // `v ≥ initial_val` precondition.
        let ids = ex.pending_matching(|m| m.from == p(0) && m.to == p(2));
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(2)).vote(), None);
        assert!(ex
            .pending_matching(|m| m.from == p(2) && matches!(m.msg, Msg::TwoB(..)))
            .is_empty());
    }

    #[test]
    fn fast_path_decides_with_fast_quorum() {
        // n = 3, e = 1: fast quorum = 2 = proposer + 1 vote.
        let mut ex = task_exec(0);
        ex.start_all();
        // p2's proposal (30, the max) reaches p0 and p1; they vote.
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(|m| m.from == p(2) && m.to == target);
            ex.deliver(ids[0]);
        }
        // Deliver one 2B back to p2: together with itself that is n-e=2.
        let ids = ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::TwoB(..)));
        ex.deliver(ids[0]);
        assert_eq!(ex.decision_of(p(2)), Some(&30));
        assert_eq!(ex.process(p(2)).decision_path(), Some(DecisionPath::Fast));
        // Decide broadcast went out.
        let decides = ex.pending_matching(|m| matches!(m.msg, Msg::Decide(_)));
        assert_eq!(decides.len(), 2);
    }

    #[test]
    fn decide_message_propagates_decision() {
        let mut ex = task_exec(0);
        ex.start_all();
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(|m| m.from == p(2) && m.to == target);
            ex.deliver(ids[0]);
        }
        let ids = ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::TwoB(..)));
        ex.deliver(ids[0]);
        let ids = ex.pending_matching(|m| matches!(m.msg, Msg::Decide(_)) && m.to == p(0));
        ex.deliver(ids[0]);
        assert_eq!(ex.decision_of(p(0)), Some(&30));
        assert_eq!(
            ex.process(p(0)).decision_path(),
            Some(DecisionPath::Learned)
        );
        assert!(ex.agreement());
    }

    #[test]
    fn own_vote_for_other_value_blocks_fast_decision() {
        let mut ex = task_exec(0);
        ex.start_all();
        // p2 votes for... no wait: p2 has the max value; use p1 (20).
        // p1 first votes for p2's 30.
        let ids = ex.pending_matching(|m| m.from == p(2) && m.to == p(1));
        ex.deliver(ids[0]);
        // Now p0 votes for p1's 20? No — p0 has initial 10, 20 ≥ 10: ok.
        let ids = ex.pending_matching(|m| m.from == p(1) && m.to == p(0));
        ex.deliver(ids[0]);
        // p0's 2B(0, 20) arrives at p1. p1's val = 30 ≠ 20: the
        // `val ∈ {⊥, v}` precondition must block p1's fast decision.
        let ids = ex
            .pending_matching(|m| m.from == p(0) && m.to == p(1) && matches!(m.msg, Msg::TwoB(..)));
        ex.deliver(ids[0]);
        assert_eq!(ex.decision_of(p(1)), None);
    }

    #[test]
    fn one_a_advances_ballot_and_replies_state() {
        let mut ex = task_exec(1);
        ex.start_all();
        // p1 (leader) times out and starts ballot 1 (1 ≡ 1 mod 3).
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        let oneas = ex.pending_matching(|m| matches!(m.msg, Msg::OneA(_)));
        assert_eq!(oneas.len(), 3, "1A goes to all of Π including self");
        // Deliver 1A to p0.
        let ids = ex.pending_matching(|m| m.to == p(0) && matches!(m.msg, Msg::OneA(_)));
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(0)).ballot(), Ballot::new(1));
        let onebs = ex.pending_matching(|m| m.from == p(0) && matches!(m.msg, Msg::OneB { .. }));
        assert_eq!(onebs.len(), 1);
    }

    #[test]
    fn stale_one_a_ignored() {
        let mut ex = task_exec(1);
        ex.start_all();
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        let ids = ex.pending_matching(|m| m.to == p(0) && matches!(m.msg, Msg::OneA(_)));
        ex.deliver(ids[0]);
        // A later 1A with the same ballot (replayed) is rejected.
        // Simulate by making p1 lead again without progress: next ballot
        // is 4 (> 1, ≡ 1 mod 3); deliver it, then replay nothing lower.
        assert_eq!(ex.process(p(0)).ballot(), Ballot::new(1));
    }

    #[test]
    fn slow_path_decides_after_fast_path_stalls() {
        // Crash the two non-leader processes' proposals from reaching
        // anyone: simply drop everything from round 1, then run a slow
        // ballot at the leader.
        let mut ex = task_exec(1);
        ex.start_all();
        // Drop all fast-path traffic.
        for id in ex.pending_matching(|_| true) {
            ex.drop_message(id);
        }
        // Leader p1 starts ballot 1.
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        // Deliver 1A to everyone (incl. self), then 1Bs back.
        for target in [p(0), p(1), p(2)] {
            let ids = ex.pending_matching(move |m| m.to == target && matches!(m.msg, Msg::OneA(_)));
            ex.deliver(ids[0]);
        }
        let onebs = ex.pending_matching(|m| matches!(m.msg, Msg::OneB { .. }));
        assert_eq!(onebs.len(), 3);
        // Slow quorum is n-f = 2: deliver two 1Bs.
        for id in onebs.into_iter().take(2) {
            ex.deliver(id);
        }
        // Leader selected its own initial value (20) and sent 2A to all.
        let twoas = ex.pending_matching(|m| matches!(m.msg, Msg::TwoA(..)));
        assert_eq!(twoas.len(), 3);
        for id in twoas {
            ex.deliver(id);
        }
        // 2Bs flow back to the leader; n-f = 2 suffice.
        let twobs = ex.pending_matching(|m| m.to == p(1) && matches!(m.msg, Msg::TwoB(..)));
        assert!(twobs.len() >= 2);
        for id in twobs.into_iter().take(2) {
            ex.deliver(id);
        }
        assert_eq!(ex.decision_of(p(1)), Some(&20));
        assert_eq!(ex.process(p(1)).decision_path(), Some(DecisionPath::Slow));
        assert!(ex.agreement());
    }

    #[test]
    fn recovery_preserves_fast_decision() {
        // p2 fast-decides 30, then a slow ballot led by p1 must select 30
        // (Lemma 7 at the protocol level).
        let mut ex = task_exec(1);
        ex.start_all();
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(|m| m.from == p(2) && m.to == target);
            ex.deliver(ids[0]);
        }
        let ids = ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::TwoB(..)));
        ex.deliver(ids[0]);
        assert_eq!(ex.decision_of(p(2)), Some(&30));
        // Drop the Decide broadcasts: the others must recover via a slow
        // ballot instead.
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::Decide(_))) {
            ex.drop_message(id);
        }
        // p2 crashes. n-f = 2 correct remain: p0, p1.
        ex.crash(p(2));
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(move |m| m.to == target && matches!(m.msg, Msg::OneA(_)));
            ex.deliver(ids[0]);
        }
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::OneB { .. })) {
            ex.deliver(id);
        }
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::TwoA(..))) {
            ex.deliver(id);
        }
        for id in ex.pending_matching(|m| m.to == p(1) && matches!(m.msg, Msg::TwoB(..))) {
            ex.deliver(id);
        }
        assert_eq!(
            ex.decision_of(p(1)),
            Some(&30),
            "recovery must stick with the fast value"
        );
        assert!(ex.agreement());
    }

    #[test]
    fn object_variant_red_line_blocks_conflicting_propose() {
        let cfg = cfg();
        let mut ex = ManualExecutor::new(cfg, |pid| {
            TwoStep::<u64>::with_options(
                cfg,
                pid,
                Variant::Object,
                None,
                OmegaMode::Static(p(0)),
                Ablations::NONE,
            )
        });
        ex.start_all();
        assert!(
            ex.pending().is_empty(),
            "object variant proposes nothing at startup"
        );
        ex.propose(p(0), 10);
        ex.propose(p(1), 99);
        // p1 has proposed 99; p0's Propose(10) violates the red-line
        // precondition (initial_val ≠ ⊥ ⟹ v = initial_val) even though
        // 10 < 99 would anyway fail v ≥ initial_val; test the other
        // direction: p1's Propose(99) at p0 passes v ≥ 10 but p0 has
        // proposed 10 ≠ 99 → blocked.
        let ids = ex.pending_matching(|m| {
            m.from == p(1) && m.to == p(0) && matches!(m.msg, Msg::Propose(_))
        });
        ex.deliver(ids[0]);
        assert_eq!(
            ex.process(p(0)).vote(),
            None,
            "red line must block the vote"
        );

        // Same value is fine: p2 proposes 99 as well... p2 hasn't
        // proposed; it simply votes.
        let ids = ex.pending_matching(|m| {
            m.from == p(1) && m.to == p(2) && matches!(m.msg, Msg::Propose(_))
        });
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(2)).vote(), Some(&99));
    }

    #[test]
    fn object_guard_ablation_allows_conflicting_vote() {
        let cfg = cfg();
        let mut ex = ManualExecutor::new(cfg, |pid| {
            TwoStep::<u64>::with_options(
                cfg,
                pid,
                Variant::Object,
                None,
                OmegaMode::Static(p(0)),
                Ablations {
                    no_object_guard: true,
                    ..Ablations::NONE
                },
            )
        });
        ex.start_all();
        ex.propose(p(0), 10);
        ex.propose(p(1), 99);
        let ids = ex.pending_matching(|m| {
            m.from == p(1) && m.to == p(0) && matches!(m.msg, Msg::Propose(_))
        });
        ex.deliver(ids[0]);
        assert_eq!(
            ex.process(p(0)).vote(),
            Some(&99),
            "ablation drops the red line"
        );
    }

    #[test]
    fn task_variant_ignores_client_proposals() {
        let mut ex = task_exec(0);
        ex.start_all();
        let before = ex.pending().len();
        ex.propose(p(0), 12345);
        assert_eq!(ex.pending().len(), before);
        assert_eq!(ex.process(p(0)).initial_value(), Some(&10));
    }

    #[test]
    fn object_repeat_propose_is_idempotent() {
        let cfg = cfg();
        let mut ex = ManualExecutor::new(cfg, |pid| {
            TwoStep::<u64>::with_options(
                cfg,
                pid,
                Variant::Object,
                None,
                OmegaMode::Static(p(0)),
                Ablations::NONE,
            )
        });
        ex.start_all();
        ex.propose(p(0), 10);
        let first = ex.pending().len();
        ex.propose(p(0), 77);
        assert_eq!(ex.pending().len(), first, "second propose ignored");
        assert_eq!(ex.process(p(0)).initial_value(), Some(&10));
    }

    #[test]
    #[should_panic(expected = "task variant requires an initial value")]
    fn task_without_value_panics() {
        let _ = TwoStep::<u64>::with_options(
            cfg(),
            p(0),
            Variant::Task,
            None,
            OmegaMode::Heartbeats,
            Ablations::NONE,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_process_panics() {
        let _ = TwoStep::<u64>::task(cfg(), p(9), 1);
    }

    #[test]
    fn two_a_vote_updates_ballot_state() {
        let mut ex = task_exec(1);
        ex.start_all();
        for id in ex.pending_matching(|_| true) {
            ex.drop_message(id);
        }
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        for target in [p(0), p(1), p(2)] {
            let ids = ex.pending_matching(move |m| m.to == target && matches!(m.msg, Msg::OneA(_)));
            ex.deliver(ids[0]);
        }
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::OneB { .. })) {
            ex.deliver(id);
        }
        let ids = ex.pending_matching(|m| m.to == p(0) && matches!(m.msg, Msg::TwoA(..)));
        ex.deliver(ids[0]);
        let st = ex.process(p(0));
        assert_eq!(st.ballot(), Ballot::new(1));
        assert_eq!(st.voted_ballot(), Ballot::new(1));
        assert_eq!(st.vote(), Some(&20));
    }

    #[test]
    fn observer_reports_fast_decision() {
        use twostep_telemetry::Metrics;
        let (metrics, obs) = Metrics::shared();
        let cfg = cfg();
        let mut ex = ManualExecutor::new(cfg, |pid| {
            TwoStep::with_options(
                cfg,
                pid,
                Variant::Task,
                Some(10 * (u64::from(pid.as_u32()) + 1)),
                OmegaMode::Static(p(0)),
                Ablations::NONE,
            )
            .observed(obs.clone())
        });
        ex.start_all();
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(|m| m.from == p(2) && m.to == target);
            ex.deliver(ids[0]);
        }
        let ids = ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::TwoB(..)));
        ex.deliver(ids[0]);
        assert_eq!(ex.decision_of(p(2)), Some(&30));
        let snap = metrics.snapshot();
        assert_eq!(snap.decided(twostep_telemetry::Path::Fast), 1);
        assert_eq!(snap.slow_entries, 0);
        assert_eq!(ex.process(p(2)).telemetry_path(), Some(Path::Fast));
    }

    #[test]
    fn observer_reports_slow_path_entry_recovery_case_and_ballot_advances() {
        use twostep_telemetry::Metrics;
        let (metrics, obs) = Metrics::shared();
        let cfg = cfg();
        let mut ex = ManualExecutor::new(cfg, |pid| {
            TwoStep::with_options(
                cfg,
                pid,
                Variant::Task,
                Some(10 * (u64::from(pid.as_u32()) + 1)),
                OmegaMode::Static(p(1)),
                Ablations::NONE,
            )
            .observed(obs.clone())
        });
        ex.start_all();
        for id in ex.pending_matching(|_| true) {
            ex.drop_message(id);
        }
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        for target in [p(0), p(1), p(2)] {
            let ids = ex.pending_matching(move |m| m.to == target && matches!(m.msg, Msg::OneA(_)));
            ex.deliver(ids[0]);
        }
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::OneB { .. })) {
            ex.deliver(id);
        }
        for id in ex.pending_matching(|m| matches!(m.msg, Msg::TwoA(..))) {
            ex.deliver(id);
        }
        for id in ex.pending_matching(|m| m.to == p(1) && matches!(m.msg, Msg::TwoB(..))) {
            ex.deliver(id);
        }
        assert_eq!(ex.decision_of(p(1)), Some(&20));
        let snap = metrics.snapshot();
        assert_eq!(snap.slow_entries, 1, "one ballot opened");
        assert_eq!(
            snap.recovery(RecoveryCase::Fallback),
            1,
            "all reports were empty: the coordinator fell back to its own value"
        );
        assert_eq!(snap.decided(Path::Slow), 1);
        // Every process adopted ballot 1 exactly once.
        assert_eq!(snap.ballot_advances, 3);
        assert_eq!(
            ex.process(p(1)).recovery_case(),
            Some(RecoveryCase::Fallback)
        );
    }

    #[test]
    fn fast_votes_ignored_after_joining_slow_ballot() {
        // The "they will not take it in the future either" remark: a
        // process that moved to a slow ballot must not fast-decide.
        let mut ex = task_exec(1);
        ex.start_all();
        // p2's Propose reaches p0 and p1; they vote and reply.
        for target in [p(0), p(1)] {
            let ids = ex.pending_matching(|m| m.from == p(2) && m.to == target);
            ex.deliver(ids[0]);
        }
        // Before the 2Bs reach p2, p2 joins ballot 1.
        ex.fire_timer(p(1), TimerId::NEW_BALLOT);
        let ids = ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::OneA(_)));
        ex.deliver(ids[0]);
        assert_eq!(ex.process(p(2)).ballot(), Ballot::new(1));
        // Now the fast 2Bs arrive: bal ≠ 0 must block the fast decision.
        for id in
            ex.pending_matching(|m| m.to == p(2) && matches!(m.msg, Msg::TwoB(Ballot::FAST, _)))
        {
            ex.deliver(id);
        }
        assert_eq!(ex.decision_of(p(2)), None);
    }
}
