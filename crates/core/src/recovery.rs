//! The leader's value-selection rule (Figure 1, lines 43–63).
//!
//! This is the paper's central algorithmic contribution: a recovery rule
//! that correctly resurrects fast-path decisions with only
//! `n ≥ 2e+f` (task) or `n ≥ 2e+f-1` (object) processes, where Fast
//! Paxos's rule needs `n ≥ 2e+f+1`.
//!
//! Given `1B` reports from a quorum `Q` of `n-f` processes, the rule is:
//!
//! 1. if some report carries a decision, select it;
//! 2. else if a vote was cast in a slow ballot, select the vote of the
//!    highest such ballot (classic Paxos);
//! 3. else restrict attention to `R = {q ∈ Q | proposer_q ∉ Q}` — votes
//!    whose proposer sits inside `Q` are *excluded*, because that
//!    proposer demonstrably did not decide on the fast path and, having
//!    joined this slow ballot, never will;
//! 4. if some value has **more than** `n-f-e` votes in `R`, select it
//!    (Lemma 7 shows it is unique);
//! 5. else if values have **exactly** `n-f-e` votes in `R`, select the
//!    **greatest** such value;
//! 6. else fall back to the leader's own proposal, if any (extended — see
//!    the crate docs — by any proposal the leader has merely observed,
//!    which is equally safe in this branch).
//!
//! The rule is exposed in two forms:
//!
//! * [`classify`] — the typed API used by the protocol core: it returns
//!   a [`Recovery`] verdict whose `> n-f-e` and `= n-f-e` cases are the
//!   *distinct types* [`RecoveryGt`] and [`RecoveryEq`], so the
//!   max-value tie-break of line 58 only exists where the paper applies
//!   it (the exact-threshold case — [`RecoveryEq::greatest`]); the
//!   above-threshold case, unique by Lemma 7, offers no choice at all.
//! * [`select_value`] / [`select_value_explained`] — pure-function
//!   wrappers over [`classify`] kept for property tests (see the
//!   Lemma 7 generators in this module's tests), the lower-bound
//!   witness replays in `crates/analysis`, and micro-benchmarks.

use twostep_telemetry::RecoveryCase;
use twostep_types::quorum::{Collector, VoteTally};
use twostep_types::{Ballot, ProcessId, SystemConfig, Value};

use crate::Ablations;

/// One `1B` report as consumed by the recovery rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report<V> {
    /// Last ballot in which the reporter voted.
    pub vbal: Ballot,
    /// The reporter's vote (`⊥` if none).
    pub val: Option<V>,
    /// Proposer of `val`.
    pub proposer: Option<ProcessId>,
    /// The reporter's decision (`⊥` if undecided).
    pub decided: Option<V>,
}

impl<V> Report<V> {
    /// A report from a process that has done nothing yet.
    pub fn empty() -> Self {
        Report {
            vbal: Ballot::FAST,
            val: None,
            proposer: None,
            decided: None,
        }
    }

    /// A report of a fast-ballot vote for `val` proposed by `proposer`.
    pub fn fast_vote(val: V, proposer: ProcessId) -> Self {
        Report {
            vbal: Ballot::FAST,
            val: Some(val),
            proposer: Some(proposer),
            decided: None,
        }
    }
}

/// The `> n-f-e` vote-count case of the recovery rule (line 54).
///
/// Lemma 7 proves the value reaching this count is unique, so the type
/// carries exactly one value and offers no tie-break: the max-value
/// choice of line 58 does not exist here, by construction.
///
/// Only [`classify`] (inside `crates/core`) creates instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryGt<V> {
    value: V,
}

impl<V: Value> RecoveryGt<V> {
    /// The unique value with more than `n-f-e` surviving votes.
    pub fn value(&self) -> &V {
        &self.value
    }

    /// Consumes the verdict, yielding the mandated value.
    pub fn into_value(self) -> V {
        self.value
    }
}

/// The `= n-f-e` vote-count case of the recovery rule (line 57).
///
/// Several values can tie at exactly `n-f-e` surviving votes; the
/// paper's line 58 breaks the tie by taking the **greatest**. That
/// tie-break exists only on this type — resolving it is the one
/// decision the recovery rule leaves open, and [`RecoveryEq::greatest`]
/// is the only safe resolution (E2's ablation study decides via
/// [`RecoveryEq::least_ablated`] instead and demonstrably loses
/// agreement).
///
/// Only [`classify`] (inside `crates/core`) creates instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEq<V> {
    greatest: V,
    least: V,
}

impl<V: Value> RecoveryEq<V> {
    /// Line 58: the greatest value with exactly `n-f-e` surviving
    /// votes — the paper's tie-break.
    pub fn greatest(self) -> V {
        self.greatest
    }

    /// The least tied value: the deliberately wrong tie-break used by
    /// the `no_max_tiebreak` ablation (experiment E2).
    pub fn least_ablated(self) -> V {
        self.least
    }
}

/// The recovery rule's verdict over a frozen `1B` quorum: which branch
/// of lines 48–63 fired, with the two vote-count cases as distinct
/// types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery<V> {
    /// Line 48: some report carried a decision; it must be selected.
    ReportedDecision(V),
    /// Line 52: a slow-ballot vote exists; the vote of the highest such
    /// ballot is adopted (classic Paxos; `None` only if that report's
    /// vote was empty, which consistent reports never produce).
    SlowBallot(Option<V>),
    /// Line 54: a value holds **more than** `n-f-e` surviving votes.
    Gt(RecoveryGt<V>),
    /// Line 57: values hold **exactly** `n-f-e` surviving votes.
    Eq(RecoveryEq<V>),
    /// Line 60: nothing to resurrect; the leader falls back to its own
    /// (or an observed) proposal.
    Fallback,
}

/// Applies the selection rule to the `1B` quorum `reports`, returning
/// the typed [`Recovery`] verdict.
///
/// # Panics
///
/// Panics if `reports` is smaller than a slow quorum of `n-f` — in
/// release builds too: an undersized `1B` quorum silently selecting a
/// value is exactly the failure mode Lemma 7 rules out, so it must
/// never survive into production.
pub fn classify<V: Value>(
    cfg: &SystemConfig,
    reports: &Collector<Report<V>>,
    ablations: Ablations,
) -> Recovery<V> {
    // Release-mode check: selecting from fewer than n-f reports voids
    // every quorum-intersection argument the rule rests on.
    assert!(
        reports.len() >= cfg.slow_quorum(),
        "recovery needs a quorum of n-f reports, got {}",
        reports.len()
    );

    // Line 48: a reported decision wins outright.
    if let Some(v) = reports.iter().find_map(|(_, r)| r.decided.clone()) {
        return Recovery::ReportedDecision(v);
    }

    // Line 46: the highest ballot in which anyone voted.
    let bmax = reports
        .iter()
        .map(|(_, r)| r.vbal)
        .max()
        .unwrap_or(Ballot::FAST);

    if bmax.is_slow() {
        // Line 52: classic Paxos — adopt the vote of the highest ballot.
        // All such votes carry the same value (Lemma C.2); pick the
        // lowest reporter deterministically.
        return Recovery::SlowBallot(
            reports
                .iter()
                .find(|(_, r)| r.vbal == bmax)
                .and_then(|(_, r)| r.val.clone()),
        );
    }

    // bmax = 0: only fast-ballot votes exist. Line 47: restrict to
    // R = {q ∈ Q | proposer_q ∉ Q}.
    let quorum = reports.senders();
    let mut tally: VoteTally<V> = VoteTally::new();
    for (q, r) in reports.iter() {
        let Some(v) = &r.val else { continue };
        let in_r = match r.proposer {
            Some(p) => !quorum.contains(p),
            // A vote always has a proposer; tolerate reports without one
            // by treating them as excluded-proposer votes.
            None => true,
        };
        if in_r || ablations.no_proposer_exclusion {
            tally.record(q, v.clone());
        }
    }

    let threshold = cfg.recovery_threshold();

    // Line 54: a value with more than n-f-e votes. Lemma 7 proves at
    // most one value can reach this; the count argument
    // (2(n-f-e)+2 ≤ n-f ⟺ n ≤ 2e+f-2) guarantees uniqueness for any
    // vote multiset whenever n ≥ 2e+f-1, so assert it there — the
    // lower-bound adversary (experiment E3) deliberately runs below the
    // bound, where two values can exceed the threshold and this
    // arbitrary pick is exactly what breaks agreement.
    if let Some(v) = tally.values_with_count_at_least(threshold + 1).next() {
        assert!(
            !cfg.satisfies_object_bound()
                || tally.values_with_count_at_least(threshold + 1).count() == 1,
            "Lemma 7: the > n-f-e value must be unique at n >= 2e+f-1"
        );
        return Recovery::Gt(RecoveryGt { value: v.clone() });
    }

    // Line 57: values with exactly n-f-e votes. Both ends of the tie
    // are fixed here so the only open decision — which end to take —
    // lives on the RecoveryEq type itself.
    let greatest = tally.max_value_with_count_exactly(threshold).cloned();
    let least = tally.values_with_count_exactly(threshold).next().cloned();
    if let (Some(greatest), Some(least)) = (greatest, least) {
        return Recovery::Eq(RecoveryEq { greatest, least });
    }

    // Line 60: nothing to resurrect.
    Recovery::Fallback
}

/// Applies the selection rule to the `1B` quorum `reports`.
///
/// `my_initial` is the leader's own proposal (line 60's
/// `initial_val`); `observed` is a proposal the leader has seen but not
/// voted for (the liveness extension documented in the crate docs);
/// both feed only the final fallback branch.
///
/// Returns `None` when no value may be proposed (the ballot then simply
/// yields nothing, line 63's guard).
///
/// # Panics
///
/// Panics if `reports` is smaller than a slow quorum of `n-f` — in
/// release builds too: an undersized `1B` quorum silently selecting a
/// value is exactly the failure mode Lemma 7 rules out, so it must
/// never survive into production.
pub fn select_value<V: Value>(
    cfg: &SystemConfig,
    reports: &Collector<Report<V>>,
    my_initial: Option<&V>,
    observed: Option<&V>,
    ablations: Ablations,
) -> Option<V> {
    select_value_explained(cfg, reports, my_initial, observed, ablations).0
}

/// Like [`select_value`], additionally reporting *which* branch of the
/// rule fired as a telemetry [`RecoveryCase`] — notably whether the
/// `> n-f-e` ([`RecoveryCase::Gt`]) or the `= n-f-e`
/// ([`RecoveryCase::Eq`]) vote-count case resurrected a possible fast
/// decision.
///
/// The case is reported even when the selected value is `None` (which
/// can only happen in the [`RecoveryCase::Fallback`] branch).
pub fn select_value_explained<V: Value>(
    cfg: &SystemConfig,
    reports: &Collector<Report<V>>,
    my_initial: Option<&V>,
    observed: Option<&V>,
    ablations: Ablations,
) -> (Option<V>, RecoveryCase) {
    match classify(cfg, reports, ablations) {
        Recovery::ReportedDecision(v) => (Some(v), RecoveryCase::ReportedDecision),
        Recovery::SlowBallot(v) => (v, RecoveryCase::SlowBallot),
        Recovery::Gt(gt) => (Some(gt.into_value()), RecoveryCase::Gt),
        Recovery::Eq(eq) => {
            // Line 58's tie-break, or the least value under the ablation.
            let v = if ablations.no_max_tiebreak {
                eq.least_ablated()
            } else {
                eq.greatest()
            };
            (Some(v), RecoveryCase::Eq)
        }
        // Line 60: the leader's own proposal; liveness extension: any
        // observed proposal is equally valid here.
        Recovery::Fallback => (my_initial.or(observed).cloned(), RecoveryCase::Fallback),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use twostep_types::combinations;
    use twostep_types::ProcessSet;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn collect<V: Value>(reports: Vec<(u32, Report<V>)>) -> Collector<Report<V>> {
        let mut c = Collector::new();
        for (i, r) in reports {
            c.insert(pid(i), r);
        }
        c
    }

    /// Task-minimal config for e = f = 2: n = max{6, 5} = 6,
    /// slow quorum 4, threshold n-f-e = 2.
    fn cfg_task() -> SystemConfig {
        SystemConfig::minimal_task(2, 2).unwrap()
    }

    #[test]
    fn reported_decision_wins() {
        let cfg = cfg_task();
        let reports = collect(vec![
            (0, Report::empty()),
            (
                1,
                Report {
                    decided: Some(9u64),
                    ..Report::empty()
                },
            ),
            (2, Report::fast_vote(5, pid(5))),
            (3, Report::empty()),
        ]);
        assert_eq!(
            select_value(&cfg, &reports, Some(&1), None, Ablations::NONE),
            Some(9)
        );
    }

    #[test]
    fn highest_slow_ballot_wins() {
        let cfg = cfg_task();
        let mk = |vbal: u64, v: u64| Report {
            vbal: Ballot::new(vbal),
            val: Some(v),
            proposer: Some(pid(0)),
            decided: None,
        };
        let reports = collect(vec![
            (0, mk(1, 10)),
            (1, mk(3, 30)),
            (2, mk(2, 20)),
            (3, Report::empty()),
        ]);
        assert_eq!(
            select_value(&cfg, &reports, Some(&1), None, Ablations::NONE),
            Some(30)
        );
    }

    #[test]
    fn above_threshold_fast_votes_win() {
        let cfg = cfg_task(); // threshold 2
                              // p5 (outside Q = {0,1,2,3}) proposed 7; three voters > 2.
        let reports = collect(vec![
            (0, Report::fast_vote(7u64, pid(5))),
            (1, Report::fast_vote(7, pid(5))),
            (2, Report::fast_vote(7, pid(5))),
            (3, Report::empty()),
        ]);
        assert_eq!(
            select_value(&cfg, &reports, Some(&1), None, Ablations::NONE),
            Some(7)
        );
    }

    #[test]
    fn proposer_inside_quorum_is_excluded() {
        let cfg = cfg_task();
        // p0 ∈ Q proposed 7 and three others voted for it — but p0 is in
        // Q, so those votes are excluded; fallback to leader's initial.
        let reports = collect(vec![
            (0, Report::empty()), // the proposer itself, no vote
            (1, Report::fast_vote(7u64, pid(0))),
            (2, Report::fast_vote(7, pid(0))),
            (3, Report::fast_vote(7, pid(0))),
        ]);
        assert_eq!(
            select_value(&cfg, &reports, Some(&1), None, Ablations::NONE),
            Some(1)
        );
        // Ablated: the excluded votes count again and 7 wins.
        let ablated = Ablations {
            no_proposer_exclusion: true,
            ..Ablations::NONE
        };
        assert_eq!(
            select_value(&cfg, &reports, Some(&1), None, ablated),
            Some(7)
        );
    }

    #[test]
    fn exact_threshold_takes_max_value() {
        let cfg = cfg_task(); // threshold 2
                              // Two values with exactly 2 votes each, proposers outside Q.
        let reports = collect(vec![
            (0, Report::fast_vote(7u64, pid(5))),
            (1, Report::fast_vote(7, pid(5))),
            (2, Report::fast_vote(9, pid(4))),
            (3, Report::fast_vote(9, pid(4))),
        ]);
        assert_eq!(
            select_value(&cfg, &reports, Some(&1), None, Ablations::NONE),
            Some(9)
        );
        let ablated = Ablations {
            no_max_tiebreak: true,
            ..Ablations::NONE
        };
        assert_eq!(
            select_value(&cfg, &reports, Some(&1), None, ablated),
            Some(7)
        );
    }

    #[test]
    fn fallback_to_initial_then_observed() {
        let cfg = cfg_task();
        let empty = collect(vec![
            (0, Report::empty()),
            (1, Report::empty()),
            (2, Report::empty()),
            (3, Report::empty()),
        ]);
        assert_eq!(
            select_value(&cfg, &empty, Some(&42u64), Some(&13), Ablations::NONE),
            Some(42),
            "leader's own proposal beats observed"
        );
        assert_eq!(
            select_value(&cfg, &empty, None, Some(&13u64), Ablations::NONE),
            Some(13),
            "observed proposal used when leader has none"
        );
        assert_eq!(
            select_value::<u64>(&cfg, &empty, None, None, Ablations::NONE),
            None,
            "nothing to propose"
        );
    }

    #[test]
    fn below_threshold_votes_are_ignored() {
        let cfg = cfg_task(); // threshold 2
        let reports = collect(vec![
            (0, Report::fast_vote(7u64, pid(5))),
            (1, Report::empty()),
            (2, Report::empty()),
            (3, Report::empty()),
        ]);
        // One vote < threshold: fall through to initial.
        assert_eq!(
            select_value(&cfg, &reports, Some(&1), None, Ablations::NONE),
            Some(1)
        );
    }

    #[test]
    fn explained_variant_labels_every_branch() {
        let cfg = cfg_task(); // threshold 2
        let case_of = |reports: &Collector<Report<u64>>, initial: Option<&u64>| {
            select_value_explained(&cfg, reports, initial, None, Ablations::NONE).1
        };

        let decided = collect(vec![
            (
                0,
                Report {
                    decided: Some(9u64),
                    ..Report::empty()
                },
            ),
            (1, Report::empty()),
            (2, Report::empty()),
            (3, Report::empty()),
        ]);
        assert_eq!(case_of(&decided, None), RecoveryCase::ReportedDecision);

        let slow = collect(vec![
            (
                0,
                Report {
                    vbal: Ballot::new(2),
                    val: Some(5u64),
                    proposer: Some(pid(0)),
                    decided: None,
                },
            ),
            (1, Report::empty()),
            (2, Report::empty()),
            (3, Report::empty()),
        ]);
        assert_eq!(case_of(&slow, None), RecoveryCase::SlowBallot);

        let gt = collect(vec![
            (0, Report::fast_vote(7u64, pid(5))),
            (1, Report::fast_vote(7, pid(5))),
            (2, Report::fast_vote(7, pid(5))),
            (3, Report::empty()),
        ]);
        assert_eq!(case_of(&gt, None), RecoveryCase::Gt);

        let eq = collect(vec![
            (0, Report::fast_vote(7u64, pid(5))),
            (1, Report::fast_vote(7, pid(5))),
            (2, Report::empty()),
            (3, Report::empty()),
        ]);
        assert_eq!(case_of(&eq, None), RecoveryCase::Eq);

        let empty = collect(vec![
            (0, Report::<u64>::empty()),
            (1, Report::empty()),
            (2, Report::empty()),
            (3, Report::empty()),
        ]);
        assert_eq!(case_of(&empty, Some(&1)), RecoveryCase::Fallback);
        // The case is reported even when nothing can be selected.
        let (sel, case) = select_value_explained::<u64>(&cfg, &empty, None, None, Ablations::NONE);
        assert_eq!(sel, None);
        assert_eq!(case, RecoveryCase::Fallback);
    }

    /// Lemma 7, executable: for every task-bound config, every fast
    /// decision for `v`, every quorum Q, and every consistent adversarial
    /// completion of the reports, the rule selects `v`.
    ///
    /// Construction: at least n-e processes voted for v at ballot 0
    /// (proposer pv among them implicitly). Q is any n-f subset. The
    /// remaining Q members either voted for other values (with proposers
    /// arbitrary but consistent: a process that voted for v' has
    /// proposer(v') as its proposer field) or not at all. No slow votes,
    /// no decisions reported (those branches are trivially fine and
    /// covered above).
    #[test]
    fn lemma7_exhaustive_small_configs() {
        for (e, f) in [(1usize, 1), (1, 2), (2, 2), (2, 3)] {
            let cfg = SystemConfig::minimal_task(e, f).unwrap();
            let n = cfg.n();
            let v_win = 100u64;
            // Proposer of the winning value: try every choice.
            for pv in 0..n as u32 {
                // Fast voter sets: exactly n-e voters for v including... the
                // proposer "implicitly includes itself"; model: pv plus
                // n-e-1 others vote v. Enumerate which processes voted v:
                // all supersets of {pv} of size n-e. To keep the test fast,
                // use the lexicographically first few.
                let mut count = 0;
                for voters in combinations(n, n - e) {
                    if !voters.contains(pid(pv)) {
                        continue;
                    }
                    count += 1;
                    if count > 6 {
                        break;
                    }
                    // Everyone not voting for v votes for a rival value 50
                    // proposed by the lowest non-v-voter (worst case:
                    // concentrated rival support).
                    let rival_proposer = voters.complement(n).min();
                    // Q: first n-f processes — plus a rotation to vary
                    // overlap with the voter set.
                    for rot in 0..n {
                        let q: ProcessSet = (0..n)
                            .map(|i| pid(((i + rot) % n) as u32))
                            .take(n - f)
                            .collect();
                        let mut reports = Collector::new();
                        for qi in q.iter() {
                            let r = if voters.contains(qi) && qi != pid(pv) {
                                Report::fast_vote(v_win, pid(pv))
                            } else if qi == pid(pv) {
                                // The proposer itself: it decided v on the
                                // fast path (it gathered n-e support).
                                Report {
                                    vbal: Ballot::FAST,
                                    val: Some(v_win),
                                    proposer: Some(pid(pv)),
                                    decided: Some(v_win),
                                }
                            } else if let Some(rp) = rival_proposer {
                                Report::fast_vote(50, rp)
                            } else {
                                Report::empty()
                            };
                            reports.insert(qi, r);
                        }
                        let got = select_value(&cfg, &reports, Some(&1), None, Ablations::NONE);
                        assert_eq!(
                            got,
                            Some(v_win),
                            "cfg={cfg}, pv=p{pv}, voters={voters:?}, rot={rot}"
                        );
                    }
                }
            }
        }
    }

    proptest! {
        /// Randomized Lemma 7: same invariant as above but with random
        /// voter sets, random rival values (possibly greater than the
        /// winner — the tie-break must not overturn a fast decision),
        /// and random quorums.
        #[test]
        fn lemma7_randomized(
            seed_cfg in 0usize..4,
            pv_raw in 0u32..16,
            rival in 0u64..200,
            quorum_seed in 0u64..1000,
            extra_voters in 0usize..3,
        ) {
            let (e, f) = [(1usize, 1), (1, 2), (2, 2), (2, 3)][seed_cfg];
            let cfg = SystemConfig::minimal_task(e, f).unwrap();
            let n = cfg.n();
            let pv = pid(pv_raw % n as u32);
            let v_win = 100u64;
            prop_assume!(rival != v_win);

            // Voters for v: pv plus the next n-e-1+extra ids (wrapping).
            let n_voters = (n - e + extra_voters).min(n);
            let voters: ProcessSet = (0..n_voters)
                .map(|k| pid(((pv.as_u32() as usize + k) % n) as u32))
                .collect();

            // Quorum: n-f ids starting at quorum_seed.
            let q: ProcessSet = (0..n - f)
                .map(|k| pid(((quorum_seed as usize + k) % n) as u32))
                .collect();

            let rival_proposer = voters.complement(n).min();
            let mut reports = Collector::new();
            for qi in q.iter() {
                let r = if qi == pv {
                    Report {
                        vbal: Ballot::FAST,
                        val: Some(v_win),
                        proposer: Some(pv),
                        decided: Some(v_win),
                    }
                } else if voters.contains(qi) {
                    Report::fast_vote(v_win, pv)
                } else if let Some(rp) = rival_proposer {
                    Report::fast_vote(rival, rp)
                } else {
                    Report::empty()
                };
                reports.insert(qi, r);
            }
            let got = select_value(&cfg, &reports, Some(&1), None, Ablations::NONE);
            prop_assert_eq!(got, Some(v_win));
        }

        /// Validity of the rule: whatever it selects was either voted
        /// for, decided, the leader's initial or the observed proposal.
        #[test]
        fn selection_is_valid(
            votes in proptest::collection::vec((0u32..6, proptest::option::of(0u64..5)), 4),
            initial in proptest::option::of(100u64..105),
            observed in proptest::option::of(200u64..205),
        ) {
            let cfg = SystemConfig::minimal_task(2, 2).unwrap();
            let mut reports = Collector::new();
            let mut mentioned: Vec<u64> = vec![];
            for (i, (prop_raw, val)) in votes.iter().enumerate() {
                let r = match val {
                    Some(v) => {
                        mentioned.push(*v);
                        Report::fast_vote(*v, pid(prop_raw % 6))
                    }
                    None => Report::empty(),
                };
                reports.insert(pid(i as u32), r);
            }
            mentioned.extend(initial);
            mentioned.extend(observed);
            if let Some(sel) =
                select_value(&cfg, &reports, initial.as_ref(), observed.as_ref(), Ablations::NONE)
            {
                prop_assert!(mentioned.contains(&sel), "selected {sel} out of thin air");
            }
        }
    }
}
