//! The single entry point for constructing protocol instances.
//!
//! The typestate redesign removed the fully-parameterised constructors
//! (`with_options`-style entry points): options accumulate on a
//! [`TwoStepBuilder`], and the *variant* is fixed by the terminal method
//! — [`task`](TwoStepBuilder::task) hands the initial value straight to
//! the birth phase, [`object`](TwoStepBuilder::object) arms the red-line
//! precondition on it. A task without an initial value or an object
//! with a startup value is therefore unrepresentable, not a runtime
//! panic.

use twostep_telemetry::ObserverHandle;
use twostep_types::{ProcessId, SystemConfig, Value};

use crate::consensus::{TwoStep, Variant};
use crate::omega::OmegaMode;
use crate::{Ablations, ObjectConsensus, TaskConsensus};

/// Builder for [`TaskConsensus`] / [`ObjectConsensus`] instances.
///
/// Defaults: heartbeat-driven Ω, no ablations, detached telemetry.
/// The terminal methods take `&self`, so one builder can mint a whole
/// cluster:
///
/// ```rust
/// use twostep_core::{OmegaMode, TwoStepBuilder};
/// use twostep_types::{ProcessId, SystemConfig};
///
/// let cfg = SystemConfig::minimal_task(1, 1)?; // n = 3
/// let builder = TwoStepBuilder::new(cfg).omega(OmegaMode::Static(ProcessId::new(0)));
/// let cluster: Vec<_> = (0..cfg.n() as u32)
///     .map(|i| builder.task(ProcessId::new(i), u64::from(i)))
///     .collect();
/// assert_eq!(cluster.len(), 3);
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TwoStepBuilder {
    cfg: SystemConfig,
    omega: OmegaMode,
    ablations: Ablations,
    obs: ObserverHandle,
}

impl TwoStepBuilder {
    /// Starts a builder for configuration `cfg` with default options.
    pub fn new(cfg: SystemConfig) -> Self {
        TwoStepBuilder {
            cfg,
            omega: OmegaMode::Heartbeats,
            ablations: Ablations::NONE,
            obs: ObserverHandle::none(),
        }
    }

    /// Selects the Ω failure-detector mode.
    pub fn omega(mut self, omega: OmegaMode) -> Self {
        self.omega = omega;
        self
    }

    /// Applies ablation switches (experiment harness only).
    pub fn ablations(mut self, ablations: Ablations) -> Self {
        self.ablations = ablations;
        self
    }

    /// Attaches telemetry hooks.
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Births a consensus-**task** instance for `me`: the initial value
    /// is part of construction and is proposed at startup.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for the configuration.
    pub fn task<V: Value>(&self, me: ProcessId, initial: V) -> TaskConsensus<V> {
        TaskConsensus::from_machine(TwoStep::new_machine(
            self.cfg,
            me,
            Variant::Task,
            Some(initial),
            self.omega,
            self.ablations,
            self.obs.clone(),
        ))
    }

    /// Births a consensus-**object** instance for `me`: no value until
    /// `propose(v)` is invoked, and the red-line preconditions apply.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for the configuration.
    pub fn object<V: Value>(&self, me: ProcessId) -> ObjectConsensus<V> {
        ObjectConsensus::from_machine(TwoStep::new_machine(
            self.cfg,
            me,
            Variant::Object,
            None,
            self.omega,
            self.ablations,
            self.obs.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_types::protocol::{Effects, Protocol};

    #[test]
    fn builder_defaults_and_reuse() {
        let cfg = SystemConfig::minimal_task(1, 1).unwrap();
        let b = TwoStepBuilder::new(cfg).omega(OmegaMode::Static(ProcessId::new(1)));
        let t = b.task(ProcessId::new(0), 7u64);
        assert_eq!(t.inner().config(), cfg);
        assert_eq!(t.inner().omega().leader(), ProcessId::new(1));
        // The same builder mints a second, independent instance.
        let o: ObjectConsensus<u64> = b.object(ProcessId::new(2));
        assert_eq!(o.inner().initial_value(), None);
    }

    #[test]
    fn task_initial_value_proposed_at_startup() {
        let cfg = SystemConfig::minimal_task(1, 1).unwrap();
        let mut t = TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(ProcessId::new(0)))
            .task(ProcessId::new(0), 42u64);
        let mut eff = Effects::new();
        t.on_start(&mut eff);
        assert_eq!(t.inner().initial_value(), Some(&42));
    }
}
