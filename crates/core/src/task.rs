//! The consensus-task wrapper.

use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::{ProcessId, SystemConfig, Value};

use crate::builder::TwoStepBuilder;
use crate::consensus::{DecisionPath, TwoStep};
use crate::msg::Msg;

/// The paper's protocol as a consensus **task** (Figure 1 without the
/// red lines): every process is born with an initial value which it
/// proposes at startup.
///
/// Implementable iff `n ≥ max{2e+f, 2f+1}` (Theorem 5); use
/// [`SystemConfig::minimal_task`] for the tight configuration.
///
/// # Example
///
/// ```rust
/// use twostep_core::TaskConsensus;
/// use twostep_sim::SyncRunner;
/// use twostep_types::{ProcessId, SystemConfig};
///
/// let cfg = SystemConfig::minimal_task(1, 1)?; // n = 3
/// let outcome = SyncRunner::new(cfg)
///     .favoring(ProcessId::new(2))
///     .run(|p| TaskConsensus::new(cfg, p, u64::from(p.as_u32())));
/// assert!(outcome.agreement());
/// let (fast, v) = outcome.fast_deciders();
/// assert!(fast.contains(ProcessId::new(2)));
/// assert_eq!(v, Some(2));
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TaskConsensus<V>(TwoStep<V>);

impl<V: Value> TaskConsensus<V> {
    /// Creates a task instance for `me` proposing `initial`, with
    /// default options — sugar for
    /// [`TwoStepBuilder::task`](crate::TwoStepBuilder::task). Use the
    /// builder to select an Ω mode, ablations, or telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg`.
    pub fn new(cfg: SystemConfig, me: ProcessId, initial: V) -> Self {
        TwoStepBuilder::new(cfg).task(me, initial)
    }

    /// Wraps a machine built by [`TwoStepBuilder`].
    pub(crate) fn from_machine(inner: TwoStep<V>) -> Self {
        TaskConsensus(inner)
    }

    /// Attaches telemetry hooks (builder style).
    pub fn observed(self, obs: twostep_telemetry::ObserverHandle) -> Self {
        TaskConsensus(self.0.observed(obs))
    }

    /// The underlying state machine, for white-box inspection.
    pub fn inner(&self) -> &TwoStep<V> {
        &self.0
    }

    /// How the decision was reached, if decided.
    pub fn decision_path(&self) -> Option<DecisionPath> {
        self.0.decision_path()
    }
}

impl<V: Value> Protocol<V> for TaskConsensus<V> {
    type Message = Msg<V>;

    fn id(&self) -> ProcessId {
        self.0.id()
    }

    fn on_start(&mut self, eff: &mut Effects<V, Msg<V>>) {
        self.0.on_start(eff);
    }

    fn on_propose(&mut self, value: V, eff: &mut Effects<V, Msg<V>>) {
        self.0.on_propose(value, eff);
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg<V>, eff: &mut Effects<V, Msg<V>>) {
        self.0.on_message(from, msg, eff);
    }

    fn on_timer(&mut self, timer: TimerId, eff: &mut Effects<V, Msg<V>>) {
        self.0.on_timer(timer, eff);
    }

    fn decision(&self) -> Option<V> {
        self.0.decision()
    }

    fn state_fingerprint(&self) -> u64 {
        self.0.state_fingerprint()
    }

    fn state_fingerprint_relabeled(&self, rl: &twostep_types::relabel::Relabeling) -> Option<u64> {
        self.0.state_fingerprint_relabeled(rl)
    }

    fn message_is_noop(&self, from: ProcessId, msg: &Msg<V>) -> bool {
        self.0.message_is_noop(from, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_delegates() {
        let cfg = SystemConfig::minimal_task(1, 1).unwrap();
        let mut t = TaskConsensus::new(cfg, ProcessId::new(0), 5u64);
        assert_eq!(t.id(), ProcessId::new(0));
        assert_eq!(t.decision(), None);
        let mut eff = Effects::new();
        t.on_start(&mut eff);
        assert!(!eff.sends.is_empty(), "startup proposes");
        assert_eq!(t.inner().initial_value(), Some(&5));
        assert_eq!(t.decision_path(), None);
    }
}
