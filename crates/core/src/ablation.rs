//! Ablation switches.

/// Switches that *disable* individual ingredients of the protocol, used
/// by experiment E9 to demonstrate that each ingredient is necessary at
/// the paper's minimal process counts.
///
/// All flags default to `false` (the correct protocol). Never enable any
/// of these outside experiments: each one re-introduces a safety bug the
/// paper's design rules out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ablations {
    /// Skip the proposer-exclusion filter: the recovery rule counts
    /// votes over the whole `1B` quorum `Q` instead of
    /// `R = {q ∈ Q | proposer_q ∉ Q}` (Figure 1 line 47).
    pub no_proposer_exclusion: bool,
    /// Replace the max-value tie-break of the `|S| = n-f-e` recovery
    /// case (line 58) with a min-value choice.
    pub no_max_tiebreak: bool,
    /// Drop the object variant's red-line precondition
    /// `initial_val ≠ ⊥ ⟹ v = initial_val` on accepting a `Propose`
    /// (line 10).
    pub no_object_guard: bool,
}

impl Ablations {
    /// The unablated (correct) protocol.
    pub const NONE: Ablations = Ablations {
        no_proposer_exclusion: false,
        no_max_tiebreak: false,
        no_object_guard: false,
    };

    /// Whether any ablation is active.
    pub fn any(&self) -> bool {
        self.no_proposer_exclusion || self.no_max_tiebreak || self.no_object_guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_correct_protocol() {
        assert_eq!(Ablations::default(), Ablations::NONE);
        assert!(!Ablations::NONE.any());
    }

    #[test]
    fn any_detects_each_flag() {
        assert!(Ablations {
            no_proposer_exclusion: true,
            ..Ablations::NONE
        }
        .any());
        assert!(Ablations {
            no_max_tiebreak: true,
            ..Ablations::NONE
        }
        .any());
        assert!(Ablations {
            no_object_guard: true,
            ..Ablations::NONE
        }
        .any());
    }
}
