//! Seeded end-to-end telemetry checks: the decision-path and
//! recovery-case counters reported through [`twostep_telemetry`] must
//! match what the protocol provably does in two canonical schedules —
//! a conflict-free failure-free run (everything decides fast) and a
//! leader-crash run (the recovery rule fires, with the right case).

use twostep_core::TaskConsensus;
use twostep_sim::SyncRunner;
use twostep_telemetry::{Metrics, Path, RecoveryCase};
use twostep_types::{Duration, ProcessId, ProcessSet, SystemConfig};

#[test]
fn unanimous_failure_free_run_is_all_fast_path() {
    // Every process proposes the same value, nobody crashes: 2B votes
    // flow back to the first proposer seen, it assembles its n-e fast
    // quorum at 2Δ, and everyone else adopts the decision from its
    // Decide gossip. 100% of the run is fast path: telemetry must show
    // only Fast and Learned decisions — no slow-path ballot, no
    // recovery rule, nothing attributed to a recovery case.
    let cfg = SystemConfig::minimal_task(2, 2).unwrap();
    let proxy = ProcessId::new((cfg.n() - 1) as u32);
    let (metrics, obs) = Metrics::shared();
    let outcome = SyncRunner::new(cfg)
        .favoring(proxy)
        .observed(obs.clone())
        .horizon(Duration::deltas(6))
        .run(|q| TaskConsensus::new(cfg, q, 7).observed(obs.clone()));
    assert!(outcome.all_correct_decided());
    assert!(outcome.agreement());

    let snap = metrics.snapshot();
    let n = cfg.n() as u64;
    assert!(snap.decided(Path::Fast) >= 1, "the proxy decides fast");
    assert_eq!(
        snap.decided(Path::Fast) + snap.decided(Path::Learned),
        n,
        "every decision is fast or learned-from-fast"
    );
    assert_eq!(snap.total_decisions(), n, "one decision per process");
    // The Ω leader unconditionally opens one liveness ballot after
    // INITIAL_BALLOT_DELAY; the fast decision beats it, so it is
    // abandoned without advancing or recovering anything.
    assert!(snap.slow_entries <= 1, "only the leader's liveness ballot");
    assert_eq!(snap.ballot_advances, 0, "the liveness ballot went nowhere");
    assert_eq!(
        snap.recovery_cases.iter().sum::<u64>(),
        0,
        "recovery rule must not fire without failures"
    );
    // Every latency sample is attributed to the path that produced it.
    assert_eq!(
        snap.latency_of(Path::Fast).count + snap.latency_of(Path::Learned).count,
        n
    );
}

#[test]
fn leader_crash_fires_the_recovery_rule() {
    // Distinct proposals split the fast-round votes and the initial Ω
    // leader p0 is crashed from the start: no fast quorum can form, so
    // the next leader must open a ballot and run the §3 recovery rule
    // over its n-f 1B reports. Telemetry must show at least one
    // recovery-case event, and every decision must have gone through
    // the slow path (directly or by learning the outcome).
    let cfg = SystemConfig::minimal_task(2, 2).unwrap();
    let crashed: ProcessSet = [ProcessId::new(0)].into_iter().collect();
    let (metrics, obs) = Metrics::shared();
    let outcome = SyncRunner::new(cfg)
        .crashed(crashed)
        .observed(obs.clone())
        .horizon(Duration::deltas(60))
        .run(|q| TaskConsensus::new(cfg, q, u64::from(q.as_u32())).observed(obs.clone()));
    assert!(outcome.all_correct_decided());
    assert!(outcome.agreement());

    let snap = metrics.snapshot();
    assert_eq!(snap.decided(Path::Fast), 0, "split votes forbid fast path");
    assert!(snap.slow_entries >= 1, "a recovery ballot must open");
    let recoveries: u64 = snap.recovery_cases.iter().sum();
    assert!(recoveries >= 1, "recovery rule must fire at least once");
    // Six distinct values over six processes: no value can collect the
    // n-f-e votes either vote-count case needs, so the rule lands in
    // its fallback branch — and must say so.
    assert_eq!(
        snap.recovery(RecoveryCase::Fallback),
        recoveries,
        "split votes resolve via the fallback case, label {:?}",
        RecoveryCase::Fallback.label()
    );
    // The recovering leader decides via its ballot; everyone else learns.
    let attributed = snap.decided(Path::Slow)
        + snap.decided(Path::RecoveryGt)
        + snap.decided(Path::RecoveryEq)
        + snap.decided(Path::Learned);
    assert_eq!(
        attributed,
        snap.total_decisions(),
        "every decision is slow, recovery-case or learned"
    );
}
