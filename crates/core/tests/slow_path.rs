//! Slow-path edge cases: ballot interleavings, dueling leaders, stale
//! messages, and mid-ballot leader crashes — the corners a casual
//! reading of Figure 1 glosses over.

use twostep_core::{Msg, OmegaMode, TaskConsensus, TwoStepBuilder};
use twostep_sim::{ManualExecutor, SimulationBuilder, SyncRunner};
use twostep_types::protocol::TimerId;
use twostep_types::{Ballot, Duration, ProcessId, ProcessSet, SystemConfig, Time};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn cfg3() -> SystemConfig {
    SystemConfig::minimal_task(1, 1).unwrap()
}

/// An executor where each process believes a *different* static leader:
/// p0 and p1 both think they lead. Dueling ballots must stay safe.
fn dueling_exec() -> ManualExecutor<u64, TaskConsensus<u64>> {
    let cfg = cfg3();
    ManualExecutor::new(cfg, |q| {
        let leader = if q.index() == 0 { p(0) } else { p(1) };
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(leader))
            .task(q, 10 * (u64::from(q.as_u32()) + 1))
    })
}

fn drive_ballot(
    ex: &mut ManualExecutor<u64, TaskConsensus<u64>>,
    leader: ProcessId,
    participants: &[ProcessId],
) {
    ex.fire_timer(leader, TimerId::NEW_BALLOT);
    for phase in ["OneA", "OneB", "TwoA", "TwoB"] {
        for &q in participants {
            let ids = ex.pending_matching(|m| {
                twostep_sim::msg_kind(&m.msg) == phase
                    && (((phase == "OneA" || phase == "TwoA") && m.from == leader && m.to == q)
                        || ((phase == "OneB" || phase == "TwoB") && m.from == q && m.to == leader))
            });
            for id in ids {
                ex.deliver(id);
            }
        }
    }
}

#[test]
fn dueling_leaders_stay_safe() {
    // p0 runs ballot 3 (3 ≡ 0 mod 3); p1 runs ballot 4; interleave the
    // phases so p1's higher ballot overtakes p0's mid-flight.
    let mut ex = dueling_exec();
    ex.start_all();
    // Drop all fast-path traffic to force the slow path.
    for id in ex.pending_matching(|_| true) {
        ex.drop_message(id);
    }

    // p0 starts its ballot and completes phase 1 with {p0, p2}; p1 also
    // joins ballot 3 (receives the 1A, but its 1B is lost) so that its
    // own next ballot is the higher 4.
    ex.fire_timer(p(0), TimerId::NEW_BALLOT);
    for &q in &[p(0), p(2), p(1)] {
        for id in
            ex.pending_matching(|m| m.from == p(0) && m.to == q && matches!(m.msg, Msg::OneA(_)))
        {
            ex.deliver(id);
        }
        if q == p(1) {
            for id in ex.pending_matching(|m| {
                m.from == q && m.to == p(0) && matches!(m.msg, Msg::OneB { .. })
            }) {
                ex.drop_message(id);
            }
        } else {
            for id in ex.pending_matching(|m| {
                m.from == q && m.to == p(0) && matches!(m.msg, Msg::OneB { .. })
            }) {
                ex.deliver(id);
            }
        }
    }
    assert_eq!(ex.process(p(1)).inner().ballot(), Ballot::new(3));
    // p0's 2A(b3, 10) is now in flight. Before it lands, p1 runs a full
    // higher ballot (4 ≡ 1 mod 3) with {p1, p2}.
    drive_ballot(&mut ex, p(1), &[p(1), p(2)]);
    assert_eq!(
        ex.decision_of(p(1)),
        Some(&20),
        "p1's ballot 4 decides its value"
    );

    // Now p0's stale 2A(b3) arrives at p2: p2 already promised b4, so
    // the stale 2A must be rejected (no 2B back to p0).
    for id in ex.pending_matching(|m| m.from == p(0) && matches!(m.msg, Msg::TwoA(..))) {
        ex.deliver(id);
    }
    let stale_votes = ex.pending_matching(|m| m.to == p(0) && matches!(m.msg, Msg::TwoB(..)));
    // p0 may have voted for itself before p1's ballot; any 2B targeted at
    // p0 must carry ballot 3 from p0 only — p2 must not have voted.
    for id in stale_votes {
        ex.deliver(id);
    }
    assert!(
        ex.decision_of(p(0)).is_none() || ex.decision_of(p(0)) == Some(&20),
        "p0 must not decide a conflicting value from a stale ballot"
    );
    assert!(ex.agreement(), "dueling leaders broke agreement");
}

#[test]
fn second_ballot_adopts_first_ballot_vote() {
    // Ballot b carries value v to a quorum; a later ballot must adopt v
    // via the bmax rule even though nobody decided.
    let cfg = cfg3();
    let mut ex = ManualExecutor::new(cfg, |q| {
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(p(0)))
            .task(q, 10 * (u64::from(q.as_u32()) + 1))
    });
    ex.start_all();
    for id in ex.pending_matching(|_| true) {
        ex.drop_message(id);
    }

    // Ballot 3 at p0: phase 1 with {p0, p1}, then 2A reaches only p1
    // (vote cast), but the 2B back to p0 is lost — no decision.
    ex.fire_timer(p(0), TimerId::NEW_BALLOT);
    for &q in &[p(0), p(1)] {
        for id in
            ex.pending_matching(|m| m.from == p(0) && m.to == q && matches!(m.msg, Msg::OneA(_)))
        {
            ex.deliver(id);
        }
        for id in ex
            .pending_matching(|m| m.from == q && m.to == p(0) && matches!(m.msg, Msg::OneB { .. }))
        {
            ex.deliver(id);
        }
    }
    for id in
        ex.pending_matching(|m| m.from == p(0) && m.to == p(1) && matches!(m.msg, Msg::TwoA(..)))
    {
        ex.deliver(id);
    }
    assert_eq!(ex.process(p(1)).inner().voted_ballot(), Ballot::new(3));
    for id in ex.pending_matching(|m| matches!(m.msg, Msg::TwoB(..))) {
        ex.drop_message(id);
    }
    assert_eq!(ex.decision_of(p(0)), None);

    // Ballot 6 at p0, phase 1 quorum {p0, p1}: p1's 1B reports its b3
    // vote, so ballot 6 must propose 10 (p0's value adopted in b3)...
    // p0's own initial is also 10; make the assertion sharp by checking
    // the adopted value came from the bmax report: the 2A must carry 10.
    ex.fire_timer(p(0), TimerId::NEW_BALLOT);
    for &q in &[p(0), p(1)] {
        for id in
            ex.pending_matching(|m| m.from == p(0) && m.to == q && matches!(m.msg, Msg::OneA(_)))
        {
            ex.deliver(id);
        }
        for id in ex
            .pending_matching(|m| m.from == q && m.to == p(0) && matches!(m.msg, Msg::OneB { .. }))
        {
            ex.deliver(id);
        }
    }
    let twoas = ex.pending_matching(|m| matches!(m.msg, Msg::TwoA(Ballot { .. }, _)));
    assert!(!twoas.is_empty(), "ballot 6 must issue a proposal");
    let carried: Vec<u64> = ex
        .pending()
        .iter()
        .filter_map(|m| match &m.msg {
            Msg::TwoA(b, v) if *b == Ballot::new(6) => Some(*v),
            _ => None,
        })
        .collect();
    assert!(
        carried.iter().all(|v| *v == 10),
        "ballot 6 must adopt b3's value: {carried:?}"
    );
}

#[test]
fn leader_crash_mid_ballot_is_recovered_by_next_leader() {
    // p0 completes phase 1 and sends 2A, then crashes; p1 must finish
    // the job with the adopted value.
    let cfg = SystemConfig::new(5, 1, 2).unwrap();
    let props: Vec<u64> = (0..5).collect();
    let sim = SimulationBuilder::new(cfg)
        // Crash p0 just after the 2A goes out (phase 1 completes at 2Δ
        // after the 7Δ... with heartbeats: first ballot at 2Δ; 1A at 2Δ,
        // 1B at 3Δ, 2A at 3Δ; crash at 3Δ + 1 unit).
        .crash_at(p(0), Time::from_units(3 * 1000 + 1))
        .build(|q| TaskConsensus::new(cfg, q, props[q.index()]));
    let outcome = sim.run_until_all_decided(Time::ZERO + Duration::deltas(80));
    assert!(
        outcome.all_correct_decided(),
        "mid-ballot crash stalled the system"
    );
    assert!(outcome.agreement());
}

#[test]
fn foreign_fast_votes_are_not_counted() {
    // A 2B(0, v) for a value that is not ours must not advance our fast
    // quorum.
    let cfg = cfg3();
    let mut ex = ManualExecutor::new(cfg, |q| {
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(p(0)))
            .task(q, 10 * (u64::from(q.as_u32()) + 1))
    });
    ex.start_all();
    // p1 votes for p2's 30 — 2B(0, 30) addressed to p2; deliver p0's
    // Propose(10) nowhere. Now redirect is impossible in this executor,
    // but we can check p2 ignores a vote for a *different* value by
    // having p0 vote for p1's 20, and p1's 2B goes to p1... Construct
    // directly: deliver p1's Propose(20) to p0 → p0 votes 20, sends
    // 2B(0, 20) to p1. p1's own initial is 20: the vote counts for p1.
    // Then deliver p2's Propose(30) to p1 → p1's val was ⊥? No: p1 never
    // voted. So p1 votes 30 → val = 30 ≠ initial 20 → fast decide for
    // 20 must now be blocked even with enough votes.
    for id in
        ex.pending_matching(|m| m.from == p(1) && m.to == p(0) && matches!(m.msg, Msg::Propose(_)))
    {
        ex.deliver(id);
    }
    for id in
        ex.pending_matching(|m| m.from == p(2) && m.to == p(1) && matches!(m.msg, Msg::Propose(_)))
    {
        ex.deliver(id);
    }
    assert_eq!(ex.process(p(1)).inner().vote(), Some(&30));
    // p0's 2B(0, 20) arrives at p1: |P ∪ {p1}| = 2 = n-e, but val = 30
    // violates val ∈ {⊥, v}: no decision.
    for id in
        ex.pending_matching(|m| m.from == p(0) && m.to == p(1) && matches!(m.msg, Msg::TwoB(..)))
    {
        ex.deliver(id);
    }
    assert_eq!(
        ex.decision_of(p(1)),
        None,
        "val ∈ {{⊥, v}} must block the decision"
    );
}

#[test]
fn conflicting_decide_messages_are_surfaced_not_hidden() {
    // If (hypothetically) two conflicting Decides reach a process, the
    // protocol must emit both decide events so checkers can flag it —
    // rather than silently keeping the first. We inject the second
    // Decide by hand.
    let cfg = cfg3();
    let mut ex = ManualExecutor::new(cfg, |q| {
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(p(0)))
            .task(q, 10u64)
    });
    ex.start_all();
    // All propose 10; run p2's fast path.
    for target in [p(0), p(1)] {
        for id in ex.pending_matching(|m| {
            m.from == p(2) && m.to == target && matches!(m.msg, Msg::Propose(_))
        }) {
            ex.deliver(id);
        }
        for id in ex.pending_matching(|m| {
            m.from == target && m.to == p(2) && matches!(m.msg, Msg::TwoB(..))
        }) {
            ex.deliver(id);
        }
    }
    assert_eq!(ex.decision_of(p(2)), Some(&10));
    // Deliver p2's Decide to p0 twice-equivalent: first the genuine one.
    for id in
        ex.pending_matching(|m| m.from == p(2) && m.to == p(0) && matches!(m.msg, Msg::Decide(_)))
    {
        ex.deliver(id);
    }
    assert_eq!(ex.decide_log().len(), 2);
    assert!(ex.agreement(), "identical decides agree");
}

#[test]
fn ballot_numbers_stay_owned_by_their_leaders() {
    // Every 1A/2A observed in a long contended run carries a ballot
    // congruent to its sender's id (the §C.1 ownership rule).
    let cfg = SystemConfig::new(5, 1, 2).unwrap();
    let crashed: ProcessSet = [p(0)].into_iter().collect();
    let outcome = SyncRunner::new(cfg)
        .crashed(crashed)
        .horizon(Duration::deltas(40))
        .run(|q| TaskConsensus::new(cfg, q, u64::from(q.as_u32())));
    // Inspect final protocol states: any process that led a ballot used
    // b ≡ id (mod n). We can't see historical 1As in the typed trace,
    // but the survivors' current ballots must be owned by *some* process
    // consistently.
    for q in outcome.procs.iter() {
        let b = q.inner().ballot();
        if b.is_slow() {
            let owner = b.owner(cfg.n());
            assert!(owner.index() < cfg.n());
        }
    }
    assert!(outcome.agreement());
}
