//! Integration tests: the object variant satisfies Definition A.1 at the
//! Theorem 6 bound `n = max{2e+f-1, 2f+1}` — one process fewer than the
//! task bound — plus safety under contention.

use twostep_core::ObjectConsensus;
use twostep_sim::{DeliveryOrder, SimulationBuilder, SyncRunner};
use twostep_types::{Duration, ProcessId, SystemConfig, Time};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

const GRID: [(usize, usize); 5] = [(1, 1), (1, 2), (2, 2), (2, 3), (3, 3)];

#[test]
fn object_bound_is_strictly_below_task_bound_where_claimed() {
    // Sanity on the configurations exercised here: for 2e+f-1 >= 2f+1 the
    // object protocol runs with exactly one process fewer.
    let cfg_obj = SystemConfig::minimal_object(2, 2).unwrap();
    let cfg_task = SystemConfig::minimal_task(2, 2).unwrap();
    assert_eq!(cfg_obj.n() + 1, cfg_task.n());
}

#[test]
fn definition_a1_item_1_lone_proposer_decides_two_step() {
    // For every failure set E and every correct proposer p: if only p
    // proposes, p decides by 2Δ.
    for (e, f) in GRID {
        let cfg = SystemConfig::minimal_object(e, f).unwrap();
        for crashed in cfg.failure_sets() {
            for proposer in cfg.all_processes().difference(crashed).iter() {
                let outcome = SyncRunner::new(cfg).crashed(crashed).run_object(
                    |q| ObjectConsensus::<u64>::new(cfg, q),
                    vec![(proposer, 42, Time::ZERO)],
                );
                let (fast, value) = outcome.fast_deciders();
                assert!(
                    fast.contains(proposer),
                    "cfg={cfg} E={crashed:?}: lone proposer {proposer} not two-step"
                );
                assert_eq!(value, Some(42));
                assert!(outcome.agreement());
            }
        }
    }
}

#[test]
fn definition_a1_item_2_same_value_everyone_two_step() {
    // All correct processes propose the same v at the beginning of round
    // 1; every correct process has a run two-step for it.
    for (e, f) in GRID {
        let cfg = SystemConfig::minimal_object(e, f).unwrap();
        for crashed in cfg.failure_sets().take(5) {
            let correct = cfg.all_processes().difference(crashed);
            for witness in correct.iter() {
                let proposals: Vec<_> = correct.iter().map(|q| (q, 7u64, Time::ZERO)).collect();
                let outcome = SyncRunner::new(cfg)
                    .crashed(crashed)
                    .favoring(witness)
                    .run_object(|q| ObjectConsensus::<u64>::new(cfg, q), proposals);
                let (fast, value) = outcome.fast_deciders();
                assert!(
                    fast.contains(witness),
                    "cfg={cfg} E={crashed:?}: {witness} not two-step on unanimous config"
                );
                assert_eq!(value, Some(7));
                assert!(outcome.agreement());
            }
        }
    }
}

#[test]
fn conflicting_proposals_stay_safe_and_terminate() {
    // Two distinct proposals at the object bound: the red line blocks
    // cross-votes; decisions come via the slow path but must agree.
    for (e, f) in GRID {
        let cfg = SystemConfig::minimal_object(e, f).unwrap();
        let a = p(0);
        let b = p((cfg.n() - 1) as u32);
        let outcome = SyncRunner::new(cfg)
            .horizon(Duration::deltas(80))
            .run_object(
                |q| ObjectConsensus::<u64>::new(cfg, q),
                vec![(a, 10, Time::ZERO), (b, 20, Time::ZERO)],
            );
        assert!(outcome.agreement(), "cfg={cfg}");
        assert!(
            outcome.all_correct_decided(),
            "cfg={cfg}: stalled under conflict"
        );
        let v = *outcome.decided_values()[0];
        assert!(v == 10 || v == 20, "cfg={cfg}: invalid decision {v}");
    }
}

#[test]
fn late_proposal_after_slow_ballots_still_terminates() {
    // The liveness extension: a proposal arriving after slow ballots have
    // started would be rejected by every `bal = 0` precondition; the
    // retransmission + observed-proposal fallback must still decide it.
    let cfg = SystemConfig::minimal_object(2, 2).unwrap();
    let proposer = p(3);
    let outcome = SyncRunner::new(cfg)
        .horizon(Duration::deltas(120))
        .run_object(
            |q| ObjectConsensus::<u64>::new(cfg, q),
            // Propose only at 9Δ, well after the first new-ballot timeout
            // (2Δ) has pushed everyone into slow ballots.
            vec![(proposer, 5, Time::ZERO + Duration::deltas(9))],
        );
    assert!(
        outcome.decision_of(proposer).is_some(),
        "late proposer starved: wait-freedom violated"
    );
    assert_eq!(outcome.decision_of(proposer), Some(&5));
    assert!(outcome.agreement());
}

#[test]
fn nobody_proposes_nobody_decides() {
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    let outcome = SyncRunner::new(cfg)
        .horizon(Duration::deltas(30))
        .run_object(|q| ObjectConsensus::<u64>::new(cfg, q), vec![]);
    assert!(outcome.decisions.iter().all(|d| d.is_none()));
    // Validity in the degenerate sense: no value invented.
    assert!(outcome.trace.decisions().is_empty());
}

#[test]
fn proposer_crashing_mid_broadcast_is_safe() {
    // The proposer crashes right after its proposal is in flight; the
    // rest must either decide its value or nothing conflicting.
    // A failing seed is replayable alone via TWOSTEP_SEED=<seed>.
    for seed in twostep_sim::test_seeds(0..10) {
        let cfg = SystemConfig::minimal_object(2, 2).unwrap();
        let proposer = p(0);
        let mut sim = SimulationBuilder::new(cfg)
            .delivery_order(DeliveryOrder::randomized(seed))
            .crash_at(proposer, Time::from_units(1))
            .build(|q| ObjectConsensus::<u64>::new(cfg, q));
        sim.schedule_propose(proposer, 11, Time::ZERO);
        let outcome = sim.run_until_all_decided(Time::ZERO + Duration::deltas(100));
        let decisions = outcome.trace.decisions();
        for (_, v, _) in &decisions {
            assert_eq!(*v, 11, "seed {seed}: only 11 was ever proposed");
        }
        // Liveness: survivors decide (the proposal reached them before
        // the crash since effects are applied atomically at t=0).
        assert!(outcome.all_correct_decided(), "seed {seed}");
    }
}

#[test]
fn contending_proposals_under_random_schedules_agree() {
    for seed in twostep_sim::test_seeds(0..15) {
        let cfg = SystemConfig::minimal_object(2, 3).unwrap();
        let n = cfg.n();
        let mut sim = SimulationBuilder::new(cfg)
            .delay_model(twostep_sim::RandomDelay::sub_delta(seed))
            .delivery_order(DeliveryOrder::randomized(seed))
            .build(|q| ObjectConsensus::<u64>::new(cfg, q));
        // Half the processes propose, at staggered times.
        for (k, i) in (0..n as u32).step_by(2).enumerate() {
            sim.schedule_propose(p(i), 50 + u64::from(i), Time::from_units(k as u64 * 300));
        }
        let outcome = sim.run_until_all_decided(Time::ZERO + Duration::deltas(150));
        let decisions = outcome.trace.decisions();
        if let Some((_, first, _)) = decisions.first() {
            for (q, v, _) in &decisions {
                assert_eq!(v, first, "seed {seed}: {q} diverged");
            }
        }
        assert!(outcome.all_correct_decided(), "seed {seed}");
    }
}
