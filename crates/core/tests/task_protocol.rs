//! Integration tests: the task variant satisfies Definition 4 at the
//! Theorem 5 bound `n = max{2e+f, 2f+1}`, plus consensus safety and
//! liveness under adverse schedules.

use twostep_core::TaskConsensus;
use twostep_sim::{
    DeliveryOrder, Lossy, PartialSynchrony, SimulationBuilder, SyncRunner, SynchronousRounds,
};
use twostep_types::{Duration, ProcessId, ProcessSet, SystemConfig, Time};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// The small (e, f) grid used across these tests.
const GRID: [(usize, usize); 5] = [(1, 1), (1, 2), (2, 2), (1, 3), (2, 3)];

/// Distinct ascending proposals: p_i proposes 100 + i.
fn proposals(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 100 + i).collect()
}

/// The correct process with the greatest proposal — the witness process
/// of the paper's Definition 4(1) argument (§3).
fn max_correct(props: &[u64], crashed: ProcessSet) -> ProcessId {
    let n = props.len();
    (0..n as u32)
        .map(ProcessId::new)
        .filter(|q| !crashed.contains(*q))
        .max_by_key(|q| props[q.index()])
        .expect("at least one correct process")
}

#[test]
fn definition_4_item_1_every_failure_set_has_a_two_step_run() {
    // For every E with |E| = e and distinct proposals, the run favoring
    // the max correct proposer is two-step for that proposer.
    for (e, f) in GRID {
        let cfg = SystemConfig::minimal_task(e, f).unwrap();
        let props = proposals(cfg.n());
        for crashed in cfg.failure_sets() {
            let witness = max_correct(&props, crashed);
            let outcome = SyncRunner::new(cfg)
                .crashed(crashed)
                .favoring(witness)
                .run(|q| TaskConsensus::new(cfg, q, props[q.index()]));
            let (fast, value) = outcome.fast_deciders();
            assert!(
                fast.contains(witness),
                "cfg={cfg} E={crashed:?}: witness {witness} not two-step"
            );
            assert_eq!(value, Some(props[witness.index()]));
            assert!(outcome.agreement(), "cfg={cfg} E={crashed:?}");
        }
    }
}

#[test]
fn definition_4_item_2_same_proposals_everyone_two_step() {
    // When all correct processes propose the same value, *every* correct
    // process has a run that is two-step for it.
    for (e, f) in GRID {
        let cfg = SystemConfig::minimal_task(e, f).unwrap();
        for crashed in cfg.failure_sets().take(6) {
            for witness in cfg.all_processes().difference(crashed).iter() {
                let outcome = SyncRunner::new(cfg)
                    .crashed(crashed)
                    .favoring(witness)
                    .run(|q| TaskConsensus::new(cfg, q, 7u64));
                let (fast, value) = outcome.fast_deciders();
                assert!(
                    fast.contains(witness),
                    "cfg={cfg} E={crashed:?}: {witness} not two-step on same-value config"
                );
                assert_eq!(value, Some(7));
                assert!(outcome.agreement());
            }
        }
    }
}

#[test]
fn all_correct_eventually_decide_in_synchronous_runs() {
    for (e, f) in GRID {
        let cfg = SystemConfig::minimal_task(e, f).unwrap();
        let props = proposals(cfg.n());
        for crashed in cfg.failure_sets().take(4) {
            let outcome = SyncRunner::new(cfg)
                .crashed(crashed)
                .horizon(Duration::deltas(60))
                .run(|q| TaskConsensus::new(cfg, q, props[q.index()]));
            assert!(
                outcome.all_correct_decided(),
                "cfg={cfg} E={crashed:?}: termination violated"
            );
            assert!(outcome.agreement());
            // Validity: the decision is a correct process's proposal
            // (crashed ones never sent theirs).
            let decided = outcome.decided_values()[0];
            let proposer = (0..cfg.n()).find(|i| props[*i] == *decided).unwrap();
            assert!(
                !crashed.contains(p(proposer as u32)),
                "decided a crashed proposal"
            );
        }
    }
}

#[test]
fn beyond_e_crashes_slow_path_still_terminates() {
    // Crash f > e processes: two-step is no longer guaranteed, but
    // f-resilience still demands termination and agreement.
    for (e, f) in [(1usize, 2usize), (1, 3), (2, 3)] {
        let cfg = SystemConfig::minimal_task(e, f).unwrap();
        let props = proposals(cfg.n());
        let crashed: ProcessSet = (0..f as u32).map(p).collect();
        let outcome = SyncRunner::new(cfg)
            .crashed(crashed)
            .horizon(Duration::deltas(80))
            .run(|q| TaskConsensus::new(cfg, q, props[q.index()]));
        assert!(
            outcome.all_correct_decided(),
            "cfg={cfg}: stalled with f crashes"
        );
        assert!(outcome.agreement());
    }
}

#[test]
fn initial_leader_crash_recovers_via_omega() {
    // n = 5, e = 1, f = 2; ascending proposals ensure no fast decision
    // (each proposal gathers at most one supporter besides its proposer,
    // below the fast quorum of 4). p0 — the initial Ω leader — crashes.
    let cfg = SystemConfig::new(5, 1, 2).unwrap();
    let props: Vec<u64> = (0..5).collect();
    let crashed: ProcessSet = [p(0)].into_iter().collect();
    let outcome = SyncRunner::new(cfg)
        .crashed(crashed)
        .horizon(Duration::deltas(60))
        .run(|q| TaskConsensus::new(cfg, q, props[q.index()]));
    assert!(
        outcome.all_correct_decided(),
        "Ω failed to replace the crashed leader"
    );
    assert!(outcome.agreement());
    let (fast, _) = outcome.fast_deciders();
    assert!(fast.is_empty(), "ascending order must starve the fast path");
    // Validity among correct proposals.
    let decided = *outcome.decided_values()[0];
    assert!((1..=4).contains(&decided), "decided {decided}");
}

#[test]
fn partial_synchrony_chaos_then_gst_terminates() {
    // Pre-GST: 30% drops and delays up to 4Δ. Post-GST: synchronous.
    // All processes correct; they must decide despite the chaotic start.
    // A failing seed is replayable alone via TWOSTEP_SEED=<seed>.
    for seed in twostep_sim::test_seeds([1, 7, 42]) {
        let cfg = SystemConfig::minimal_task(2, 2).unwrap();
        let props = proposals(cfg.n());
        let gst = Time::ZERO + Duration::deltas(10);
        let outcome = SimulationBuilder::new(cfg)
            .delay_model(PartialSynchrony::new(
                gst,
                Lossy::new(0.3, Duration::deltas(4), seed),
                SynchronousRounds,
            ))
            .build(|q| TaskConsensus::new(cfg, q, props[q.index()]))
            .run_until_all_decided(Time::ZERO + Duration::deltas(120));
        assert!(
            outcome.all_correct_decided(),
            "seed {seed}: no decision despite GST"
        );
        assert!(outcome.agreement(), "seed {seed}");
    }
}

#[test]
fn randomized_schedules_preserve_agreement_and_validity() {
    // Randomized delivery order + random sub-Δ delays + crashes at
    // random times: Agreement and Validity must hold in every run.
    for seed in twostep_sim::test_seeds(0..20) {
        let cfg = SystemConfig::minimal_task(2, 2).unwrap();
        let n = cfg.n();
        let props = proposals(n);
        let mut builder = SimulationBuilder::new(cfg)
            .delay_model(twostep_sim::RandomDelay::sub_delta(seed))
            .delivery_order(DeliveryOrder::randomized(seed));
        // Crash up to f processes at pseudo-random times.
        let f = cfg.f();
        for k in 0..(seed as usize % (f + 1)) {
            let victim = p(((seed as usize + 3 * k) % n) as u32);
            let when = Time::from_units((seed * 997 + k as u64 * 1313) % 5000);
            builder = builder.crash_at(victim, when);
        }
        let outcome = builder
            .build(|q| TaskConsensus::new(cfg, q, props[q.index()]))
            .run_until_all_decided(Time::ZERO + Duration::deltas(150));

        // Agreement over every decide event in the trace.
        let decisions = outcome.trace.decisions();
        if let Some((_, first, _)) = decisions.first() {
            for (proc_, v, _) in &decisions {
                assert_eq!(
                    v, first,
                    "seed {seed}: {proc_} decided {v}, expected {first}"
                );
            }
            // Validity: the decision is one of the proposals.
            assert!(
                props.contains(first),
                "seed {seed}: invalid decision {first}"
            );
        }
        assert!(
            outcome.all_correct_decided(),
            "seed {seed}: correct processes stalled"
        );
    }
}

#[test]
fn larger_than_minimal_n_also_works() {
    // Over-provisioning must not break anything.
    let cfg = SystemConfig::new(9, 2, 2).unwrap();
    let props = proposals(9);
    let crashed: ProcessSet = [p(0), p(1)].into_iter().collect();
    let witness = max_correct(&props, crashed);
    let outcome = SyncRunner::new(cfg)
        .crashed(crashed)
        .favoring(witness)
        .run(|q| TaskConsensus::new(cfg, q, props[q.index()]));
    let (fast, _) = outcome.fast_deciders();
    assert!(fast.contains(witness));
    assert!(outcome.agreement());
}

#[test]
fn no_crash_fast_path_message_complexity() {
    // With no failures, the fast path uses Propose (n-1 per process) and
    // one 2B per acceptance — no slow-ballot traffic before 2Δ.
    let cfg = SystemConfig::minimal_task(1, 1).unwrap();
    let props = proposals(cfg.n());
    let witness = p(2);
    let outcome = SyncRunner::new(cfg)
        .favoring(witness)
        .horizon(Duration::deltas(2))
        .run(|q| TaskConsensus::new(cfg, q, props[q.index()]));
    assert!(outcome.trace.messages_sent_of_kind("Propose") >= cfg.n() * (cfg.n() - 1) / 2);
    // No slow-ballot traffic strictly before 2Δ (at exactly 2Δ the
    // new-ballot timer of still-undecided processes legitimately fires).
    let early_oneas = outcome
        .trace
        .events()
        .iter()
        .filter(|ev| {
            ev.time() < Time::ZERO + Duration::deltas(2)
                && matches!(ev, twostep_sim::TraceEvent::MessageSent { kind, .. } if kind == "OneA")
        })
        .count();
    assert_eq!(early_oneas, 0, "no slow ballot before 2Δ");
}
