//! Command batches: the unit of consensus in the batched SMR pipeline.

use serde::{Deserialize, Serialize};

/// An ordered, non-empty group of client commands decided by **one**
/// consensus slot.
///
/// Batching amortizes the paper's per-instance step bounds across many
/// commands: the bounds (Theorems 5–6) govern how fast *one* value is
/// decided, and are indifferent to how much that value carries. A proxy
/// therefore accumulates commands into a `Batch` — bounded by a count
/// knob and flushed by the replica's pump timer — and proposes the
/// whole batch as a single slot value. Replicas apply batch elements in
/// order, so the committed command stream is the slot-ordered
/// concatenation of batches.
///
/// `Batch<C>` satisfies the [`Value`](twostep_types::Value) bound
/// whenever `C` does (the derives below provide the order, hash and
/// serde obligations), so a batched replica runs unmodified in the
/// simulator, the model checker and the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Batch<C> {
    cmds: Vec<C>,
}

impl<C> Batch<C> {
    /// Wraps `cmds` (in submission order) into a batch.
    ///
    /// # Panics
    ///
    /// Panics if `cmds` is empty — an empty batch would occupy a slot
    /// without carrying a command, and the replica never proposes one.
    pub fn new(cmds: Vec<C>) -> Self {
        assert!(!cmds.is_empty(), "a batch must carry at least one command");
        Batch { cmds }
    }

    /// A batch of exactly one command (the unbatched degenerate case).
    pub fn single(cmd: C) -> Self {
        Batch { cmds: vec![cmd] }
    }

    /// Number of commands in the batch (always ≥ 1).
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// Always `false`: batches are non-empty by construction. Provided
    /// for API completeness alongside [`Batch::len`].
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }

    /// The first command of the batch.
    pub fn first(&self) -> Option<&C> {
        self.cmds.first()
    }

    /// Iterates the commands in submission order.
    pub fn iter(&self) -> std::slice::Iter<'_, C> {
        self.cmds.iter()
    }

    /// Consumes the batch, returning its commands in order.
    pub fn into_vec(self) -> Vec<C> {
        self.cmds
    }
}

impl<C> IntoIterator for Batch<C> {
    type Item = C;
    type IntoIter = std::vec::IntoIter<C>;

    fn into_iter(self) -> Self::IntoIter {
        self.cmds.into_iter()
    }
}

impl<'a, C> IntoIterator for &'a Batch<C> {
    type Item = &'a C;
    type IntoIter = std::slice::Iter<'a, C>;

    fn into_iter(self) -> Self::IntoIter {
        self.cmds.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_preserves_order() {
        let b = Batch::new(vec![3u64, 1, 2]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.first(), Some(&3));
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![3, 1, 2]);
        assert_eq!(b.into_vec(), vec![3, 1, 2]);
    }

    #[test]
    fn single_wraps_one_command() {
        let b = Batch::single(9u64);
        assert_eq!(b.len(), 1);
        assert_eq!(b.first(), Some(&9));
    }

    #[test]
    #[should_panic(expected = "at least one command")]
    fn empty_batch_rejected() {
        let _ = Batch::<u64>::new(vec![]);
    }

    #[test]
    fn batches_are_values() {
        fn assert_value<V: twostep_types::Value>() {}
        assert_value::<Batch<u64>>();
        assert_value::<Batch<crate::KvCommand>>();
    }
}
