//! Fluent construction of SMR replicas.

use twostep_telemetry::ObserverHandle;
use twostep_types::{ProcessId, SystemConfig, Value};

use crate::command::StateMachine;
use crate::replica::SmrReplica;

/// Builder for [`SmrReplica`] — the one construction path for every
/// replica configuration.
///
/// The former `SmrReplica::new` / `SmrReplica::with_pipeline` /
/// `SmrReplica::observed` trio is gone: config and identity go up
/// front, knobs are chained setters, and the command/state-machine
/// types are fixed at [`SmrReplicaBuilder::build`] (usually inferred
/// from the binding).
///
/// ```rust
/// use twostep_smr::{KvCommand, KvStore, SmrReplica, SmrReplicaBuilder};
/// use twostep_types::{ProcessId, SystemConfig};
///
/// let cfg = SystemConfig::minimal_object(1, 1).unwrap();
/// let replica: SmrReplica<KvCommand, KvStore> =
///     SmrReplicaBuilder::new(cfg, ProcessId::new(0))
///         .pipeline(8)
///         .batch(16)
///         .build();
/// assert_eq!(replica.pipeline_depth(), 8);
/// assert_eq!(replica.batch_size(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct SmrReplicaBuilder {
    cfg: SystemConfig,
    me: ProcessId,
    pipeline: usize,
    batch: usize,
    rotation: u32,
    obs: ObserverHandle,
}

impl SmrReplicaBuilder {
    /// Starts a builder for the replica at `me` in system `cfg`, with
    /// pipeline depth 1, batch size 1 and no observer — the unbatched,
    /// unpipelined baseline.
    pub fn new(cfg: SystemConfig, me: ProcessId) -> Self {
        SmrReplicaBuilder {
            cfg,
            me,
            pipeline: 1,
            batch: 1,
            rotation: 0,
            obs: ObserverHandle::none(),
        }
    }

    /// Keeps up to `depth` batches in flight concurrently (each in its
    /// own slot). Deeper pipelines trade strict per-proxy submission
    /// order for throughput: a batch that loses its slot is re-proposed
    /// in a fresh slot and may commit after batches submitted later.
    #[must_use]
    pub fn pipeline(mut self, depth: usize) -> Self {
        self.pipeline = depth;
        self
    }

    /// Groups up to `size` queued commands into one slot proposal. Full
    /// batches flush immediately; partial batches wait for the replica's
    /// pump tick (2Δ), bounding the added latency.
    #[must_use]
    pub fn batch(mut self, size: usize) -> Self {
        self.batch = size;
        self
    }

    /// Rotates the replica-Ω leader preference order: with nothing
    /// suspected the group elects process `rotation % n` instead of
    /// process 0. A sharded cluster builds group `s` with
    /// `leader_rotation(s)` so the per-group leaders — and with them
    /// the fast-path proposal load — spread round-robin across the
    /// nodes. Failure handling is unchanged: if the preferred leader is
    /// suspected, the scan continues cyclically to the next trusted id.
    #[must_use]
    pub fn leader_rotation(mut self, rotation: u32) -> Self {
        self.rotation = rotation;
        self
    }

    /// Attaches telemetry hooks. The replica reports its client-queue
    /// depth, committed batch sizes and replica-Ω leader changes, and
    /// passes the handle to every per-slot consensus instance so
    /// protocol paths and recovery cases are counted too.
    #[must_use]
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Builds the replica. The command type `C` and state machine `S`
    /// are usually inferred from the binding.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg`, or a knob is 0.
    pub fn build<C, S>(self) -> SmrReplica<C, S>
    where
        C: Value,
        S: StateMachine<C>,
    {
        SmrReplica::from_parts(
            self.cfg,
            self.me,
            self.pipeline,
            self.batch,
            self.rotation,
            self.obs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{KvCommand, KvStore};

    #[test]
    fn builder_defaults_match_seed_semantics() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let r: SmrReplica<KvCommand, KvStore> =
            SmrReplicaBuilder::new(cfg, ProcessId::new(0)).build();
        assert_eq!(r.pipeline_depth(), 1);
        assert_eq!(r.batch_size(), 1);
        assert_eq!(r.applied(), 0);
    }

    #[test]
    fn builder_knobs_are_applied() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let r: SmrReplica<KvCommand, KvStore> = SmrReplicaBuilder::new(cfg, ProcessId::new(0))
            .pipeline(8)
            .batch(16)
            .build();
        assert_eq!(r.pipeline_depth(), 8);
        assert_eq!(r.batch_size(), 16);
    }

    #[test]
    fn leader_rotation_shifts_group_leader() {
        let cfg = SystemConfig::minimal_object(2, 2).unwrap();
        for s in 0..cfg.n() as u32 {
            let r: SmrReplica<KvCommand, KvStore> = SmrReplicaBuilder::new(cfg, ProcessId::new(0))
                .leader_rotation(s)
                .build();
            assert_eq!(r.leader(), ProcessId::new(s % cfg.n() as u32));
        }
        // Rotation beyond n wraps.
        let r: SmrReplica<KvCommand, KvStore> = SmrReplicaBuilder::new(cfg, ProcessId::new(0))
            .leader_rotation(cfg.n() as u32 + 1)
            .build();
        assert_eq!(r.leader(), ProcessId::new(1));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let _: SmrReplica<KvCommand, KvStore> = SmrReplicaBuilder::new(cfg, ProcessId::new(0))
            .batch(0)
            .build();
    }
}
