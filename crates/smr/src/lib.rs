//! State-machine replication on top of two-step consensus — the paper's
//! motivating application (§1: "widely used in practice for
//! state-machine replication").
//!
//! * [`StateMachine`] — deterministic command application.
//! * [`KvCommand`] / [`KvStore`] — a replicated key-value store.
//! * [`SmrReplica`] — a multi-slot log where every slot is decided by
//!   one [`twostep_core::ObjectConsensus`] instance; clients submit
//!   commands at any replica (their *proxy*), which is exactly the
//!   deployment pattern that motivates the paper's pragmatic e-two-step
//!   definition: the proxy wants its decision fast, other replicas can
//!   learn a step later.
//!
//! The replica implements the same event-driven
//! [`Protocol`](twostep_types::protocol::Protocol) abstraction as the
//! single-decree protocols, so it runs unmodified in the deterministic
//! simulator, the model checker, and the thread/TCP runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod builder;
mod command;
mod replica;

pub use batch::Batch;
pub use builder::SmrReplicaBuilder;
pub use command::{Counter, KvCommand, KvOutput, KvStore, Routable, StateMachine};
pub use replica::{SmrMsg, SmrReplica};
