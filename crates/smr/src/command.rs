//! Replicated commands and the state-machine abstraction.

use std::borrow::Cow;
use std::fmt::Debug;

use serde::{Deserialize, Serialize};

/// A command that can be routed to a partition of the key space.
///
/// Sharded deployments hash [`Routable::route_key`] to pick the
/// consensus group a command runs in; commands with the same route key
/// always land in the same group, so per-key operations stay totally
/// ordered even though distinct keys may commit in different groups
/// concurrently. A command whose route key is empty (e.g.
/// [`KvCommand::Noop`]) routes to whatever the hash of the empty byte
/// string maps to — deterministic, like everything else.
pub trait Routable {
    /// The bytes the router hashes to pick this command's shard.
    fn route_key(&self) -> Cow<'_, [u8]>;
}

impl Routable for KvCommand {
    fn route_key(&self) -> Cow<'_, [u8]> {
        match self {
            KvCommand::Put { key, .. } | KvCommand::Delete { key } => Cow::Borrowed(key.as_bytes()),
            KvCommand::Noop => Cow::Borrowed(&[]),
        }
    }
}

impl Routable for u64 {
    fn route_key(&self) -> Cow<'_, [u8]> {
        Cow::Owned(self.to_le_bytes().to_vec())
    }
}

/// A deterministic state machine driven by committed commands.
///
/// Every replica applies the same commands in the same (log) order, so
/// any deterministic `apply` keeps replicas identical — the classic
/// state-machine replication argument (Schneider 1990), which is the
/// paper's motivating use case for consensus.
pub trait StateMachine<C>: Debug + Default + Send + 'static {
    /// The result of applying one command.
    type Output: Debug;

    /// Applies `cmd`, mutating the state.
    fn apply(&mut self, cmd: &C) -> Self::Output;
}

/// Commands of the replicated key-value store.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KvCommand {
    /// Bind `key` to `value`.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: String,
    },
    /// Remove `key`.
    Delete {
        /// The key.
        key: String,
    },
    /// No effect; useful for liveness probes and slot filling.
    Noop,
}

impl KvCommand {
    /// Convenience constructor for a `Put`.
    pub fn put(key: impl Into<String>, value: impl Into<String>) -> Self {
        KvCommand::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for a `Delete`.
    pub fn delete(key: impl Into<String>) -> Self {
        KvCommand::Delete { key: key.into() }
    }
}

/// Result of applying a [`KvCommand`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvOutput {
    /// The previous binding of the touched key, if any.
    pub previous: Option<String>,
}

/// An in-memory key-value store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    entries: std::collections::BTreeMap<String, String>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Reads a key (local read; not linearizable across replicas unless
    /// the caller serializes it through the log).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

impl StateMachine<KvCommand> for KvStore {
    type Output = KvOutput;

    fn apply(&mut self, cmd: &KvCommand) -> KvOutput {
        match cmd {
            KvCommand::Put { key, value } => KvOutput {
                previous: self.entries.insert(key.clone(), value.clone()),
            },
            KvCommand::Delete { key } => KvOutput {
                previous: self.entries.remove(key),
            },
            KvCommand::Noop => KvOutput { previous: None },
        }
    }
}

/// A state machine that just counts applied commands — handy in tests
/// and benchmarks where the payload is irrelevant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    /// Number of commands applied so far.
    pub applied: u64,
}

impl<C> StateMachine<C> for Counter
where
    C: 'static,
{
    type Output = u64;

    fn apply(&mut self, _cmd: &C) -> u64 {
        self.applied += 1;
        self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_put_get_delete() {
        let mut kv = KvStore::new();
        assert!(kv.is_empty());
        let out = kv.apply(&KvCommand::put("a", "1"));
        assert_eq!(out.previous, None);
        assert_eq!(kv.get("a"), Some("1"));

        let out = kv.apply(&KvCommand::put("a", "2"));
        assert_eq!(out.previous, Some("1".to_string()));
        assert_eq!(kv.get("a"), Some("2"));
        assert_eq!(kv.len(), 1);

        let out = kv.apply(&KvCommand::delete("a"));
        assert_eq!(out.previous, Some("2".to_string()));
        assert_eq!(kv.get("a"), None);

        let out = kv.apply(&KvCommand::delete("missing"));
        assert_eq!(out.previous, None);
        kv.apply(&KvCommand::Noop);
        assert!(kv.is_empty());
    }

    #[test]
    fn determinism_identical_logs_identical_states() {
        let log = vec![
            KvCommand::put("x", "1"),
            KvCommand::put("y", "2"),
            KvCommand::delete("x"),
            KvCommand::put("y", "3"),
        ];
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        for c in &log {
            a.apply(c);
        }
        for c in &log {
            b.apply(c);
        }
        assert_eq!(a, b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![("y", "3")]);
    }

    #[test]
    fn route_keys_follow_the_touched_key() {
        assert_eq!(
            KvCommand::put("a", "1").route_key().as_ref(),
            b"a".as_slice()
        );
        assert_eq!(KvCommand::delete("a").route_key().as_ref(), b"a".as_slice());
        assert!(KvCommand::Noop.route_key().is_empty());
        assert_eq!(7u64.route_key().as_ref(), 7u64.to_le_bytes().as_slice());
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        assert_eq!(
            StateMachine::<KvCommand>::apply(&mut c, &KvCommand::Noop),
            1
        );
        assert_eq!(
            StateMachine::<KvCommand>::apply(&mut c, &KvCommand::Noop),
            2
        );
        assert_eq!(c.applied, 2);
    }
}
