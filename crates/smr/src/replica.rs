//! The SMR replica: a log of consensus instances plus a state machine.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use twostep_core::{Msg, ObjectConsensus, Omega, OmegaMode, TwoStepBuilder};
use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::{Duration, ProcessId, SystemConfig, Value, DELTA};

use crate::batch::Batch;
use crate::command::StateMachine;

/// Wire messages of the SMR layer: per-slot consensus traffic plus the
/// replica-level Ω beacon. Each slot decides a whole [`Batch`] of client
/// commands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmrMsg<C> {
    /// Consensus message of the instance deciding slot `.0`.
    Slot(u64, Msg<Batch<C>>),
    /// Replica-level liveness beacon (one Ω for all instances).
    Beacon,
}

/// Replica-level timers (instance timers are namespaced above these).
const SMR_HEARTBEAT: TimerId = TimerId(1);
const SMR_SUSPECT: TimerId = TimerId(2);
const SMR_PUMP: TimerId = TimerId(3);
/// First timer id available to instance namespacing.
const INNER_BASE: u64 = 4;
/// Ids per instance (the inner protocol uses timers 0..3).
const INNER_STRIDE: u64 = 4;

/// Maps an inner-instance timer into the replica's `u64` timer space.
///
/// The computation is done in `u64` end to end: an earlier revision cast
/// `slot as u32`, which silently wrapped once slots passed 2³⁰ and
/// routed one instance's ticks to another. The release asserts make any
/// future aliasing loud instead of silent.
fn inner_timer(slot: u64, t: TimerId) -> TimerId {
    // Release-mode checks: an out-of-stride inner timer (or a slot so
    // large the stride arithmetic would wrap) would alias a different
    // instance's timer namespace and misroute ticks.
    assert!(t.0 < INNER_STRIDE);
    assert!(
        slot <= (u64::MAX - INNER_BASE - t.0) / INNER_STRIDE,
        "slot {slot} overflows the timer-id namespace"
    );
    TimerId(INNER_BASE + slot * INNER_STRIDE + t.0)
}

fn split_timer(t: TimerId) -> Option<(u64, TimerId)> {
    if t.0 >= INNER_BASE {
        let rel = t.0 - INNER_BASE;
        Some((rel / INNER_STRIDE, TimerId(rel % INNER_STRIDE)))
    } else {
        None
    }
}

/// A state-machine-replication replica built on the paper's consensus
/// *object* (one [`ObjectConsensus`] instance per log slot).
///
/// Roles, following the paper's introduction: clients submit commands to
/// any replica (their *proxy*); the proxy accumulates commands into a
/// [`Batch`] (bounded by the batch-size knob, flushed by the pump tick),
/// assigns the batch a free slot and proposes it there; batches commit
/// in slot order and their commands are applied, in batch order, to the
/// deterministic state machine `S`. A batch that loses its slot to a
/// contending proxy is transparently re-proposed in a fresh slot.
///
/// One replica-level Ω (heartbeats) serves all instances: instances run
/// with a static leader hint that the replica refreshes on every
/// suspicion sweep.
///
/// `decide` events are emitted per *applied* command, in log order, so
/// the decision stream of any engine is exactly the committed command
/// prefix regardless of how commands were grouped into batches.
///
/// Construct via [`SmrReplicaBuilder`](crate::SmrReplicaBuilder).
#[derive(Debug)]
pub struct SmrReplica<C: Ord, S> {
    cfg: SystemConfig,
    me: ProcessId,
    instances: BTreeMap<u64, ObjectConsensus<Batch<C>>>,
    committed: BTreeMap<u64, Batch<C>>,
    /// Length of the contiguously applied slot prefix.
    applied_slots: u64,
    /// Number of commands applied to the state machine.
    applied_cmds: u64,
    sm: S,
    pending: VecDeque<C>,
    inflight: BTreeMap<u64, Batch<C>>,
    max_inflight: usize,
    max_batch: usize,
    next_slot: u64,
    omega: Omega,
    /// Telemetry hooks; detached by default.
    obs: ObserverHandle,
}

impl<C, S> SmrReplica<C, S>
where
    C: Value,
    S: StateMachine<C>,
{
    /// Constructor used by
    /// [`SmrReplicaBuilder`](crate::SmrReplicaBuilder).
    ///
    /// `rotation` offsets the replica-Ω leader preference order: with
    /// nothing suspected the group's leader is process `rotation % n`.
    /// Sharded deployments pass the shard index here so the per-group
    /// leaders spread round-robin across the nodes.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg`, or either knob is 0.
    pub(crate) fn from_parts(
        cfg: SystemConfig,
        me: ProcessId,
        max_inflight: usize,
        max_batch: usize,
        rotation: u32,
        obs: ObserverHandle,
    ) -> Self {
        assert!(me.index() < cfg.n(), "process {me} out of range for {cfg}");
        assert!(max_inflight >= 1, "pipeline depth must be at least 1");
        assert!(max_batch >= 1, "batch size must be at least 1");
        SmrReplica {
            cfg,
            me,
            instances: BTreeMap::new(),
            committed: BTreeMap::new(),
            applied_slots: 0,
            applied_cmds: 0,
            sm: S::default(),
            pending: VecDeque::new(),
            inflight: BTreeMap::new(),
            max_inflight,
            max_batch,
            next_slot: 0,
            omega: Omega::with_rotation(me, cfg.n(), OmegaMode::Heartbeats, rotation),
            obs,
        }
    }

    /// The committed log: slot → batch of commands.
    pub fn log(&self) -> &BTreeMap<u64, Batch<C>> {
        &self.committed
    }

    /// The number of *commands* applied to the state machine (the
    /// length of the contiguously applied command stream).
    pub fn applied(&self) -> u64 {
        self.applied_cmds
    }

    /// The number of contiguously applied *slots*. With batching one
    /// slot carries many commands, so this lags [`SmrReplica::applied`].
    pub fn applied_slots(&self) -> u64 {
        self.applied_slots
    }

    /// The replicated state machine.
    pub fn state(&self) -> &S {
        &self.sm
    }

    /// Commands accepted from clients but not yet committed (queued or
    /// currently in flight in a slot).
    pub fn pending(&self) -> usize {
        self.pending.len() + self.inflight.values().map(Batch::len).sum::<usize>()
    }

    /// The configured pipeline depth (concurrent in-flight batches).
    pub fn pipeline_depth(&self) -> usize {
        self.max_inflight
    }

    /// The replica-Ω's current leader estimate for this group.
    pub fn leader(&self) -> ProcessId {
        self.omega.leader()
    }

    /// The configured maximum batch size (commands per slot).
    pub fn batch_size(&self) -> usize {
        self.max_batch
    }

    fn instance(
        &mut self,
        slot: u64,
        eff: &mut Effects<C, SmrMsg<C>>,
    ) -> &mut ObjectConsensus<Batch<C>> {
        if !self.instances.contains_key(&slot) {
            let mut inst = TwoStepBuilder::new(self.cfg)
                .omega(OmegaMode::Static(self.omega.leader()))
                .observed(self.obs.clone())
                .object(self.me);
            let mut inner = Effects::new();
            inst.on_start(&mut inner);
            self.instances.insert(slot, inst);
            self.route_inner(slot, inner, eff);
        }
        let Some(inst) = self.instances.get_mut(&slot) else {
            unreachable!("instance for slot {slot} inserted above");
        };
        inst
    }

    /// Translates one instance's effects into SMR-level effects and
    /// handles its decisions.
    fn route_inner(
        &mut self,
        slot: u64,
        inner: Effects<Batch<C>, Msg<Batch<C>>>,
        eff: &mut Effects<C, SmrMsg<C>>,
    ) {
        for (to, m) in inner.sends {
            eff.send(to, SmrMsg::Slot(slot, m));
        }
        for (t, d) in inner.timer_sets {
            eff.set_timer(inner_timer(slot, t), d);
        }
        for t in inner.timer_cancels {
            eff.cancel_timer(inner_timer(slot, t));
        }
        for b in inner.decisions {
            self.on_commit(slot, b, eff);
        }
    }

    fn on_commit(&mut self, slot: u64, batch: Batch<C>, eff: &mut Effects<C, SmrMsg<C>>) {
        self.next_slot = self.next_slot.max(slot + 1);
        if self.committed.contains_key(&slot) {
            return; // re-decision of the same slot (gossip); ignore
        }
        self.committed.insert(slot, batch);

        // Retire the instance: drop it and cancel its timers so settled
        // slots cost nothing — otherwise every decided instance keeps
        // its ballot-retry tick re-arming forever and per-tick work
        // grows with the log (fatal under sustained load). Late
        // retransmissions for this slot are answered from `committed`
        // in `on_message`, which keeps the stuck-peer recovery path:
        // a peer missing the slot retransmits and gets `Decide` back.
        self.instances.remove(&slot);
        for t in 0..INNER_STRIDE {
            eff.cancel_timer(inner_timer(slot, TimerId(t)));
        }

        // Did one of our in-flight proposals just resolve?
        if let Some(mine) = self.inflight.remove(&slot) {
            if self.committed.get(&slot) != Some(&mine) {
                // Lost the slot to a contending proxy: re-queue at the
                // front, preserving submission order, so the pump
                // re-proposes the commands in a fresh slot.
                for c in mine.into_iter().rev() {
                    self.pending.push_front(c);
                }
            }
        }

        // Apply the contiguous slot prefix, emitting one decide per
        // command (the decision stream is batch-transparent).
        while let Some(b) = self.committed.get(&self.applied_slots) {
            self.obs.batch_committed(self.me, b.len());
            for c in b.clone().into_iter() {
                self.sm.apply(&c);
                self.applied_cmds += 1;
                eff.decide(c);
            }
            self.applied_slots += 1;
        }
        self.obs.queue_depth(self.me, self.pending());
    }

    /// Proposes queued commands while pipeline capacity remains.
    ///
    /// With `full_only` set, only *full* batches (≥ `max_batch` queued
    /// commands) are proposed — the event-driven path, so a trickle of
    /// commands is not scattered one-per-slot. The pump tick calls with
    /// `full_only = false` to flush partial batches, bounding the extra
    /// latency a queued command can accrue waiting for co-travellers to
    /// one pump interval (2Δ).
    fn flush(&mut self, full_only: bool, eff: &mut Effects<C, SmrMsg<C>>) {
        while self.inflight.len() < self.max_inflight && !self.pending.is_empty() {
            if full_only && self.pending.len() < self.max_batch {
                break;
            }
            let take = self.pending.len().min(self.max_batch);
            let batch = Batch::new(self.pending.drain(..take).collect());
            let slot = self.next_slot;
            self.next_slot += 1;
            self.inflight.insert(slot, batch.clone());
            let inst = self.instance(slot, eff);
            let mut inner = Effects::new();
            inst.on_propose(batch, &mut inner);
            self.route_inner(slot, inner, eff);
        }
        self.obs.queue_depth(self.me, self.pending());
    }
}

impl<C, S> Protocol<C> for SmrReplica<C, S>
where
    C: Value,
    S: StateMachine<C>,
{
    type Message = SmrMsg<C>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_start(&mut self, eff: &mut Effects<C, SmrMsg<C>>) {
        eff.broadcast_others(SmrMsg::Beacon, self.cfg.n(), self.me);
        eff.set_timer(SMR_HEARTBEAT, DELTA);
        eff.set_timer(SMR_SUSPECT, Duration::from_units(3 * DELTA.units()));
        eff.set_timer(SMR_PUMP, Duration::from_units(2 * DELTA.units()));
    }

    fn on_propose(&mut self, cmd: C, eff: &mut Effects<C, SmrMsg<C>>) {
        self.pending.push_back(cmd);
        self.flush(true, eff);
    }

    fn on_message(&mut self, from: ProcessId, msg: SmrMsg<C>, eff: &mut Effects<C, SmrMsg<C>>) {
        self.omega.observe(from);
        match msg {
            SmrMsg::Beacon => {}
            SmrMsg::Slot(slot, m) => {
                self.next_slot = self.next_slot.max(slot + 1);
                if let Some(b) = self.committed.get(&slot) {
                    // The slot is settled here and its instance retired;
                    // answer anything but gossip with the outcome so a
                    // peer stuck on this slot converges.
                    if !matches!(m, Msg::Decide(_)) {
                        eff.send(from, SmrMsg::Slot(slot, Msg::Decide(b.clone())));
                    }
                    return;
                }
                let inst = self.instance(slot, eff);
                let mut inner = Effects::new();
                inst.on_message(from, m, &mut inner);
                self.route_inner(slot, inner, eff);
                // A commit above may have freed pipeline capacity; put
                // any waiting full batches in flight right away.
                self.flush(true, eff);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, eff: &mut Effects<C, SmrMsg<C>>) {
        match timer {
            SMR_HEARTBEAT => {
                eff.broadcast_others(SmrMsg::Beacon, self.cfg.n(), self.me);
                eff.set_timer(SMR_HEARTBEAT, DELTA);
            }
            SMR_SUSPECT => {
                let before = self.omega.leader();
                self.omega.sweep();
                let leader = self.omega.leader();
                if leader != before {
                    self.obs.leader_changed(self.me, leader);
                }
                for inst in self.instances.values_mut() {
                    inst.set_leader_hint(leader);
                }
                eff.set_timer(SMR_SUSPECT, Duration::from_units(3 * DELTA.units()));
            }
            SMR_PUMP => {
                self.flush(false, eff);
                eff.set_timer(SMR_PUMP, Duration::from_units(2 * DELTA.units()));
            }
            t => {
                if let Some((slot, inner_t)) = split_timer(t) {
                    if let Some(inst) = self.instances.get_mut(&slot) {
                        let mut inner = Effects::new();
                        inst.on_timer(inner_t, &mut inner);
                        self.route_inner(slot, inner, eff);
                        self.flush(true, eff);
                    }
                }
            }
        }
    }

    fn decision(&self) -> Option<C> {
        // The first committed command, if slot 0 is decided (decide
        // *events* carry the full applied stream; see type docs).
        self.committed.get(&0).and_then(|b| b.first()).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SmrReplicaBuilder;
    use crate::command::{KvCommand, KvStore};

    fn replica(cfg: SystemConfig, me: u32) -> SmrReplica<KvCommand, KvStore> {
        SmrReplicaBuilder::new(cfg, ProcessId::new(me)).build()
    }

    #[test]
    fn timer_namespacing_roundtrips() {
        for slot in [0u64, 1, 7, 1000] {
            for t in [TimerId(0), TimerId(1), TimerId(2)] {
                let mapped = inner_timer(slot, t);
                assert_eq!(split_timer(mapped), Some((slot, t)));
            }
        }
        assert_eq!(split_timer(SMR_HEARTBEAT), None);
        assert_eq!(split_timer(SMR_SUSPECT), None);
        assert_eq!(split_timer(SMR_PUMP), None);
    }

    /// Regression test for the `slot as u32` truncation: slots at and
    /// beyond 2³⁰ used to wrap the timer-id arithmetic and alias other
    /// instances' namespaces. The mapping must stay injective in `u64`.
    #[test]
    fn timer_namespacing_survives_huge_slots() {
        let huge = [1u64 << 30, (1 << 30) + 1, 1 << 32, 1 << 40, u64::MAX >> 3];
        for &slot in &huge {
            for t in [TimerId(0), TimerId(3)] {
                assert_eq!(split_timer(inner_timer(slot, t)), Some((slot, t)));
            }
        }
        // The pre-fix failure mode: slot 2³⁰ aliased slot 0 under the
        // u32 cast (2³⁰ · 4 wrapped to 0). Now the ids are distinct.
        assert_ne!(inner_timer(1 << 30, TimerId(0)), inner_timer(0, TimerId(0)));
    }

    #[test]
    #[should_panic(expected = "overflows the timer-id namespace")]
    fn timer_namespacing_rejects_wrapping_slot() {
        let _ = inner_timer(u64::MAX / 2, TimerId(0));
    }

    #[test]
    fn propose_creates_instance_and_traffic() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let mut r = replica(cfg, 0);
        let mut eff = Effects::new();
        r.on_start(&mut eff);
        let mut eff = Effects::new();
        r.on_propose(KvCommand::put("k", "v"), &mut eff);
        assert!(eff
            .sends
            .iter()
            .any(|(_, m)| matches!(m, SmrMsg::Slot(0, Msg::Propose(_)))));
        assert_eq!(r.pending(), 1);
    }

    #[test]
    fn partial_batch_waits_for_pump() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let mut r: SmrReplica<KvCommand, KvStore> = SmrReplicaBuilder::new(cfg, ProcessId::new(0))
            .batch(4)
            .build();
        let mut eff = Effects::new();
        r.on_start(&mut eff);

        // Three commands: below the batch bound, so the event-driven
        // flush holds them back.
        let mut eff = Effects::new();
        for i in 0..3 {
            r.on_propose(KvCommand::put(format!("k{i}"), "v"), &mut eff);
        }
        assert!(
            !eff.sends
                .iter()
                .any(|(_, m)| matches!(m, SmrMsg::Slot(_, _))),
            "partial batch must not be proposed eagerly"
        );

        // The pump tick flushes the partial batch as one slot proposal.
        let mut eff = Effects::new();
        r.on_timer(SMR_PUMP, &mut eff);
        assert!(eff
            .sends
            .iter()
            .any(|(_, m)| matches!(m, SmrMsg::Slot(0, Msg::Propose(b)) if b.len() == 3)));
    }

    #[test]
    fn full_batch_flushes_immediately() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let mut r: SmrReplica<KvCommand, KvStore> = SmrReplicaBuilder::new(cfg, ProcessId::new(0))
            .batch(2)
            .build();
        let mut eff = Effects::new();
        r.on_start(&mut eff);

        let mut eff = Effects::new();
        r.on_propose(KvCommand::put("a", "1"), &mut eff);
        assert!(
            eff.sends.is_empty(),
            "first command alone is a partial batch"
        );
        let mut eff = Effects::new();
        r.on_propose(KvCommand::put("b", "2"), &mut eff);
        assert!(eff
            .sends
            .iter()
            .any(|(_, m)| matches!(m, SmrMsg::Slot(0, Msg::Propose(b)) if b.len() == 2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_replica_panics() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let _ = replica(cfg, 5);
    }
}
