//! The SMR replica: a log of consensus instances plus a state machine.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use twostep_core::{Msg, ObjectConsensus, Omega, OmegaMode};
use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::{Duration, ProcessId, SystemConfig, Value, DELTA};

use crate::command::StateMachine;

/// Wire messages of the SMR layer: per-slot consensus traffic plus the
/// replica-level Ω beacon.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmrMsg<C> {
    /// Consensus message of the instance deciding slot `.0`.
    Slot(u64, Msg<C>),
    /// Replica-level liveness beacon (one Ω for all instances).
    Beacon,
}

/// Replica-level timers (instance timers are namespaced above these).
const SMR_HEARTBEAT: TimerId = TimerId(1);
const SMR_SUSPECT: TimerId = TimerId(2);
const SMR_PUMP: TimerId = TimerId(3);
/// First timer id available to instance namespacing.
const INNER_BASE: u32 = 4;
/// Ids per instance (the inner protocol uses timers 0..3).
const INNER_STRIDE: u32 = 4;

fn inner_timer(slot: u64, t: TimerId) -> TimerId {
    // Release-mode check: an out-of-stride inner timer would alias a
    // different instance's timer namespace and misroute ticks.
    assert!(t.0 < INNER_STRIDE);
    TimerId(INNER_BASE + (slot as u32) * INNER_STRIDE + t.0)
}

fn split_timer(t: TimerId) -> Option<(u64, TimerId)> {
    if t.0 >= INNER_BASE {
        let rel = t.0 - INNER_BASE;
        Some((u64::from(rel / INNER_STRIDE), TimerId(rel % INNER_STRIDE)))
    } else {
        None
    }
}

/// A state-machine-replication replica built on the paper's consensus
/// *object* (one [`ObjectConsensus`] instance per log slot).
///
/// Roles, following the paper's introduction: clients submit commands to
/// any replica (their *proxy*); the proxy assigns the command a free
/// slot and proposes it there; commands commit in slot order and are
/// applied to the deterministic state machine `S`. A command that loses
/// its slot to a contending proxy is transparently re-proposed in a
/// fresh slot.
///
/// One replica-level Ω (heartbeats) serves all instances: instances run
/// with a static leader hint that the replica refreshes on every
/// suspicion sweep.
///
/// `decide` events are emitted per *applied* command, in log order, so
/// the decision stream of any engine is exactly the committed prefix.
#[derive(Debug)]
pub struct SmrReplica<C: Ord, S> {
    cfg: SystemConfig,
    me: ProcessId,
    instances: BTreeMap<u64, ObjectConsensus<C>>,
    committed: BTreeMap<u64, C>,
    applied: u64,
    sm: S,
    pending: VecDeque<C>,
    inflight: BTreeMap<u64, C>,
    max_inflight: usize,
    next_slot: u64,
    omega: Omega,
    /// Telemetry hooks; detached by default (see [`SmrReplica::observed`]).
    obs: ObserverHandle,
}

impl<C, S> SmrReplica<C, S>
where
    C: Value,
    S: StateMachine<C>,
{
    /// Creates an unpipelined replica for `me` (at most one command in
    /// flight; commands commit strictly in submission order at this
    /// proxy).
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg`.
    pub fn new(cfg: SystemConfig, me: ProcessId) -> Self {
        Self::with_pipeline(cfg, me, 1)
    }

    /// Creates a replica that keeps up to `max_inflight` commands in
    /// flight concurrently (each in its own slot). Deeper pipelines
    /// trade strict per-proxy submission order for throughput: a command
    /// that loses its slot is re-proposed in a fresh slot and may commit
    /// after commands submitted later.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg` or `max_inflight == 0`.
    pub fn with_pipeline(cfg: SystemConfig, me: ProcessId, max_inflight: usize) -> Self {
        assert!(me.index() < cfg.n(), "process {me} out of range for {cfg}");
        assert!(max_inflight >= 1, "pipeline depth must be at least 1");
        SmrReplica {
            cfg,
            me,
            instances: BTreeMap::new(),
            committed: BTreeMap::new(),
            applied: 0,
            sm: S::default(),
            pending: VecDeque::new(),
            inflight: BTreeMap::new(),
            max_inflight,
            next_slot: 0,
            omega: Omega::new(me, cfg.n(), OmegaMode::Heartbeats),
            obs: ObserverHandle::none(),
        }
    }

    /// Attaches telemetry hooks (builder style). The replica reports its
    /// client-queue depth (`pending()`) whenever it changes, replica-Ω
    /// leader changes, and passes the handle to every per-slot consensus
    /// instance so protocol paths and recovery cases are counted too.
    #[must_use]
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// The committed log: slot → command.
    pub fn log(&self) -> &BTreeMap<u64, C> {
        &self.committed
    }

    /// The contiguously applied prefix length.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The replicated state machine.
    pub fn state(&self) -> &S {
        &self.sm
    }

    /// Commands accepted from clients but not yet committed (queued or
    /// currently in flight in a slot).
    pub fn pending(&self) -> usize {
        self.pending.len() + self.inflight.len()
    }

    /// The configured pipeline depth.
    pub fn pipeline_depth(&self) -> usize {
        self.max_inflight
    }

    fn instance(&mut self, slot: u64, eff: &mut Effects<C, SmrMsg<C>>) -> &mut ObjectConsensus<C> {
        if !self.instances.contains_key(&slot) {
            let mut inst = ObjectConsensus::with_options(
                self.cfg,
                self.me,
                OmegaMode::Static(self.omega.leader()),
                twostep_core::Ablations::NONE,
            )
            .observed(self.obs.clone());
            let mut inner = Effects::new();
            inst.on_start(&mut inner);
            self.instances.insert(slot, inst);
            self.route_inner(slot, inner, eff);
        }
        self.instances.get_mut(&slot).expect("just inserted")
    }

    /// Translates one instance's effects into SMR-level effects and
    /// handles its decisions.
    fn route_inner(
        &mut self,
        slot: u64,
        inner: Effects<C, Msg<C>>,
        eff: &mut Effects<C, SmrMsg<C>>,
    ) {
        for (to, m) in inner.sends {
            eff.send(to, SmrMsg::Slot(slot, m));
        }
        for (t, d) in inner.timer_sets {
            eff.set_timer(inner_timer(slot, t), d);
        }
        for t in inner.timer_cancels {
            eff.cancel_timer(inner_timer(slot, t));
        }
        for c in inner.decisions {
            self.on_commit(slot, c, eff);
        }
    }

    fn on_commit(&mut self, slot: u64, cmd: C, eff: &mut Effects<C, SmrMsg<C>>) {
        self.next_slot = self.next_slot.max(slot + 1);
        if self.committed.contains_key(&slot) {
            return; // re-decision of the same slot (gossip); ignore
        }
        self.committed.insert(slot, cmd);

        // Did one of our in-flight proposals just resolve?
        if let Some(mine) = self.inflight.remove(&slot) {
            if self.committed.get(&slot) != Some(&mine) {
                // Lost the slot to a contending proxy: re-queue at the
                // front so the pump re-proposes it in a fresh slot.
                self.pending.push_front(mine);
            }
        }

        // Apply the contiguous prefix, emitting one decide per command.
        while let Some(c) = self.committed.get(&self.applied) {
            self.sm.apply(c);
            eff.decide(c.clone());
            self.applied += 1;
        }
        self.obs.queue_depth(self.me, self.pending());
    }

    /// Proposes queued commands while pipeline capacity remains.
    fn pump(&mut self, eff: &mut Effects<C, SmrMsg<C>>) {
        while self.inflight.len() < self.max_inflight {
            let Some(cmd) = self.pending.pop_front() else {
                return;
            };
            let slot = self.next_slot;
            self.next_slot += 1;
            self.inflight.insert(slot, cmd.clone());
            let inst = self.instance(slot, eff);
            let mut inner = Effects::new();
            inst.on_propose(cmd, &mut inner);
            self.route_inner(slot, inner, eff);
        }
        self.obs.queue_depth(self.me, self.pending());
    }
}

impl<C, S> Protocol<C> for SmrReplica<C, S>
where
    C: Value,
    S: StateMachine<C>,
{
    type Message = SmrMsg<C>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_start(&mut self, eff: &mut Effects<C, SmrMsg<C>>) {
        eff.broadcast_others(SmrMsg::Beacon, self.cfg.n(), self.me);
        eff.set_timer(SMR_HEARTBEAT, DELTA);
        eff.set_timer(SMR_SUSPECT, Duration::from_units(3 * DELTA.units()));
        eff.set_timer(SMR_PUMP, Duration::from_units(2 * DELTA.units()));
    }

    fn on_propose(&mut self, cmd: C, eff: &mut Effects<C, SmrMsg<C>>) {
        self.pending.push_back(cmd);
        self.pump(eff);
    }

    fn on_message(&mut self, from: ProcessId, msg: SmrMsg<C>, eff: &mut Effects<C, SmrMsg<C>>) {
        self.omega.observe(from);
        match msg {
            SmrMsg::Beacon => {}
            SmrMsg::Slot(slot, m) => {
                self.next_slot = self.next_slot.max(slot + 1);
                let inst = self.instance(slot, eff);
                let mut inner = Effects::new();
                inst.on_message(from, m, &mut inner);
                self.route_inner(slot, inner, eff);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, eff: &mut Effects<C, SmrMsg<C>>) {
        match timer {
            SMR_HEARTBEAT => {
                eff.broadcast_others(SmrMsg::Beacon, self.cfg.n(), self.me);
                eff.set_timer(SMR_HEARTBEAT, DELTA);
            }
            SMR_SUSPECT => {
                let before = self.omega.leader();
                self.omega.sweep();
                let leader = self.omega.leader();
                if leader != before {
                    self.obs.leader_changed(self.me, leader);
                }
                for inst in self.instances.values_mut() {
                    inst.set_leader_hint(leader);
                }
                eff.set_timer(SMR_SUSPECT, Duration::from_units(3 * DELTA.units()));
            }
            SMR_PUMP => {
                self.pump(eff);
                eff.set_timer(SMR_PUMP, Duration::from_units(2 * DELTA.units()));
            }
            t => {
                if let Some((slot, inner_t)) = split_timer(t) {
                    if let Some(inst) = self.instances.get_mut(&slot) {
                        let mut inner = Effects::new();
                        inst.on_timer(inner_t, &mut inner);
                        self.route_inner(slot, inner, eff);
                    }
                }
            }
        }
    }

    fn decision(&self) -> Option<C> {
        // The first committed command, if slot 0 is decided (decide
        // *events* carry the full applied stream; see type docs).
        self.committed.get(&0).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{KvCommand, KvStore};

    #[test]
    fn timer_namespacing_roundtrips() {
        for slot in [0u64, 1, 7, 1000] {
            for t in [TimerId(0), TimerId(1), TimerId(2)] {
                let mapped = inner_timer(slot, t);
                assert_eq!(split_timer(mapped), Some((slot, t)));
            }
        }
        assert_eq!(split_timer(SMR_HEARTBEAT), None);
        assert_eq!(split_timer(SMR_SUSPECT), None);
        assert_eq!(split_timer(SMR_PUMP), None);
    }

    #[test]
    fn propose_creates_instance_and_traffic() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let mut r: SmrReplica<KvCommand, KvStore> = SmrReplica::new(cfg, ProcessId::new(0));
        let mut eff = Effects::new();
        r.on_start(&mut eff);
        let mut eff = Effects::new();
        r.on_propose(KvCommand::put("k", "v"), &mut eff);
        assert!(eff
            .sends
            .iter()
            .any(|(_, m)| matches!(m, SmrMsg::Slot(0, Msg::Propose(_)))));
        assert_eq!(r.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_replica_panics() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let _: SmrReplica<KvCommand, KvStore> = SmrReplica::new(cfg, ProcessId::new(5));
    }
}
