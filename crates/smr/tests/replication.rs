//! End-to-end state-machine replication over the deterministic
//! simulator and the threaded runtime.

use std::time::Duration as WallDuration;

use twostep_sim::{DeliveryOrder, SimulationBuilder};
use twostep_smr::{KvCommand, KvStore, SmrReplica, SmrReplicaBuilder};
use twostep_types::{Duration, ProcessId, SystemConfig, Time};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

type Replica = SmrReplica<KvCommand, KvStore>;

fn replica(cfg: SystemConfig, q: ProcessId) -> Replica {
    SmrReplicaBuilder::new(cfg, q).build()
}

#[test]
fn single_proxy_commands_commit_in_order() {
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    let mut sim = SimulationBuilder::new(cfg).build(|q| replica(cfg, q));
    let cmds = [
        KvCommand::put("a", "1"),
        KvCommand::put("b", "2"),
        KvCommand::put("a", "3"),
    ];
    for (k, c) in cmds.iter().enumerate() {
        sim.schedule_propose(p(0), c.clone(), Time::from_units(k as u64 * 100));
    }
    let outcome = sim.run_until(Time::ZERO + Duration::deltas(120), |s| {
        (0..3).all(|i| s.process(p(i)).applied() >= 3)
    });
    for i in 0..3u32 {
        let r = &outcome.procs[i as usize];
        assert_eq!(r.applied(), 3, "p{i} applied prefix");
        assert_eq!(r.state().get("a"), Some("3"), "p{i}");
        assert_eq!(r.state().get("b"), Some("2"), "p{i}");
    }
    // Logs identical across replicas.
    let log0 = outcome.procs[0].log().clone();
    for i in 1..3 {
        assert_eq!(outcome.procs[i].log(), &log0);
    }
    // Decide events carry the applied stream, identical per replica.
    let per_proc: Vec<Vec<KvCommand>> = (0..3)
        .map(|i| {
            outcome
                .trace
                .decisions()
                .into_iter()
                .filter(|(q, _, _)| q.index() == i)
                .map(|(_, c, _)| c)
                .collect()
        })
        .collect();
    assert_eq!(per_proc[0], per_proc[1]);
    assert_eq!(per_proc[1], per_proc[2]);
}

#[test]
fn contending_proxies_converge_to_one_log() {
    // A failing seed is replayable alone via TWOSTEP_SEED=<seed>.
    for seed in twostep_sim::test_seeds(0..8) {
        let cfg = SystemConfig::minimal_object(2, 2).unwrap();
        let n = cfg.n();
        let mut sim = SimulationBuilder::new(cfg)
            .delivery_order(DeliveryOrder::randomized(seed))
            .build(|q| replica(cfg, q));
        // Every replica proposes one command at roughly the same time.
        for i in 0..n as u32 {
            sim.schedule_propose(
                p(i),
                KvCommand::put(format!("k{i}"), format!("v{i}")),
                Time::from_units(u64::from(i) * 7),
            );
        }
        let outcome = sim.run_until(Time::ZERO + Duration::deltas(300), |s| {
            (0..n).all(|i| s.process(p(i as u32)).applied() >= n as u64)
        });
        // All n commands committed; logs agree on the common prefix.
        let longest = outcome.procs.iter().max_by_key(|r| r.applied()).unwrap();
        assert!(
            longest.applied() >= n as u64,
            "seed {seed}: only {} commands applied",
            longest.applied()
        );
        for r in &outcome.procs {
            for (slot, cmd) in r.log() {
                assert_eq!(
                    longest.log().get(slot),
                    Some(cmd),
                    "seed {seed}: divergent slot {slot}"
                );
            }
        }
        // Every key present in the final state of the longest replica.
        for i in 0..n {
            assert_eq!(
                longest.state().get(&format!("k{i}")),
                Some(format!("v{i}").as_str()),
                "seed {seed}: lost command k{i}"
            );
        }
    }
}

#[test]
fn replica_crash_does_not_stop_the_log() {
    let cfg = SystemConfig::minimal_object(2, 2).unwrap(); // n = 5, f = 2
    let mut sim = SimulationBuilder::new(cfg)
        .crash_at(p(4), Time::from_units(1))
        .build(|q| replica(cfg, q));
    sim.schedule_propose(p(0), KvCommand::put("x", "1"), Time::ZERO);
    sim.schedule_propose(
        p(1),
        KvCommand::put("y", "2"),
        Time::ZERO + Duration::deltas(1),
    );
    let outcome = sim.run_until(Time::ZERO + Duration::deltas(200), |s| {
        (0..4).all(|i| s.process(p(i)).applied() >= 2)
    });
    for i in 0..4u32 {
        let r = &outcome.procs[i as usize];
        assert!(r.applied() >= 2, "p{i} applied {}", r.applied());
        assert_eq!(r.state().get("x"), Some("1"));
        assert_eq!(r.state().get("y"), Some("2"));
    }
}

#[test]
fn lost_slot_is_retried_in_fresh_slot() {
    // Two proxies race: one of them must lose a slot and re-propose; in
    // the end both commands are in the log exactly once.
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    let mut sim = SimulationBuilder::new(cfg).build(|q| replica(cfg, q));
    sim.schedule_propose(p(0), KvCommand::put("a", "0"), Time::ZERO);
    sim.schedule_propose(p(2), KvCommand::put("b", "2"), Time::ZERO);
    let outcome = sim.run_until(Time::ZERO + Duration::deltas(200), |s| {
        (0..3).all(|i| s.process(p(i)).applied() >= 2)
    });
    let log = outcome.procs[0].log();
    assert!(log.len() >= 2, "both commands committed, log = {log:?}");
    let cmds: Vec<&KvCommand> = log.values().flat_map(|b| b.iter()).collect();
    let a = cmds
        .iter()
        .filter(|c| matches!(c, KvCommand::Put { key, .. } if key == "a"))
        .count();
    let b = cmds
        .iter()
        .filter(|c| matches!(c, KvCommand::Put { key, .. } if key == "b"))
        .count();
    assert_eq!((a, b), (1, 1), "each command exactly once: {log:?}");
}

#[test]
fn kv_over_threaded_runtime() {
    use twostep_runtime::Cluster;

    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    let cluster: Cluster<KvCommand> =
        Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| replica(cfg, q));
    cluster.propose(p(0), KvCommand::put("city", "huatulco"));
    // The decide stream reports applied commands.
    let decided = cluster.await_decision(p(0), WallDuration::from_secs(10));
    assert_eq!(decided, Some(KvCommand::put("city", "huatulco")));
    assert!(cluster.await_decisions(cfg.process_ids(), WallDuration::from_secs(10)));
    assert!(cluster.agreement());
}

#[test]
fn pipelined_proxy_commits_faster_than_serial() {
    // Depth-4 pipeline: four commands proposed in one burst all sit in
    // distinct slots immediately, so all four commit within the latency
    // of roughly one consensus round instead of four.
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    let run = |depth: usize| {
        let mut sim = SimulationBuilder::new(cfg).build(|q| {
            SmrReplicaBuilder::new(cfg, q)
                .pipeline(depth)
                .build::<KvCommand, KvStore>()
        });
        for i in 0..4u64 {
            sim.schedule_propose(p(0), KvCommand::put(format!("k{i}"), "v"), Time::ZERO);
        }
        let outcome = sim.run_until(Time::ZERO + Duration::deltas(200), |s| {
            s.process(p(0)).applied() >= 4
        });
        (outcome.procs[0].applied(), outcome.end_time)
    };
    let (applied_serial, t_serial) = run(1);
    let (applied_piped, t_piped) = run(4);
    assert_eq!(applied_serial, 4);
    assert_eq!(applied_piped, 4);
    assert!(
        t_piped < t_serial,
        "pipelining must shorten the burst: piped {t_piped:?} vs serial {t_serial:?}"
    );
    // The pipelined burst completes in ~one fast round (≤ 4Δ margin).
    assert!(
        t_piped <= Time::ZERO + Duration::deltas(4),
        "piped burst took {t_piped:?}"
    );
}

#[test]
fn pipelined_logs_remain_consistent_under_contention() {
    for seed in twostep_sim::test_seeds(0..6) {
        let cfg = SystemConfig::minimal_object(2, 2).unwrap();
        let n = cfg.n();
        let mut sim = SimulationBuilder::new(cfg)
            .delivery_order(DeliveryOrder::randomized(seed))
            .build(|q| {
                SmrReplicaBuilder::new(cfg, q)
                    .pipeline(3)
                    .build::<KvCommand, KvStore>()
            });
        let mut total = 0u64;
        for i in 0..n as u32 {
            for k in 0..2u64 {
                sim.schedule_propose(
                    p(i),
                    KvCommand::put(format!("k{i}-{k}"), "v"),
                    Time::from_units(k * 50),
                );
                total += 1;
            }
        }
        let outcome = sim.run_until(Time::ZERO + Duration::deltas(400), |s| {
            (0..n).all(|i| s.process(p(i as u32)).applied() >= total)
        });
        let longest = outcome.procs.iter().max_by_key(|r| r.applied()).unwrap();
        assert!(
            longest.applied() >= total,
            "seed {seed}: {}/{} applied",
            longest.applied(),
            total
        );
        for r in &outcome.procs {
            for (slot, cmd) in r.log() {
                assert_eq!(
                    longest.log().get(slot),
                    Some(cmd),
                    "seed {seed} slot {slot}"
                );
            }
        }
        // Exactly-once, across batch boundaries.
        let mut seen = std::collections::BTreeSet::new();
        for cmd in longest.log().values().flat_map(|b| b.iter()) {
            assert!(seen.insert(cmd.clone()), "seed {seed}: duplicate {cmd:?}");
        }
    }
}

#[test]
fn pipeline_depth_accessor_and_validation() {
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    let r: Replica = SmrReplicaBuilder::new(cfg, p(0)).pipeline(8).build();
    assert_eq!(r.pipeline_depth(), 8);
    let r = replica(cfg, p(0));
    assert_eq!(r.pipeline_depth(), 1);
}

#[test]
#[should_panic(expected = "pipeline depth")]
fn zero_pipeline_depth_rejected() {
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    let _: Replica = SmrReplicaBuilder::new(cfg, p(0)).pipeline(0).build();
}

#[test]
fn batched_proxy_commits_all_commands() {
    // Batch 4 over a 6-command burst: commands grouped into batches and
    // applied in submission order.
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    let mut sim = SimulationBuilder::new(cfg).build(|q| {
        SmrReplicaBuilder::new(cfg, q)
            .batch(4)
            .build::<KvCommand, KvStore>()
    });
    for i in 0..6u64 {
        sim.schedule_propose(
            p(0),
            KvCommand::put(format!("k{i}"), format!("{i}")),
            Time::ZERO,
        );
    }
    let outcome = sim.run_until(Time::ZERO + Duration::deltas(200), |s| {
        (0..3).all(|i| s.process(p(i)).applied() >= 6)
    });
    for i in 0..3u32 {
        let r = &outcome.procs[i as usize];
        assert_eq!(r.applied(), 6, "p{i} applied all commands");
        for k in 0..6u64 {
            assert_eq!(
                r.state().get(&format!("k{k}")),
                Some(format!("{k}").as_str())
            );
        }
    }
    // Fewer slots than commands: batching actually grouped something.
    assert!(
        outcome.procs[0].applied_slots() < 6,
        "6 commands should need fewer than 6 slots at batch size 4, used {}",
        outcome.procs[0].applied_slots()
    );
}

#[test]
fn interleaved_batched_proxies_never_reorder_own_commands() {
    // Several proxies stream keyed commands concurrently with batching
    // on; in the committed log, each client's own commands appear in
    // exactly their submission order (batching may interleave clients
    // but never reorders within one client). Pipeline depth stays 1:
    // with deeper pipelines a lost slot's re-proposal can land behind a
    // later in-flight slot, which is a pipelining property, not a
    // batching one.
    for seed in twostep_sim::test_seeds(0..6) {
        let cfg = SystemConfig::minimal_object(2, 2).unwrap();
        let n = cfg.n();
        let per_client = 5u64;
        let mut sim = SimulationBuilder::new(cfg)
            .delivery_order(DeliveryOrder::randomized(seed))
            .build(|q| {
                SmrReplicaBuilder::new(cfg, q)
                    .batch(3)
                    .build::<KvCommand, KvStore>()
            });
        let total = per_client * n as u64;
        for i in 0..n as u32 {
            for s in 0..per_client {
                sim.schedule_propose(
                    p(i),
                    KvCommand::put(format!("c{i}-{s}"), "v"),
                    Time::from_units(s * 13 + u64::from(i)),
                );
            }
        }
        let outcome = sim.run_until(Time::ZERO + Duration::deltas(500), |s| {
            (0..n).all(|i| s.process(p(i as u32)).applied() >= total)
        });
        let longest = outcome.procs.iter().max_by_key(|r| r.applied()).unwrap();
        assert!(
            longest.applied() >= total,
            "seed {seed}: {}/{total} applied",
            longest.applied()
        );
        // Per-client order: flatten the log and check each client's
        // sequence numbers are strictly increasing.
        for r in &outcome.procs {
            let mut next: Vec<u64> = vec![0; n];
            for cmd in r.log().values().flat_map(|b| b.iter()) {
                let KvCommand::Put { key, .. } = cmd else {
                    continue;
                };
                let (c, s) = key[1..].split_once('-').expect("key shape c{i}-{s}");
                let (c, s): (usize, u64) = (c.parse().unwrap(), s.parse().unwrap());
                assert_eq!(
                    s, next[c],
                    "seed {seed}: client {c} saw {s} before {}",
                    next[c]
                );
                next[c] += 1;
            }
        }
    }
}
