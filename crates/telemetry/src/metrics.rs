//! The standard metrics aggregator and its snapshot exporter.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use twostep_types::ProcessId;

use crate::{
    Counter, Event, EventKind, EventRing, Histogram, HistogramSnapshot, ObserverHandle, Path,
    ProtocolObserver, RecoveryCase,
};

/// Message and byte totals for one wire message kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ByteStats {
    /// Messages sent.
    pub messages: u64,
    /// Total encoded payload bytes.
    pub bytes: u64,
}

/// The standard [`ProtocolObserver`]: counts decisions per path, files
/// engine-reported latencies into per-path histograms, tallies
/// slow-path entries, recovery cases, leader changes, ballot advances,
/// transport drops/reconnects, queue depths and per-kind wire bytes,
/// and keeps a ring-buffer flight record of transitions.
///
/// Latency attribution: a protocol reports `decided(p, path)`
/// synchronously when it records its decision; the engine then reports
/// `decision_latency(p, l)` when it drains the decision effect. The
/// metrics join the two on the process id, filing the latency under
/// the most recently reported path of that process.
#[derive(Debug, Default)]
pub struct Metrics {
    decisions: [Counter; Path::COUNT],
    latency: [Histogram; Path::COUNT],
    last_path: Mutex<HashMap<ProcessId, Path>>,
    slow_entries: Counter,
    recovery: [Counter; RecoveryCase::COUNT],
    leader_changes: Counter,
    ballot_advances: Counter,
    queue_depth: Histogram,
    batch_size: Histogram,
    amortized_latency: Histogram,
    dropped: Counter,
    reconnects: Counter,
    bytes: Mutex<BTreeMap<String, ByteStats>>,
    injections: Mutex<BTreeMap<String, u64>>,
    events: EventRing,
}

impl Metrics {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Creates an empty aggregator already wrapped for sharing, plus
    /// the handle protocols and engines take.
    pub fn shared() -> (Arc<Metrics>, ObserverHandle) {
        let metrics = Arc::new(Metrics::new());
        let handle = ObserverHandle::from(metrics.clone());
        (metrics, handle)
    }

    /// The retained transition events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.events()
    }

    /// A point-in-time copy of every aggregate.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            decisions: std::array::from_fn(|i| self.decisions[i].get()),
            latency: std::array::from_fn(|i| self.latency[i].snapshot()),
            slow_entries: self.slow_entries.get(),
            recovery_cases: std::array::from_fn(|i| self.recovery[i].get()),
            leader_changes: self.leader_changes.get(),
            ballot_advances: self.ballot_advances.get(),
            queue_depth: self.queue_depth.snapshot(),
            batch_size: self.batch_size.snapshot(),
            amortized_latency: self.amortized_latency.snapshot(),
            dropped: self.dropped.get(),
            reconnects: self.reconnects.get(),
            bytes_by_kind: self.bytes.lock().expect("byte map poisoned").clone(),
            injections_by_behavior: self
                .injections
                .lock()
                .expect("injection map poisoned")
                .clone(),
        }
    }

    /// Shorthand for `self.snapshot().render_text()`.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

impl ProtocolObserver for Metrics {
    fn decided(&self, process: ProcessId, path: Path) {
        self.decisions[path.index()].inc();
        self.last_path
            .lock()
            .expect("path map poisoned")
            .insert(process, path);
        self.events.push(Event {
            process,
            kind: EventKind::Decided(path),
        });
    }

    fn decision_latency(&self, process: ProcessId, latency: u64) {
        let path = self
            .last_path
            .lock()
            .expect("path map poisoned")
            .get(&process)
            .copied();
        // A latency with no prior path report (a protocol that bypassed
        // `decided`) is filed as Learned: it reached the engine's
        // decision stream without a path of its own.
        let path = path.unwrap_or(Path::Learned);
        self.latency[path.index()].record(latency);
    }

    fn slow_path_entered(&self, process: ProcessId) {
        self.slow_entries.inc();
        self.events.push(Event {
            process,
            kind: EventKind::SlowPathEntered,
        });
    }

    fn recovery_case(&self, process: ProcessId, case: RecoveryCase) {
        self.recovery[case.index()].inc();
        self.events.push(Event {
            process,
            kind: EventKind::Recovery(case),
        });
    }

    fn leader_changed(&self, process: ProcessId, leader: ProcessId) {
        self.leader_changes.inc();
        self.events.push(Event {
            process,
            kind: EventKind::LeaderChanged(leader),
        });
    }

    fn ballot_advanced(&self, process: ProcessId) {
        self.ballot_advances.inc();
        self.events.push(Event {
            process,
            kind: EventKind::BallotAdvanced,
        });
    }

    fn queue_depth(&self, _process: ProcessId, depth: usize) {
        self.queue_depth.record(depth as u64);
    }

    fn batch_committed(&self, _process: ProcessId, size: usize) {
        self.batch_size.record(size as u64);
    }

    fn amortized_latency(&self, _process: ProcessId, latency: u64) {
        self.amortized_latency.record(latency);
    }

    fn bytes_sent(&self, _process: ProcessId, kind: &str, bytes: usize) {
        let mut map = self.bytes.lock().expect("byte map poisoned");
        let entry = map.entry(kind.to_string()).or_default();
        entry.messages += 1;
        entry.bytes += bytes as u64;
    }

    fn message_dropped(&self, from: ProcessId, to: ProcessId) {
        self.dropped.inc();
        self.events.push(Event {
            process: from,
            kind: EventKind::MessageDropped(to),
        });
    }

    fn reconnected(&self, _process: ProcessId) {
        self.reconnects.inc();
    }

    fn fault_injected(&self, _process: ProcessId, behavior: &str) {
        let mut map = self.injections.lock().expect("injection map poisoned");
        *map.entry(behavior.to_string()).or_default() += 1;
    }
}

/// A point-in-time copy of a [`Metrics`] aggregator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Decisions per path, indexed by [`Path::index`].
    pub decisions: [u64; Path::COUNT],
    /// Latency summary per path, indexed by [`Path::index`].
    pub latency: [HistogramSnapshot; Path::COUNT],
    /// Slow-path ballots opened.
    pub slow_entries: u64,
    /// Recovery-rule completions per case, indexed by
    /// [`RecoveryCase::index`].
    pub recovery_cases: [u64; RecoveryCase::COUNT],
    /// Ω leader switches observed.
    pub leader_changes: u64,
    /// Ballot adoptions observed.
    pub ballot_advances: u64,
    /// Replica pending-command depth distribution.
    pub queue_depth: HistogramSnapshot,
    /// Commands per applied batch (one sample per committed slot).
    pub batch_size: HistogramSnapshot,
    /// Client-observed per-command latency through a proxy (engine
    /// units) — amortized across batching.
    pub amortized_latency: HistogramSnapshot,
    /// Messages the transport gave up on.
    pub dropped: u64,
    /// Broken connections re-established by the transport.
    pub reconnects: u64,
    /// Wire traffic per message kind.
    pub bytes_by_kind: BTreeMap<String, ByteStats>,
    /// Byzantine fault injections per behavior (`equivocate`, `forge`,
    /// `lie-ballot`, `silence`) — one count per actually-perturbed
    /// message.
    pub injections_by_behavior: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Decisions taken via `path`.
    pub fn decided(&self, path: Path) -> u64 {
        self.decisions[path.index()]
    }

    /// Latency summary for `path`.
    pub fn latency_of(&self, path: Path) -> HistogramSnapshot {
        self.latency[path.index()]
    }

    /// Recovery-rule completions via `case`.
    pub fn recovery(&self, case: RecoveryCase) -> u64 {
        self.recovery_cases[case.index()]
    }

    /// Total decisions across all paths.
    pub fn total_decisions(&self) -> u64 {
        self.decisions.iter().sum()
    }

    /// Fault injections recorded under `behavior`.
    pub fn injections(&self, behavior: &str) -> u64 {
        self.injections_by_behavior
            .get(behavior)
            .copied()
            .unwrap_or(0)
    }

    /// Total fault injections across all behaviors.
    pub fn total_injections(&self) -> u64 {
        self.injections_by_behavior.values().sum()
    }

    /// Renders the snapshot in a text/Prometheus-style exposition
    /// format: one `name{labels} value` line per sample, `#`-prefixed
    /// comment lines for grouping. Quantile samples follow the
    /// Prometheus summary convention (`quantile` label, plus `_max`
    /// and `_count` companions).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# decisions by path\n");
        for p in Path::ALL {
            let _ = writeln!(
                out,
                "twostep_decisions_total{{path=\"{}\"}} {}",
                p.label(),
                self.decided(p)
            );
        }
        out.push_str("# decision latency by path (engine units)\n");
        for p in Path::ALL {
            let l = self.latency_of(p);
            if l.count == 0 {
                continue;
            }
            let label = p.label();
            let _ = writeln!(
                out,
                "twostep_decision_latency{{path=\"{label}\",quantile=\"0.5\"}} {}",
                l.p50
            );
            let _ = writeln!(
                out,
                "twostep_decision_latency{{path=\"{label}\",quantile=\"0.99\"}} {}",
                l.p99
            );
            let _ = writeln!(
                out,
                "twostep_decision_latency_max{{path=\"{label}\"}} {}",
                l.max
            );
            let _ = writeln!(
                out,
                "twostep_decision_latency_count{{path=\"{label}\"}} {}",
                l.count
            );
        }
        out.push_str("# protocol transitions\n");
        let _ = writeln!(out, "twostep_slow_path_entries_total {}", self.slow_entries);
        for c in RecoveryCase::ALL {
            let _ = writeln!(
                out,
                "twostep_recovery_cases_total{{case=\"{}\"}} {}",
                c.label(),
                self.recovery(c)
            );
        }
        let _ = writeln!(out, "twostep_leader_changes_total {}", self.leader_changes);
        let _ = writeln!(
            out,
            "twostep_ballot_advances_total {}",
            self.ballot_advances
        );
        out.push_str("# transport\n");
        let _ = writeln!(out, "twostep_messages_dropped_total {}", self.dropped);
        let _ = writeln!(out, "twostep_reconnects_total {}", self.reconnects);
        for (kind, stats) in &self.bytes_by_kind {
            let _ = writeln!(
                out,
                "twostep_messages_sent_total{{kind=\"{kind}\"}} {}",
                stats.messages
            );
            let _ = writeln!(
                out,
                "twostep_bytes_sent_total{{kind=\"{kind}\"}} {}",
                stats.bytes
            );
        }
        if !self.injections_by_behavior.is_empty() {
            out.push_str("# byzantine fault injections\n");
            for (behavior, count) in &self.injections_by_behavior {
                let _ = writeln!(
                    out,
                    "twostep_fault_injections_total{{behavior=\"{behavior}\"}} {count}"
                );
            }
        }
        if self.queue_depth.count > 0 {
            out.push_str("# replica queue depth\n");
            let q = self.queue_depth;
            let _ = writeln!(out, "twostep_queue_depth{{quantile=\"0.5\"}} {}", q.p50);
            let _ = writeln!(out, "twostep_queue_depth{{quantile=\"0.99\"}} {}", q.p99);
            let _ = writeln!(out, "twostep_queue_depth_max {}", q.max);
        }
        if self.batch_size.count > 0 {
            out.push_str("# commands per applied batch\n");
            let b = self.batch_size;
            let _ = writeln!(out, "twostep_batch_size{{quantile=\"0.5\"}} {}", b.p50);
            let _ = writeln!(out, "twostep_batch_size{{quantile=\"0.99\"}} {}", b.p99);
            let _ = writeln!(out, "twostep_batch_size_max {}", b.max);
            let _ = writeln!(out, "twostep_batch_size_count {}", b.count);
        }
        if self.amortized_latency.count > 0 {
            out.push_str("# per-command amortized latency (engine units)\n");
            let a = self.amortized_latency;
            let _ = writeln!(
                out,
                "twostep_amortized_latency{{quantile=\"0.5\"}} {}",
                a.p50
            );
            let _ = writeln!(
                out,
                "twostep_amortized_latency{{quantile=\"0.99\"}} {}",
                a.p99
            );
            let _ = writeln!(out, "twostep_amortized_latency_max {}", a.max);
            let _ = writeln!(out, "twostep_amortized_latency_count {}", a.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn latencies_join_on_the_last_reported_path() {
        let m = Metrics::new();
        m.decided(p(0), Path::Fast);
        m.decision_latency(p(0), 2_000);
        m.decided(p(1), Path::RecoveryEq);
        m.decision_latency(p(1), 8_000);
        let s = m.snapshot();
        assert_eq!(s.decided(Path::Fast), 1);
        assert_eq!(s.decided(Path::RecoveryEq), 1);
        assert_eq!(s.latency_of(Path::Fast).count, 1);
        assert_eq!(s.latency_of(Path::Fast).max, 2_000);
        assert_eq!(s.latency_of(Path::RecoveryEq).max, 8_000);
        assert_eq!(s.total_decisions(), 2);
    }

    #[test]
    fn unattributed_latency_files_as_learned() {
        let m = Metrics::new();
        m.decision_latency(p(3), 500);
        assert_eq!(m.snapshot().latency_of(Path::Learned).count, 1);
    }

    #[test]
    fn transitions_are_counted_and_ring_recorded() {
        let m = Metrics::new();
        m.slow_path_entered(p(2));
        m.recovery_case(p(2), RecoveryCase::Gt);
        m.leader_changed(p(1), p(2));
        m.ballot_advanced(p(0));
        m.message_dropped(p(0), p(3));
        m.reconnected(p(0));
        let s = m.snapshot();
        assert_eq!(s.slow_entries, 1);
        assert_eq!(s.recovery(RecoveryCase::Gt), 1);
        assert_eq!(s.leader_changes, 1);
        assert_eq!(s.ballot_advances, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.reconnects, 1);
        let kinds: Vec<EventKind> = m.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::SlowPathEntered,
                EventKind::Recovery(RecoveryCase::Gt),
                EventKind::LeaderChanged(p(2)),
                EventKind::BallotAdvanced,
                EventKind::MessageDropped(p(3)),
            ]
        );
    }

    #[test]
    fn byte_stats_accumulate_per_kind() {
        let m = Metrics::new();
        m.bytes_sent(p(0), "TwoB", 10);
        m.bytes_sent(p(1), "TwoB", 14);
        m.bytes_sent(p(0), "OneA", 6);
        let s = m.snapshot();
        assert_eq!(
            s.bytes_by_kind.get("TwoB"),
            Some(&ByteStats {
                messages: 2,
                bytes: 24
            })
        );
        assert_eq!(
            s.bytes_by_kind.get("OneA"),
            Some(&ByteStats {
                messages: 1,
                bytes: 6
            })
        );
    }

    #[test]
    fn exporter_format_is_pinned() {
        let m = Metrics::new();
        m.decided(p(0), Path::Fast);
        m.decision_latency(p(0), 2_000);
        m.bytes_sent(p(0), "TwoB", 24);
        m.queue_depth(p(0), 3);
        let text = m.render_text();
        assert!(text.contains("twostep_decisions_total{path=\"fast\"} 1"));
        assert!(text.contains("twostep_decisions_total{path=\"recovery-gt\"} 0"));
        assert!(text.contains("twostep_decision_latency{path=\"fast\",quantile=\"0.5\"} 2000"));
        assert!(text.contains("twostep_decision_latency_count{path=\"fast\"} 1"));
        assert!(text.contains("twostep_recovery_cases_total{case=\"eq\"} 0"));
        assert!(text.contains("twostep_bytes_sent_total{kind=\"TwoB\"} 24"));
        assert!(text.contains("twostep_queue_depth_max 3"));
        // Latency sections for paths with no samples are omitted.
        assert!(!text.contains("twostep_decision_latency{path=\"slow\""));
    }

    #[test]
    fn batch_and_amortized_histograms_accumulate() {
        let m = Metrics::new();
        m.batch_committed(p(0), 1);
        m.batch_committed(p(0), 16);
        m.amortized_latency(p(0), 500);
        m.amortized_latency(p(1), 2_000);
        let s = m.snapshot();
        assert_eq!(s.batch_size.count, 2);
        assert_eq!(s.batch_size.max, 16);
        assert_eq!(s.amortized_latency.count, 2);
        assert_eq!(s.amortized_latency.max, 2_000);
        let text = s.render_text();
        assert!(text.contains("twostep_batch_size_max 16"));
        assert!(text.contains("twostep_amortized_latency_count 2"));
    }

    #[test]
    fn injection_counters_accumulate_per_behavior() {
        let m = Metrics::new();
        m.fault_injected(p(2), "equivocate");
        m.fault_injected(p(2), "equivocate");
        m.fault_injected(p(3), "forge");
        let s = m.snapshot();
        assert_eq!(s.injections("equivocate"), 2);
        assert_eq!(s.injections("forge"), 1);
        assert_eq!(s.injections("silence"), 0);
        assert_eq!(s.total_injections(), 3);
        let text = s.render_text();
        assert!(text.contains("twostep_fault_injections_total{behavior=\"equivocate\"} 2"));
        assert!(text.contains("twostep_fault_injections_total{behavior=\"forge\"} 1"));
        // The section is omitted entirely when no injections occurred.
        assert!(!Metrics::new()
            .render_text()
            .contains("twostep_fault_injections_total"));
    }

    #[test]
    fn shared_returns_an_attached_handle() {
        let (metrics, handle) = Metrics::shared();
        assert!(handle.is_attached());
        handle.decided(p(0), Path::Slow);
        assert_eq!(metrics.snapshot().decided(Path::Slow), 1);
    }
}
