//! The observer hook trait and the nullable handle protocols hold.

use std::fmt;
use std::sync::Arc;

use twostep_types::ProcessId;

use crate::{Path, RecoveryCase};

/// Hooks invoked at interesting protocol and engine transitions.
///
/// All methods default to no-ops so observers implement only what they
/// care about. Implementations must be internally synchronized
/// (`&self` receivers, `Send + Sync`): in the threaded runtime one
/// observer is shared by every node thread.
///
/// Latency and byte values are plain `u64`s in *engine-defined* units:
/// the simulator reports virtual-time units (1000 per Δ), the threaded
/// runtime reports wall-clock microseconds. Consumers know which
/// engine they attached to.
pub trait ProtocolObserver: fmt::Debug + Send + Sync {
    /// `process` decided via `path`.
    ///
    /// Protocols call this synchronously at the point the decision is
    /// recorded, *before* the engine drains the decision effect — so an
    /// engine's subsequent [`ProtocolObserver::decision_latency`] call
    /// for the same process can be attributed to this path.
    fn decided(&self, process: ProcessId, path: Path) {
        let _ = (process, path);
    }

    /// The engine measured `process`'s decision latency (engine units).
    fn decision_latency(&self, process: ProcessId, latency: u64) {
        let _ = (process, latency);
    }

    /// `process` opened a new slow-path ballot (phase one started).
    fn slow_path_entered(&self, process: ProcessId) {
        let _ = process;
    }

    /// Phase one at coordinator `process` completed and the recovery
    /// rule chose a value via `case`.
    fn recovery_case(&self, process: ProcessId, case: RecoveryCase) {
        let _ = (process, case);
    }

    /// The Ω service at `process` now trusts `leader`.
    fn leader_changed(&self, process: ProcessId, leader: ProcessId) {
        let _ = (process, leader);
    }

    /// `process` adopted a higher ballot.
    fn ballot_advanced(&self, process: ProcessId) {
        let _ = process;
    }

    /// The replica at `process` has `depth` commands accepted but not
    /// yet committed (queued or in flight).
    fn queue_depth(&self, process: ProcessId, depth: usize) {
        let _ = (process, depth);
    }

    /// The replica at `process` applied a committed batch of `size`
    /// commands (one consensus slot carried `size` client commands).
    fn batch_committed(&self, process: ProcessId, size: usize) {
        let _ = (process, size);
    }

    /// A client observed one command complete end to end through the
    /// proxy at `process` after `latency` engine units. With batching,
    /// this is the per-command *amortized* latency: each command in a
    /// batch reports its own wait, so the histogram reflects what
    /// clients experience rather than per-slot consensus cost.
    fn amortized_latency(&self, process: ProcessId, latency: u64) {
        let _ = (process, latency);
    }

    /// `process` put a `kind` message of `bytes` encoded bytes on the
    /// wire.
    fn bytes_sent(&self, process: ProcessId, kind: &str, bytes: usize) {
        let _ = (process, kind, bytes);
    }

    /// The transport at `from` gave up on a message to `to`.
    fn message_dropped(&self, from: ProcessId, to: ProcessId) {
        let _ = (from, to);
    }

    /// The Byzantine fault-injection layer at `process` perturbed its
    /// outgoing traffic: `behavior` names the injected behavior
    /// (`"equivocate"`, `"forge"`, `"lie-ballot"`, `"silence"`). Called
    /// once per actually-mutated or actually-dropped message, so the
    /// per-behavior counters measure real injections, not wrapper
    /// invocations.
    fn fault_injected(&self, process: ProcessId, behavior: &str) {
        let _ = (process, behavior);
    }

    /// The transport at `process` re-established a broken connection.
    fn reconnected(&self, process: ProcessId) {
        let _ = process;
    }
}

/// A cheap, clonable, nullable handle to a [`ProtocolObserver`].
///
/// Protocol structs store one of these instead of a generic parameter:
/// the detached handle ([`ObserverHandle::none`], also the `Default`)
/// forwards nothing — every hook is an inlined branch on `None` — so
/// the fuzzer, the model checker and the proof-adjacent tests pay
/// nothing for the instrumentation.
///
/// The `Debug` rendering is deliberately constant per attachment state
/// (`none`/`attached`, never the observer's interior): protocol state
/// fingerprints hash `Debug` output, and a mutating observer must not
/// perturb state-space exploration.
#[derive(Clone, Default)]
pub struct ObserverHandle(Option<Arc<dyn ProtocolObserver>>);

impl fmt::Debug for ObserverHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(_) => f.write_str("ObserverHandle(attached)"),
            None => f.write_str("ObserverHandle(none)"),
        }
    }
}

impl<T: ProtocolObserver + 'static> From<Arc<T>> for ObserverHandle {
    fn from(observer: Arc<T>) -> Self {
        ObserverHandle(Some(observer))
    }
}

impl ObserverHandle {
    /// The detached handle: every hook is a no-op.
    pub const fn none() -> Self {
        ObserverHandle(None)
    }

    /// Attaches `observer`.
    pub fn new(observer: Arc<dyn ProtocolObserver>) -> Self {
        ObserverHandle(Some(observer))
    }

    /// Whether an observer is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// See [`ProtocolObserver::decided`].
    #[inline]
    pub fn decided(&self, process: ProcessId, path: Path) {
        if let Some(o) = &self.0 {
            o.decided(process, path);
        }
    }

    /// See [`ProtocolObserver::decision_latency`].
    #[inline]
    pub fn decision_latency(&self, process: ProcessId, latency: u64) {
        if let Some(o) = &self.0 {
            o.decision_latency(process, latency);
        }
    }

    /// See [`ProtocolObserver::slow_path_entered`].
    #[inline]
    pub fn slow_path_entered(&self, process: ProcessId) {
        if let Some(o) = &self.0 {
            o.slow_path_entered(process);
        }
    }

    /// See [`ProtocolObserver::recovery_case`].
    #[inline]
    pub fn recovery_case(&self, process: ProcessId, case: RecoveryCase) {
        if let Some(o) = &self.0 {
            o.recovery_case(process, case);
        }
    }

    /// See [`ProtocolObserver::leader_changed`].
    #[inline]
    pub fn leader_changed(&self, process: ProcessId, leader: ProcessId) {
        if let Some(o) = &self.0 {
            o.leader_changed(process, leader);
        }
    }

    /// See [`ProtocolObserver::ballot_advanced`].
    #[inline]
    pub fn ballot_advanced(&self, process: ProcessId) {
        if let Some(o) = &self.0 {
            o.ballot_advanced(process);
        }
    }

    /// See [`ProtocolObserver::queue_depth`].
    #[inline]
    pub fn queue_depth(&self, process: ProcessId, depth: usize) {
        if let Some(o) = &self.0 {
            o.queue_depth(process, depth);
        }
    }

    /// See [`ProtocolObserver::batch_committed`].
    #[inline]
    pub fn batch_committed(&self, process: ProcessId, size: usize) {
        if let Some(o) = &self.0 {
            o.batch_committed(process, size);
        }
    }

    /// See [`ProtocolObserver::amortized_latency`].
    #[inline]
    pub fn amortized_latency(&self, process: ProcessId, latency: u64) {
        if let Some(o) = &self.0 {
            o.amortized_latency(process, latency);
        }
    }

    /// See [`ProtocolObserver::bytes_sent`].
    #[inline]
    pub fn bytes_sent(&self, process: ProcessId, kind: &str, bytes: usize) {
        if let Some(o) = &self.0 {
            o.bytes_sent(process, kind, bytes);
        }
    }

    /// See [`ProtocolObserver::message_dropped`].
    #[inline]
    pub fn message_dropped(&self, from: ProcessId, to: ProcessId) {
        if let Some(o) = &self.0 {
            o.message_dropped(from, to);
        }
    }

    /// See [`ProtocolObserver::reconnected`].
    #[inline]
    pub fn reconnected(&self, process: ProcessId) {
        if let Some(o) = &self.0 {
            o.reconnected(process);
        }
    }

    /// See [`ProtocolObserver::fault_injected`].
    #[inline]
    pub fn fault_injected(&self, process: ProcessId, behavior: &str) {
        if let Some(o) = &self.0 {
            o.fault_injected(process, behavior);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counter;

    #[derive(Debug, Default)]
    struct CountingObserver {
        decisions: Counter,
    }

    impl ProtocolObserver for CountingObserver {
        fn decided(&self, _process: ProcessId, _path: Path) {
            self.decisions.inc();
        }
    }

    #[test]
    fn detached_handle_is_a_noop() {
        let h = ObserverHandle::none();
        assert!(!h.is_attached());
        // None of these may panic or do anything.
        h.decided(ProcessId::new(0), Path::Fast);
        h.decision_latency(ProcessId::new(0), 1);
        h.slow_path_entered(ProcessId::new(0));
        h.recovery_case(ProcessId::new(0), RecoveryCase::Eq);
        h.leader_changed(ProcessId::new(0), ProcessId::new(1));
        h.ballot_advanced(ProcessId::new(0));
        h.queue_depth(ProcessId::new(0), 3);
        h.batch_committed(ProcessId::new(0), 16);
        h.amortized_latency(ProcessId::new(0), 250);
        h.bytes_sent(ProcessId::new(0), "TwoB", 16);
        h.message_dropped(ProcessId::new(0), ProcessId::new(1));
        h.reconnected(ProcessId::new(0));
        h.fault_injected(ProcessId::new(0), "equivocate");
    }

    #[test]
    fn attached_handle_forwards() {
        let obs = Arc::new(CountingObserver::default());
        let h = ObserverHandle::from(obs.clone());
        assert!(h.is_attached());
        h.decided(ProcessId::new(0), Path::Fast);
        h.clone().decided(ProcessId::new(1), Path::Slow);
        assert_eq!(obs.decisions.get(), 2);
    }

    #[test]
    fn debug_rendering_is_constant_per_attachment_state() {
        let detached = format!("{:?}", ObserverHandle::none());
        assert_eq!(detached, "ObserverHandle(none)");
        let obs = Arc::new(CountingObserver::default());
        let h = ObserverHandle::from(obs.clone());
        let before = format!("{h:?}");
        h.decided(ProcessId::new(0), Path::Fast);
        assert_eq!(before, format!("{h:?}"), "observer state must not leak");
        assert_eq!(before, "ObserverHandle(attached)");
    }
}
