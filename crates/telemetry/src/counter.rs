//! A monotonically increasing atomic counter.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations use relaxed atomics: counters are statistics, not
/// synchronization primitives, and the readers (snapshot/exporter) only
/// need eventually consistent values.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_increments() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
