//! A log2-bucketed latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit width of `u64`.
const BUCKETS: usize = 65;

/// A fixed-footprint histogram with power-of-two bucket boundaries.
///
/// Bucket `0` holds the value `0`; bucket `k >= 1` holds the values
/// `2^(k-1) ..= 2^k - 1` (i.e. values with exactly `k` significant
/// bits). Recording is two relaxed atomic adds and one atomic max —
/// cheap enough to leave enabled in benchmarks.
///
/// Quantiles are *upper bounds*: [`Histogram::quantile`] returns the
/// inclusive upper boundary of the bucket containing the requested
/// rank (clamped to the exact observed maximum), so the reported value
/// is within 2x of the true order statistic. The rank itself uses the
/// same nearest-rank rule as the bench crate's exact `percentile`
/// helper: `rank = round((count - 1) * q)`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index of `value`: its number of significant bits.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value stored in bucket `index`.
fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The exact maximum observed value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The mean observed value (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// The quantile `q` in `[0, 1]`, as a bucket upper bound clamped to
    /// the observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((n - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative > rank {
                return bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// The median (see [`Histogram::quantile`] for precision).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 99th percentile (see [`Histogram::quantile`] for precision).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// A point-in-time copy of the summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            p50: self.p50(),
            p99: self.p99(),
            max: self.max(),
            mean: self.mean(),
        }
    }
}

/// Summary statistics of a [`Histogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Median (bucket upper bound; see [`Histogram::quantile`]).
    pub p50: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Exact observed maximum.
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_pinned() {
        // Bucket k holds exactly the values with k significant bits.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);

        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(11), 2047);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn percentile_math_is_pinned() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        // rank(p50) = round(3 * 0.50) = 2; cumulative counts are
        // bucket1 = 1, bucket2 = 3 -> the rank lands in bucket 2, whose
        // upper bound is 3.
        assert_eq!(h.p50(), 3);
        // rank(p99) = round(3 * 0.99) = 3 -> bucket 3 (the lone 4),
        // upper bound 7, clamped to the exact max 4.
        assert_eq!(h.p99(), 4);
        assert_eq!(h.max(), 4);
        assert_eq!(h.mean(), 2.5);
    }

    #[test]
    fn quantiles_of_uniform_values_are_exactly_that_value() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(2_000);
        }
        // All samples share bucket 11 (1024..=2047)... except 2000 has
        // 11 significant bits: bucket_of(2000) = 11, upper bound 2047,
        // clamped to max 2000.
        assert_eq!(h.p50(), 2_000);
        assert_eq!(h.p99(), 2_000);
        assert_eq!(h.max(), 2_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn zero_values_land_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(1);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 1);
    }

    #[test]
    fn snapshot_copies_summary() {
        let h = Histogram::new();
        h.record(5);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, 5); // upper bound 7 clamped to max 5
        assert_eq!(s.max, 5);
        assert_eq!(s.mean, 5.0);
    }
}
