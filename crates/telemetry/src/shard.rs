//! Per-shard metrics rollups for sharded deployments.
//!
//! A sharded cluster runs `k` independent consensus groups; mixing
//! their counters into one [`Metrics`] would hide exactly what sharding
//! is supposed to show (per-group load balance, per-group path mix).
//! [`ShardedMetrics`] keeps one [`Metrics`] per shard and rolls them up
//! on demand.

use std::sync::Arc;

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::observer::ObserverHandle;
use crate::Path;

/// One [`Metrics`] registry per shard, with rollup helpers.
///
/// ```rust
/// use twostep_telemetry::{Path, ShardedMetrics};
/// use twostep_types::ProcessId;
///
/// let sharded = ShardedMetrics::new(4);
/// let handles = sharded.handles();
/// handles[2].decided(ProcessId::new(0), Path::Fast);
/// let snaps = sharded.snapshot();
/// assert_eq!(snaps[2].decided(Path::Fast), 1);
/// assert_eq!(sharded.total_decisions(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedMetrics {
    shards: Vec<Arc<Metrics>>,
}

impl ShardedMetrics {
    /// Fresh registries for `shards` groups.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        ShardedMetrics {
            shards: (0..shards).map(|_| Arc::new(Metrics::new())).collect(),
        }
    }

    /// Number of shards tracked.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The registry of one shard.
    pub fn metrics(&self, shard: usize) -> &Arc<Metrics> {
        &self.shards[shard]
    }

    /// An observer handle forwarding to shard `shard`'s registry.
    pub fn handle(&self, shard: usize) -> ObserverHandle {
        ObserverHandle::from(Arc::clone(&self.shards[shard]))
    }

    /// One observer handle per shard, in shard order — made to be passed
    /// to a cluster builder's per-shard observer knob.
    pub fn handles(&self) -> Vec<ObserverHandle> {
        (0..self.shards.len()).map(|s| self.handle(s)).collect()
    }

    /// Point-in-time snapshots, one per shard.
    pub fn snapshot(&self) -> Vec<MetricsSnapshot> {
        self.shards.iter().map(|m| m.snapshot()).collect()
    }

    /// Total decisions across all shards and paths.
    pub fn total_decisions(&self) -> u64 {
        self.shards
            .iter()
            .map(|m| m.snapshot().total_decisions())
            .sum()
    }

    /// Renders a text/Prometheus-style rollup: per-shard decision
    /// counts by path (`shard` label), per-shard amortized latency
    /// p50/p99, and cross-shard totals — the balance view the sharding
    /// experiments read.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let snaps = self.snapshot();
        let mut out = String::new();
        out.push_str("# decisions by shard and path\n");
        for (s, snap) in snaps.iter().enumerate() {
            for p in Path::ALL {
                let _ = writeln!(
                    out,
                    "twostep_shard_decisions_total{{shard=\"{s}\",path=\"{}\"}} {}",
                    p.label(),
                    snap.decided(p)
                );
            }
        }
        out.push_str("# per-shard amortized command latency (us)\n");
        for (s, snap) in snaps.iter().enumerate() {
            let lat = snap.amortized_latency;
            let _ = writeln!(
                out,
                "twostep_shard_amortized_latency_us{{shard=\"{s}\",q=\"p50\"}} {}",
                lat.p50
            );
            let _ = writeln!(
                out,
                "twostep_shard_amortized_latency_us{{shard=\"{s}\",q=\"p99\"}} {}",
                lat.p99
            );
        }
        out.push_str("# rollup\n");
        let total: u64 = snaps.iter().map(MetricsSnapshot::total_decisions).sum();
        let _ = writeln!(out, "twostep_sharded_decisions_total {total}");
        let busiest = snaps
            .iter()
            .map(MetricsSnapshot::total_decisions)
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "twostep_sharded_busiest_shard_decisions {busiest}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_types::ProcessId;

    #[test]
    fn shards_are_isolated() {
        let sharded = ShardedMetrics::new(3);
        let handles = sharded.handles();
        handles[0].decided(ProcessId::new(0), Path::Fast);
        handles[2].decided(ProcessId::new(1), Path::Slow);
        handles[2].decided(ProcessId::new(2), Path::Fast);
        let snaps = sharded.snapshot();
        assert_eq!(snaps[0].total_decisions(), 1);
        assert_eq!(snaps[1].total_decisions(), 0);
        assert_eq!(snaps[2].total_decisions(), 2);
        assert_eq!(sharded.total_decisions(), 3);
    }

    #[test]
    fn rollup_renders_shard_labels() {
        let sharded = ShardedMetrics::new(2);
        sharded.handle(1).decided(ProcessId::new(0), Path::Fast);
        let text = sharded.render_text();
        assert!(text.contains("twostep_shard_decisions_total{shard=\"1\",path=\"fast\"} 1"));
        assert!(text.contains("twostep_shard_decisions_total{shard=\"0\",path=\"fast\"} 0"));
        assert!(text.contains("twostep_sharded_decisions_total 1"));
        assert!(text.contains("twostep_sharded_busiest_shard_decisions 1"));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedMetrics::new(0);
    }
}
