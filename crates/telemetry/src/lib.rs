//! Protocol-aware metrics and event tracing for the twostep workspace.
//!
//! The paper's value proposition is *which path a decision takes* — the
//! proxy's two-step fast path, the ballot-based slow path, or one of the
//! two vote-count cases of the recovery rule (`> n-f-e` vs `= n-f-e`).
//! This crate provides the vocabulary and the plumbing to count, time
//! and trace those paths without the protocols knowing anything about
//! metric backends:
//!
//! * [`ProtocolObserver`] — the hook trait protocols and engines call
//!   at interesting transitions (decisions, slow-path entries, recovery
//!   cases, Ω leader changes, ballot advances, latencies, queue depths,
//!   bytes on the wire, message drops);
//! * [`ObserverHandle`] — a cheap clonable handle that forwards to an
//!   attached observer or compiles down to a branch-on-`None` no-op, so
//!   the fuzzer and the proofs-adjacent tests pay nothing;
//! * [`Metrics`] — the standard observer: atomic [`Counter`]s,
//!   log2-bucketed [`Histogram`]s with p50/p99/max, and a fixed-capacity
//!   [`EventRing`] of protocol transitions;
//! * [`MetricsSnapshot`] — a point-in-time copy with a
//!   text/Prometheus-style exporter ([`MetricsSnapshot::render_text`]).
//!
//! The crate deliberately depends only on `twostep-types` and the
//! standard library: every other crate in the workspace (core,
//! baselines, sim, runtime, SMR, bench, fuzz) layers on top of it.
//!
//! # Example
//!
//! ```rust
//! use std::sync::Arc;
//! use twostep_telemetry::{Metrics, ObserverHandle, Path};
//! use twostep_types::ProcessId;
//!
//! let metrics = Arc::new(Metrics::new());
//! let obs = ObserverHandle::from(metrics.clone());
//! obs.decided(ProcessId::new(0), Path::Fast);
//! obs.decision_latency(ProcessId::new(0), 2_000);
//! let snap = metrics.snapshot();
//! assert_eq!(snap.decisions[Path::Fast.index()], 1);
//! assert!(snap.render_text().contains("twostep_decisions_total{path=\"fast\"} 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
mod metrics;
mod observer;
mod ring;
mod shard;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot};
pub use metrics::{ByteStats, Metrics, MetricsSnapshot};
pub use observer::{ObserverHandle, ProtocolObserver};
pub use ring::{Event, EventKind, EventRing};
pub use shard::ShardedMetrics;

/// The path by which a process reached its decision.
///
/// The first four labels are the ones the paper's experiments compare;
/// [`Path::Learned`] covers decisions adopted from another process's
/// `Decide`/`Commit` broadcast (gossip), which have no path of their
/// own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Path {
    /// Two-step fast path: a fast quorum of `n-e` matching votes.
    Fast,
    /// Ballot-based slow path (phase one found no recovery-rule work:
    /// an explicit prior vote or the coordinator's own value won).
    Slow,
    /// Slow path whose value was chosen by the recovery rule's
    /// `> n-f-e` vote-count case.
    RecoveryGt,
    /// Slow path whose value was chosen by the recovery rule's
    /// `= n-f-e` vote-count case (max tie-break).
    RecoveryEq,
    /// Decision learned from another process's decide broadcast.
    Learned,
}

impl Path {
    /// Every path, in display order.
    pub const ALL: [Path; 5] = [
        Path::Fast,
        Path::Slow,
        Path::RecoveryGt,
        Path::RecoveryEq,
        Path::Learned,
    ];

    /// Number of distinct paths.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index, for per-path arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable label used by the exporter and the bench tables.
    pub const fn label(self) -> &'static str {
        match self {
            Path::Fast => "fast",
            Path::Slow => "slow",
            Path::RecoveryGt => "recovery-gt",
            Path::RecoveryEq => "recovery-eq",
            Path::Learned => "learned",
        }
    }
}

/// Which branch of the recovery rule (`select_value`, Figure 1 / §C.1)
/// chose the new ballot's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryCase {
    /// Some report carried an already-taken decision.
    ReportedDecision,
    /// The highest slow-ballot vote won (classic Paxos rule).
    SlowBallot,
    /// A value held **more than** `n-f-e` fast votes in the
    /// proposer-excluded tally (the rule's first vote-count case).
    Gt,
    /// A value held **exactly** `n-f-e` fast votes; the max such value
    /// was taken (the rule's second vote-count case).
    Eq,
    /// No constraint survived: the coordinator fell back to its own
    /// initial (or an observed) value.
    Fallback,
}

impl RecoveryCase {
    /// Every case, in rule order.
    pub const ALL: [RecoveryCase; 5] = [
        RecoveryCase::ReportedDecision,
        RecoveryCase::SlowBallot,
        RecoveryCase::Gt,
        RecoveryCase::Eq,
        RecoveryCase::Fallback,
    ];

    /// Number of distinct cases.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index, for per-case arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable label used by the exporter and the fuzzer's summaries.
    pub const fn label(self) -> &'static str {
        match self {
            RecoveryCase::ReportedDecision => "decided",
            RecoveryCase::SlowBallot => "slow-ballot",
            RecoveryCase::Gt => "gt",
            RecoveryCase::Eq => "eq",
            RecoveryCase::Fallback => "fallback",
        }
    }

    /// The decision path a slow-path decision should be attributed to
    /// when its ballot's value was selected by this case.
    pub const fn as_path(self) -> Path {
        match self {
            RecoveryCase::Gt => Path::RecoveryGt,
            RecoveryCase::Eq => Path::RecoveryEq,
            _ => Path::Slow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_indices_are_dense_and_labels_stable() {
        for (i, p) in Path::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let labels: Vec<&str> = Path::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec!["fast", "slow", "recovery-gt", "recovery-eq", "learned"]
        );
    }

    #[test]
    fn recovery_case_indices_are_dense_and_labels_stable() {
        for (i, c) in RecoveryCase::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let labels: Vec<&str> = RecoveryCase::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["decided", "slow-ballot", "gt", "eq", "fallback"]
        );
    }

    #[test]
    fn recovery_cases_map_to_paths() {
        assert_eq!(RecoveryCase::Gt.as_path(), Path::RecoveryGt);
        assert_eq!(RecoveryCase::Eq.as_path(), Path::RecoveryEq);
        assert_eq!(RecoveryCase::ReportedDecision.as_path(), Path::Slow);
        assert_eq!(RecoveryCase::SlowBallot.as_path(), Path::Slow);
        assert_eq!(RecoveryCase::Fallback.as_path(), Path::Slow);
    }
}
