//! A bounded ring buffer of protocol transition events.

use std::collections::VecDeque;
use std::sync::Mutex;

use twostep_types::ProcessId;

use crate::{Path, RecoveryCase};

/// What happened in a recorded protocol transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A process decided via the given path.
    Decided(Path),
    /// A process opened a new slow-path ballot.
    SlowPathEntered,
    /// A ballot coordinator's phase one completed via this recovery
    /// case.
    Recovery(RecoveryCase),
    /// The Ω service at a process switched its leader to the given
    /// process.
    LeaderChanged(ProcessId),
    /// A process adopted a higher ballot.
    BallotAdvanced,
    /// The transport at a process dropped a message to the given
    /// destination.
    MessageDropped(ProcessId),
}

/// One recorded protocol transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The process at which the transition happened.
    pub process: ProcessId,
    /// The transition.
    pub kind: EventKind,
}

/// A fixed-capacity ring buffer of [`Event`]s: the most recent
/// `capacity` transitions, oldest first.
///
/// The ring is the "flight recorder" counterpart of the counters: after
/// a run you can ask not only *how many* recovery events fired but in
/// what order relative to leader changes and ballot advances.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
}

/// Default ring capacity, ample for any single experiment run.
const DEFAULT_CAPACITY: usize = 1024;

impl Default for EventRing {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl EventRing {
    /// Creates a ring retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        EventRing {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&self, event: Event) {
        let mut buf = self.buf.lock().expect("event ring poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf
            .lock()
            .expect("event ring poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("event ring poisoned").len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u32) -> Event {
        Event {
            process: ProcessId::new(i),
            kind: EventKind::BallotAdvanced,
        }
    }

    #[test]
    fn retains_most_recent_in_order() {
        let ring = EventRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 3);
        let got: Vec<u32> = ring.events().iter().map(|e| e.process.as_u32()).collect();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = EventRing::new(0);
    }
}
