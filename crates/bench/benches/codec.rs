//! Microbench: the binary wire codec on representative protocol
//! messages.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use twostep_core::Msg;
use twostep_runtime::codec::{from_bytes, to_bytes};
use twostep_types::{Ballot, ProcessId};

fn messages() -> Vec<Msg<u64>> {
    vec![
        Msg::Propose(0xDEAD_BEEF),
        Msg::OneA(Ballot::new(42)),
        Msg::OneB {
            bal: Ballot::new(42),
            vbal: Ballot::new(7),
            val: Some(123_456),
            proposer: Some(ProcessId::new(3)),
            decided: None,
        },
        Msg::TwoA(Ballot::new(42), 99),
        Msg::TwoB(Ballot::FAST, 99),
        Msg::Decide(99),
        Msg::Heartbeat,
    ]
}

fn bench_codec(c: &mut Criterion) {
    let msgs = messages();
    let encoded: Vec<Vec<u8>> = msgs.iter().map(|m| to_bytes(m).unwrap()).collect();

    c.bench_function("codec/encode_all_message_kinds", |b| {
        b.iter(|| {
            for m in &msgs {
                std::hint::black_box(to_bytes(m).unwrap());
            }
        })
    });

    c.bench_function("codec/decode_all_message_kinds", |b| {
        b.iter(|| {
            for bytes in &encoded {
                std::hint::black_box(from_bytes::<Msg<u64>>(bytes).unwrap());
            }
        })
    });

    c.bench_function("codec/roundtrip_oneb", |b| {
        let oneb = &msgs[2];
        b.iter_batched(
            || oneb.clone(),
            |m| {
                let bytes = to_bytes(&m).unwrap();
                std::hint::black_box(from_bytes::<Msg<u64>>(&bytes).unwrap())
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("codec/encode_string_payload", |b| {
        let msg: Msg<String> = Msg::Propose("a realistic replicated command payload".into());
        b.iter(|| std::hint::black_box(to_bytes(&msg).unwrap()))
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
