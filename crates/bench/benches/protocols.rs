//! Microbench: one complete simulated decision per protocol, at each
//! protocol's minimal process count for (e, f) = (2, 2) — compares the
//! full code-path cost (message handling + quorum tracking + recovery
//! machinery), not wall-clock network latency.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use twostep_baselines::{EPaxosLite, FastPaxos, Paxos};
use twostep_core::{ObjectConsensus, TaskConsensus};
use twostep_sim::SyncRunner;
use twostep_telemetry::{Metrics, ObserverHandle, ProtocolObserver};
use twostep_types::{Duration, ProcessId, SystemConfig, Time};

const E: usize = 2;
const F: usize = 2;

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_decision");

    {
        let cfg = SystemConfig::minimal_task(E, F).unwrap();
        let witness = ProcessId::new((cfg.n() - 1) as u32);
        group.bench_function("twostep_task_fast_path", |b| {
            b.iter(|| {
                let outcome = SyncRunner::new(cfg)
                    .favoring(witness)
                    .horizon(Duration::deltas(4))
                    .run(|q| TaskConsensus::new(cfg, q, 100 + u64::from(q.as_u32())));
                std::hint::black_box(outcome.decision_of(witness).copied())
            })
        });
    }

    {
        let cfg = SystemConfig::minimal_object(E, F).unwrap();
        let proposer = ProcessId::new((cfg.n() - 1) as u32);
        group.bench_function("twostep_object_fast_path", |b| {
            b.iter(|| {
                let outcome = SyncRunner::new(cfg)
                    .horizon(Duration::deltas(4))
                    .run_object(
                        |q| ObjectConsensus::<u64>::new(cfg, q),
                        vec![(proposer, 42, Time::ZERO)],
                    );
                std::hint::black_box(outcome.decision_of(proposer).copied())
            })
        });
    }

    {
        let cfg = SystemConfig::minimal_fast_paxos(E, F).unwrap();
        let witness = ProcessId::new((cfg.n() - 1) as u32);
        group.bench_function("fast_paxos_fast_path", |b| {
            b.iter(|| {
                let outcome = SyncRunner::new(cfg)
                    .favoring(witness)
                    .horizon(Duration::deltas(4))
                    .run(|q| FastPaxos::new(cfg, q, 100 + u64::from(q.as_u32())));
                std::hint::black_box(outcome.decision_of(witness).copied())
            })
        });
    }

    {
        let cfg = SystemConfig::new(2 * F + 1, E, F).unwrap();
        group.bench_function("paxos_stable_leader", |b| {
            b.iter(|| {
                let outcome = SyncRunner::new(cfg)
                    .horizon(Duration::deltas(4))
                    .run(|q| Paxos::new(cfg, q, 100 + u64::from(q.as_u32())));
                std::hint::black_box(outcome.decision_of(ProcessId::new(0)).copied())
            })
        });
    }

    {
        let cfg = SystemConfig::new(2 * F + 1, E, F).unwrap();
        let leader = ProcessId::new(0);
        group.bench_function("epaxos_lite_fast_commit", |b| {
            b.iter(|| {
                let outcome = SyncRunner::new(cfg)
                    .horizon(Duration::deltas(4))
                    .run_object(
                        |q| EPaxosLite::<u64>::new(cfg, q),
                        vec![(leader, 42, Time::ZERO)],
                    );
                std::hint::black_box(outcome.decision_of(leader).copied())
            })
        });
    }

    // Slow path: full recovery after a silent fast round.
    {
        let cfg = SystemConfig::minimal_task(E, F).unwrap();
        group.bench_function("twostep_task_slow_path", |b| {
            b.iter(|| {
                // Ascending proposals + send order: no fast quorum forms,
                // p0 recovers via ballot.
                let outcome = SyncRunner::new(cfg)
                    .horizon(Duration::deltas(12))
                    .run(|q| TaskConsensus::new(cfg, q, u64::from(q.as_u32())));
                std::hint::black_box(outcome.decided_values().len())
            })
        });
    }

    group.finish();
}

/// An observer whose every hook is the trait's default no-op body —
/// measures the pure dynamic-dispatch cost of an attached handle.
#[derive(Debug)]
struct NoopObserver;

impl ProtocolObserver for NoopObserver {}

/// Telemetry overhead on the hottest end-to-end path (one full task
/// fast-path decision): detached handle (baseline), attached no-op
/// observer (dispatch cost only), and attached `Metrics` (atomic
/// counters + histograms). Acceptance: metrics ≤ 5% over detached,
/// no-op ~0%.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    let cfg = SystemConfig::minimal_task(E, F).unwrap();
    let witness = ProcessId::new((cfg.n() - 1) as u32);

    let run = |obs: ObserverHandle| {
        let outcome = SyncRunner::new(cfg)
            .favoring(witness)
            .observed(obs.clone())
            .horizon(Duration::deltas(4))
            .run(move |q| {
                TaskConsensus::new(cfg, q, 100 + u64::from(q.as_u32())).observed(obs.clone())
            });
        std::hint::black_box(outcome.decision_of(witness).copied())
    };

    group.bench_function("task_fast_path_detached", |b| {
        b.iter(|| run(ObserverHandle::none()))
    });

    let noop = ObserverHandle::new(Arc::new(NoopObserver));
    group.bench_function("task_fast_path_noop_observer", |b| {
        b.iter(|| run(noop.clone()))
    });

    let (_metrics, attached) = Metrics::shared();
    group.bench_function("task_fast_path_metrics", |b| {
        b.iter(|| run(attached.clone()))
    });

    group.finish();
}

criterion_group!(benches, bench_protocols, bench_telemetry_overhead);
criterion_main!(benches);
