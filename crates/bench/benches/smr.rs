//! Microbench: end-to-end KV-SMR commit over the threaded in-memory
//! runtime (real threads, codec, channels), plus a simulator-side
//! commit for reference.

use std::time::Duration as WallDuration;

use criterion::{criterion_group, criterion_main, Criterion};

use twostep_runtime::{Cluster, ClusterBuilder};
use twostep_sim::SimulationBuilder;
use twostep_smr::{KvCommand, KvStore, SmrReplica, SmrReplicaBuilder};
use twostep_types::{Duration, ProcessId, SystemConfig, Time};

type Replica = SmrReplica<KvCommand, KvStore>;

fn replica(cfg: SystemConfig, q: ProcessId) -> Replica {
    SmrReplicaBuilder::new(cfg, q).build()
}

fn bench_smr(c: &mut Criterion) {
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();

    // Simulator-side: one full command commit across 3 replicas.
    c.bench_function("smr/simulated_commit_n3", |b| {
        b.iter(|| {
            let mut sim = SimulationBuilder::new(cfg).build(|q| replica(cfg, q));
            sim.schedule_propose(ProcessId::new(0), KvCommand::put("k", "v"), Time::ZERO);
            let outcome = sim.run_until(Time::ZERO + Duration::deltas(30), |s| {
                s.process(ProcessId::new(0)).applied() >= 1
            });
            std::hint::black_box(outcome.procs[0].applied())
        })
    });

    // Threaded runtime: cluster setup + one committed command. This is a
    // coarse end-to-end number (thread spawn + commit + teardown).
    c.bench_function("smr/threaded_commit_n3", |b| {
        b.iter(|| {
            let cluster: Cluster<KvCommand> = ClusterBuilder::new(cfg)
                .wall_delta(WallDuration::from_millis(5))
                .build_smr::<KvCommand, KvStore>()
                .expect("in-memory build cannot fail");
            cluster.propose(ProcessId::new(0), KvCommand::put("k", "v"));
            let d = cluster.await_decision(ProcessId::new(0), WallDuration::from_secs(10));
            std::hint::black_box(d)
        })
    });
}

criterion_group!(benches, bench_smr);
criterion_main!(benches);
