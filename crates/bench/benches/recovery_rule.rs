//! Microbench: the recovery value-selection rule (Figure 1 lines
//! 43–63) — the paper's central algorithmic contribution — across
//! quorum sizes and report shapes.

use criterion::{criterion_group, criterion_main, Criterion};

use twostep_core::recovery::{select_value, Report};
use twostep_core::Ablations;
use twostep_types::quorum::Collector;
use twostep_types::{Ballot, ProcessId, SystemConfig};

/// Builds an n-f-report quorum where `v_votes` processes voted for 100
/// (proposed by the last process) and the rest split on rivals.
fn reports(cfg: &SystemConfig, v_votes: usize) -> Collector<Report<u64>> {
    let mut c = Collector::new();
    let proposer = ProcessId::new((cfg.n() - 1) as u32);
    for i in 0..cfg.slow_quorum() as u32 {
        let r = if (i as usize) < v_votes {
            Report::fast_vote(100u64, proposer)
        } else if i % 2 == 0 {
            Report::fast_vote(50, ProcessId::new((cfg.n() - 2) as u32))
        } else {
            Report::empty()
        };
        c.insert(ProcessId::new(i), r);
    }
    c
}

fn bench_recovery(c: &mut Criterion) {
    for (e, f) in [(1usize, 1usize), (2, 2), (3, 3), (5, 5)] {
        let cfg = SystemConfig::minimal_task(e, f).unwrap();
        let quorum = reports(&cfg, cfg.recovery_threshold() + 1);
        c.bench_function(&format!("recovery/select_e{e}_f{f}_n{}", cfg.n()), |b| {
            b.iter(|| {
                std::hint::black_box(select_value(
                    &cfg,
                    &quorum,
                    Some(&1u64),
                    None,
                    Ablations::NONE,
                ))
            })
        });
    }

    // Shape variants at one config.
    let cfg = SystemConfig::minimal_task(3, 3).unwrap();
    let decided_case = {
        let mut c2 = reports(&cfg, 2);
        // Overwrite one report with a decided value... Collector is
        // first-write-wins, so build fresh.
        let mut fresh = Collector::new();
        for (i, (q, r)) in c2.iter().enumerate() {
            let r = if i == 0 {
                Report {
                    decided: Some(7u64),
                    ..r.clone()
                }
            } else {
                r.clone()
            };
            fresh.insert(q, r);
        }
        c2 = fresh;
        c2
    };
    c.bench_function("recovery/short_circuit_on_decided", |b| {
        b.iter(|| {
            std::hint::black_box(select_value(
                &cfg,
                &decided_case,
                None,
                None,
                Ablations::NONE,
            ))
        })
    });

    let slow_vote_case = {
        let mut fresh = Collector::new();
        for i in 0..cfg.slow_quorum() as u32 {
            fresh.insert(
                ProcessId::new(i),
                Report {
                    vbal: Ballot::new(u64::from(i) + 1),
                    val: Some(u64::from(i)),
                    proposer: Some(ProcessId::new(0)),
                    decided: None,
                },
            );
        }
        fresh
    };
    c.bench_function("recovery/highest_slow_ballot", |b| {
        b.iter(|| {
            std::hint::black_box(select_value(
                &cfg,
                &slow_vote_case,
                None,
                None,
                Ablations::NONE,
            ))
        })
    });
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
