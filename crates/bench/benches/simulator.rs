//! Microbench: discrete-event engine throughput (events/second) — the
//! substrate every experiment stands on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use serde::{Deserialize, Serialize};

use twostep_sim::SimulationBuilder;
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::{Duration, ProcessId, SystemConfig, Time};

/// Gossip storm: every process re-broadcasts each received token until a
/// hop budget is exhausted — a pure event-pump workload.
#[derive(Debug, Clone)]
struct Storm {
    me: ProcessId,
    n: usize,
    budget: u32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Token(u32);

impl Protocol<u64> for Storm {
    type Message = Token;
    fn id(&self) -> ProcessId {
        self.me
    }
    fn on_start(&mut self, eff: &mut Effects<u64, Token>) {
        if self.me == ProcessId::new(0) {
            eff.broadcast_others(Token(0), self.n, self.me);
        }
    }
    fn on_propose(&mut self, _: u64, _: &mut Effects<u64, Token>) {}
    fn on_message(&mut self, _: ProcessId, t: Token, eff: &mut Effects<u64, Token>) {
        if t.0 < self.budget {
            eff.broadcast_others(Token(t.0 + 1), self.n, self.me);
        }
    }
    fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, Token>) {}
    fn decision(&self) -> Option<u64> {
        None
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for n in [3usize, 5, 9] {
        let cfg = SystemConfig::new(n, 1, (n - 1) / 2).unwrap();
        // Measure events executed in a fixed 6-hop storm.
        let probe = SimulationBuilder::new(cfg)
            .build(|p| Storm {
                me: p,
                n,
                budget: 4,
            })
            .run(Time::ZERO + Duration::deltas(10));
        group.throughput(Throughput::Elements(probe.events_executed));
        group.bench_function(format!("storm_n{n}"), |b| {
            b.iter(|| {
                let outcome = SimulationBuilder::new(cfg)
                    .build(|p| Storm {
                        me: p,
                        n,
                        budget: 4,
                    })
                    .run(Time::ZERO + Duration::deltas(10));
                std::hint::black_box(outcome.events_executed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
