//! E12: closed-loop batched-SMR throughput on the threaded runtime.
//!
//! N closed-loop clients hammer one proxy of a KV-SMR cluster (on any
//! of the three transport backends, default in-memory) while the sweep
//! varies the replica's batch size and pipeline depth. Batching amortizes the per-slot consensus cost (each slot
//! still pays the paper's per-instance step bounds; more commands share
//! each payment), so commands/sec should grow with batch × depth while
//! per-command (amortized) latency stays within a small multiple of the
//! unbatched commit latency.
//!
//! Outputs:
//! * stdout — the sweep table,
//! * `results/e12_batching_throughput.txt` — the same table,
//! * `BENCH_e12.json` — machine-readable sweep for CI schema checks.
//!
//! Flags: `--smoke` (sub-second windows, CI-sized), `--secs <f64>`
//! (measurement window per configuration), `--backend
//! {memory|tcp|reactor}` (transport the cluster deploys on).

use std::time::{Duration as WallDuration, Instant};

use twostep_bench::{percentile, Backend, Table};
use twostep_runtime::ClusterBuilder;
use twostep_smr::{KvCommand, KvStore};
use twostep_types::{ProcessId, SystemConfig};

/// One sweep point: replica batch size × pipeline depth.
const SWEEP: [(usize, usize); 4] = [(1, 1), (4, 2), (8, 4), (16, 8)];

struct Point {
    batch: usize,
    depth: usize,
    commands: u64,
    commands_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    speedup: f64,
}

/// Runs `clients` closed-loop clients against one proxy for `secs` and
/// returns (committed commands, elapsed, per-command latencies in µs).
fn run_config(
    cfg: SystemConfig,
    wall_delta: WallDuration,
    batch: usize,
    depth: usize,
    clients: usize,
    secs: f64,
    backend: Backend,
) -> (u64, f64, Vec<f64>) {
    let builder = ClusterBuilder::new(cfg)
        .wall_delta(wall_delta)
        .batch(batch)
        .pipeline(depth);
    let cluster = backend
        .apply(builder)
        .build_smr::<KvCommand, KvStore>()
        .expect("cluster build failed");
    let proxy = ProcessId::new(0);
    let window = WallDuration::from_secs_f64(secs);

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|cid| {
            let client = cluster.proxy_client(proxy);
            std::thread::spawn(move || {
                let deadline = Instant::now() + window;
                let mut latencies = Vec::new();
                let mut seq = 0u64;
                while Instant::now() < deadline {
                    // Unique per client+sequence so submit_and_wait
                    // matches exactly this command's commit.
                    let cmd = KvCommand::put(format!("c{cid}-{seq}"), "v");
                    seq += 1;
                    match client.submit_and_wait(cmd, WallDuration::from_secs(10)) {
                        Some(latency) => latencies.push(latency.as_micros() as f64),
                        None => break,
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread panicked"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    (latencies.len() as u64, elapsed, latencies)
}

fn json_report(
    clients: usize,
    secs: f64,
    wall_delta: WallDuration,
    backend: Backend,
    points: &[Point],
) -> String {
    let mut sweep = String::new();
    for (i, pt) in points.iter().enumerate() {
        if i > 0 {
            sweep.push(',');
        }
        sweep.push_str(&format!(
            "\n    {{\"batch\": {}, \"depth\": {}, \"commands\": {}, \
             \"commands_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"speedup\": {:.2}}}",
            pt.batch, pt.depth, pt.commands, pt.commands_per_sec, pt.p50_us, pt.p99_us, pt.speedup
        ));
    }
    format!(
        "{{\n  \"experiment\": \"e12_batching_throughput\",\n  \
         \"config\": {{\"n\": 3, \"backend\": \"{}\", \"clients\": {}, \"secs_per_point\": {}, \
         \"wall_delta_ms\": {}}},\n  \"sweep\": [{}\n  ]\n}}\n",
        backend.label(),
        clients,
        secs,
        wall_delta.as_millis(),
        sweep
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let secs = args
        .iter()
        .position(|a| a == "--secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(if smoke { 0.4 } else { 3.0 });
    let backend = Backend::from_args(&args);
    // Closed-loop clients bound the commands that can be outstanding, so
    // they must outnumber the largest batch in the sweep or big batches
    // can never fill and only the pump's partial flushes move commands.
    let clients = if smoke { 16 } else { 32 };
    let wall_delta = WallDuration::from_millis(2);
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();

    let mut table = Table::new(&[
        "batch",
        "depth",
        "commands",
        "commands/sec",
        "p50 amortized",
        "p99 amortized",
        "speedup vs 1x1",
    ]);
    let mut points: Vec<Point> = Vec::new();
    for (batch, depth) in SWEEP {
        let (commands, elapsed, latencies) =
            run_config(cfg, wall_delta, batch, depth, clients, secs, backend);
        let commands_per_sec = if elapsed > 0.0 {
            commands as f64 / elapsed
        } else {
            0.0
        };
        let baseline = points
            .first()
            .map_or(commands_per_sec, |p| p.commands_per_sec);
        let speedup = if baseline > 0.0 {
            commands_per_sec / baseline
        } else {
            0.0
        };
        let pt = Point {
            batch,
            depth,
            commands,
            commands_per_sec,
            p50_us: percentile(&latencies, 0.50),
            p99_us: percentile(&latencies, 0.99),
            speedup,
        };
        table.row(&[
            pt.batch.to_string(),
            pt.depth.to_string(),
            pt.commands.to_string(),
            format!("{:.0}", pt.commands_per_sec),
            format!("{:.1} ms", pt.p50_us / 1000.0),
            format!("{:.1} ms", pt.p99_us / 1000.0),
            format!("{:.2}x", pt.speedup),
        ]);
        points.push(pt);
    }

    let title = format!(
        "E12: closed-loop batched-SMR throughput \
         ({clients} clients, one proxy, {} transport, Δ = {wall_delta:?}, {secs}s per point)",
        backend.label()
    );
    table.print(&title);
    println!(
        "\nbatching amortizes per-slot consensus cost; the per-instance step\n\
         bounds (Theorems 5-6) are untouched — each slot is still one\n\
         two-step instance, it just carries more commands."
    );

    let _ = std::fs::create_dir_all("results");
    let txt = format!("{title}\n\n{}", table.render());
    if let Err(e) = std::fs::write("results/e12_batching_throughput.txt", txt) {
        eprintln!("warning: could not write results/e12_batching_throughput.txt: {e}");
    }
    let json = json_report(clients, secs, wall_delta, backend, &points);
    if let Err(e) = std::fs::write("BENCH_e12.json", json) {
        eprintln!("warning: could not write BENCH_e12.json: {e}");
    }
}
