//! E4 (Figure 1): minimal process counts per protocol family — the
//! paper's introduction as a table, with each of our own bounds
//! validated empirically (protocol achieves two-step at its `n`) and
//! the EPaxos datapoint that motivated the paper.

use twostep_baselines::EPaxosLite;
use twostep_bench::Table;
use twostep_core::{ObjectConsensus, TaskConsensus};
use twostep_sim::SyncRunner;
use twostep_types::{ProcessId, ProtocolKind, SystemConfig, Time};

/// Empirical check: the task protocol reaches a two-step decision at
/// its minimal n with e crashes.
fn task_two_step_at(cfg: SystemConfig) -> bool {
    let crashed: twostep_types::ProcessSet = (0..cfg.e() as u32).map(ProcessId::new).collect();
    let witness = ProcessId::new((cfg.n() - 1) as u32);
    let props: Vec<u64> = (0..cfg.n() as u64).collect();
    let outcome = SyncRunner::new(cfg)
        .crashed(crashed)
        .favoring(witness)
        .run(|q| TaskConsensus::new(cfg, q, props[q.index()]));
    outcome.fast_deciders().0.contains(witness)
}

fn object_two_step_at(cfg: SystemConfig) -> bool {
    let crashed: twostep_types::ProcessSet = (0..cfg.e() as u32).map(ProcessId::new).collect();
    let proposer = ProcessId::new((cfg.n() - 1) as u32);
    let outcome = SyncRunner::new(cfg).crashed(crashed).run_object(
        |q| ObjectConsensus::<u64>::new(cfg, q),
        vec![(proposer, 9, Time::ZERO)],
    );
    outcome.fast_deciders().0.contains(proposer)
}

fn main() {
    let mut table = Table::new(&[
        "e",
        "f",
        "Paxos (2f+1)",
        "FastPaxos (2e+f+1)",
        "Task (2e+f)",
        "Object (2e+f-1)",
        "task 2-step@n",
        "object 2-step@n",
    ]);

    for f in 1..=5usize {
        for e in 1..=f {
            let paxos = ProtocolKind::Paxos.min_processes(e, f);
            let fp = ProtocolKind::FastPaxos.min_processes(e, f);
            let task = ProtocolKind::TaskTwoStep.min_processes(e, f);
            let object = ProtocolKind::ObjectTwoStep.min_processes(e, f);
            let task_cfg = SystemConfig::minimal_task(e, f).unwrap();
            let object_cfg = SystemConfig::minimal_object(e, f).unwrap();
            table.row(&[
                e.to_string(),
                f.to_string(),
                paxos.to_string(),
                fp.to_string(),
                task.to_string(),
                object.to_string(),
                if task_two_step_at(task_cfg) {
                    "yes".into()
                } else {
                    "NO".to_string()
                },
                if object_two_step_at(object_cfg) {
                    "yes".into()
                } else {
                    "NO".to_string()
                },
            ]);
        }
    }
    table.print("E4: minimal processes for f-resilient e-two-step consensus");

    // The paper's headline datapoint: e = ceil((f+1)/2).
    let mut headline = Table::new(&[
        "f",
        "e=⌈(f+1)/2⌉",
        "Object needs",
        "=2f+1?",
        "FastPaxos needs",
        "EPaxos n",
        "EPaxos fast quorum",
        "EPaxos fast tolerance",
    ]);
    for f in 1..=5usize {
        let e = (f + 1).div_ceil(2);
        let object = ProtocolKind::ObjectTwoStep.min_processes(e, f);
        let fp = ProtocolKind::FastPaxos.min_processes(e, f);
        let ep_cfg =
            SystemConfig::for_protocol(ProtocolKind::Paxos, 2 * f + 1, e.min(f), f).unwrap();
        headline.row(&[
            f.to_string(),
            e.to_string(),
            object.to_string(),
            if object == 2 * f + 1 {
                "yes".into()
            } else {
                "no".to_string()
            },
            fp.to_string(),
            (2 * f + 1).to_string(),
            EPaxosLite::<u64>::fast_quorum(&ep_cfg).to_string(),
            EPaxosLite::<u64>::fast_tolerance(&ep_cfg).to_string(),
        ]);
    }
    headline.print("E4b: the EPaxos conundrum resolved (intro, §1)");
    println!(
        "\nReading: for e = ⌈(f+1)/2⌉ the object bound collapses to bare resilience 2f+1 —\n\
         exactly EPaxos's deployment (fast tolerance = ⌈(f+1)/2⌉ with 2f+1 processes) —\n\
         while Lamport's Fast Paxos bound demands up to two more processes."
    );

    // Message complexity of one conflict-free fast decision: the paper's
    // protocol sends fast votes only to the proposer (O(n) per
    // proposal), Fast Paxos broadcasts every vote to every learner
    // (O(n²)).
    let mut complexity = Table::new(&[
        "e",
        "f",
        "Object msgs ≤ 2Δ (lone proposer)",
        "FastPaxos msgs ≤ 2Δ (lone proposer)",
    ]);
    for (e, f) in [(1usize, 1usize), (2, 2), (3, 3)] {
        use twostep_baselines::FastPaxos;
        use twostep_sim::{SimulationBuilder, TraceEvent};
        use twostep_types::{Duration, Time};

        let count_early_sends = |trace: &twostep_sim::Trace<u64>| {
            trace
                .events()
                .iter()
                .filter(|ev| {
                    ev.time() <= Time::ZERO + Duration::deltas(2)
                        && matches!(
                            ev,
                            TraceEvent::MessageSent { kind, .. }
                                if kind == "Propose" || kind == "TwoB" || kind == "Decide"
                        )
                })
                .count()
        };

        let cfg = SystemConfig::minimal_object(e, f).unwrap();
        let proposer = ProcessId::new((cfg.n() - 1) as u32);
        let mut sim = SimulationBuilder::new(cfg).build(|q| ObjectConsensus::<u64>::new(cfg, q));
        sim.schedule_propose(proposer, 7, Time::ZERO);
        let outcome = sim.run(Time::ZERO + Duration::deltas(2));
        let object_msgs = count_early_sends(&outcome.trace);

        let cfg_fp = SystemConfig::minimal_fast_paxos(e, f).unwrap();
        let mut sim =
            SimulationBuilder::new(cfg_fp).build(|q| FastPaxos::<u64>::passive(cfg_fp, q));
        sim.schedule_propose(proposer, 7, Time::ZERO);
        let outcome = sim.run(Time::ZERO + Duration::deltas(2));
        let fp_msgs = count_early_sends(&outcome.trace);

        complexity.row(&[
            e.to_string(),
            f.to_string(),
            format!("{object_msgs} (n={})", cfg.n()),
            format!("{fp_msgs} (n={})", cfg_fp.n()),
        ]);
    }
    complexity.print("E4c: protocol messages within 2Δ for one conflict-free decision");
    println!(
        "\nReading: beyond needing fewer processes, the paper's protocol sends fast votes\n\
         only to the proposer (O(n)); Fast Paxos acceptors broadcast votes to all\n\
         learners (O(n²))."
    );
}
