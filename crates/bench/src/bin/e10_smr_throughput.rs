//! E10 (Figure 6): practicality of the motivating use case — a
//! replicated key-value store on the threaded runtime, backed by the
//! object protocol, plus per-command message complexity from the
//! deterministic simulator.
//!
//! Every part attaches the telemetry subsystem: parts A and B report
//! per-path decision counts and wall-clock p50/p99 latency per path
//! (first decision per node, microseconds since node start); part C
//! reports per-path counts from the virtual-time simulator.

use std::time::{Duration as WallDuration, Instant};

use twostep_bench::{fmt_path_counts, fmt_path_latencies, Table};
use twostep_runtime::{Cluster, ClusterBuilder};
use twostep_sim::SimulationBuilder;
use twostep_smr::{KvCommand, KvStore, SmrReplicaBuilder};
use twostep_telemetry::Metrics;
use twostep_types::{Duration, ProcessId, SystemConfig, Time};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// Commits `k` commands through a threaded cluster and returns
/// (elapsed, commands committed everywhere).
fn run_cluster(cluster: &Cluster<KvCommand>, k: usize) -> (WallDuration, bool) {
    let cfg = cluster.config();
    let start = Instant::now();
    for i in 0..k {
        cluster.propose(p(0), KvCommand::put(format!("key{i}"), format!("val{i}")));
    }
    // The decide stream reports applied commands in order; wait for the
    // last one at every replica by polling the per-process decision
    // cache (first decision per process is cached; for a stream we wait
    // on the proxy's last command via the raw channel is overkill —
    // poll the proxy decision of slot 0 then give the pipeline time).
    let ok = cluster.await_decisions(cfg.process_ids(), WallDuration::from_secs(30));
    (start.elapsed(), ok)
}

fn main() {
    let wall_delta = WallDuration::from_millis(5);

    // Part A: end-to-end wall-clock commit latency, in-memory vs TCP.
    let mut part_a = Table::new(&[
        "transport",
        "n",
        "first-commit latency",
        "agreement",
        "paths f/s/gt/eq/l",
        "p50/p99 by path",
    ]);
    for (label, tcp) in [("in-memory", false), ("tcp/localhost", true)] {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let (metrics, obs) = Metrics::shared();
        let builder = ClusterBuilder::new(cfg)
            .wall_delta(wall_delta)
            .observed(obs.clone());
        let builder = if tcp { builder.tcp() } else { builder };
        let cluster: Cluster<KvCommand> = builder
            .build_smr::<KvCommand, KvStore>()
            .expect("cluster build");
        let (elapsed, ok) = run_cluster(&cluster, 1);
        let snap = metrics.snapshot();
        part_a.row(&[
            label.to_string(),
            cfg.n().to_string(),
            format!("{:.1?}", elapsed),
            if ok && cluster.agreement() {
                "yes".into()
            } else {
                "NO".to_string()
            },
            fmt_path_counts(&snap),
            fmt_path_latencies(&snap, 1000.0, "ms"),
        ]);
    }
    part_a.print("E10a: KV-SMR first-commit latency on the threaded runtime (Δ = 5ms)");

    // Part B: sequential command throughput (one in-flight command per
    // proxy — the SMR layer is unpipelined by design; this measures the
    // consensus critical path, not batching tricks).
    let mut part_b = Table::new(&[
        "n",
        "commands",
        "elapsed",
        "commands/sec",
        "paths f/s/gt/eq/l",
        "p50/p99 by path",
    ]);
    for (e, f) in [(1usize, 1usize), (2, 2)] {
        let cfg = SystemConfig::minimal_object(e, f).unwrap();
        let (metrics, obs) = Metrics::shared();
        let cluster: Cluster<KvCommand> = ClusterBuilder::new(cfg)
            .wall_delta(wall_delta)
            .observed(obs.clone())
            .build_smr::<KvCommand, KvStore>()
            .expect("in-memory build cannot fail");
        let k = 40;
        let start = Instant::now();
        for i in 0..k {
            cluster.propose(p(0), KvCommand::put(format!("key{i}"), "v"));
        }
        // Wait until the proxy has applied all k commands: the k-th
        // decide event at p0. Poll via decision latency of others too.
        let deadline = Instant::now() + WallDuration::from_secs(60);
        let mut applied_all = false;
        while Instant::now() < deadline {
            // Proxy decided slot 0 at least; we approximate completion by
            // waiting for every replica to have decided something and
            // then a settle window of a few Δ per command.
            if cluster.await_decisions(cfg.process_ids(), WallDuration::from_millis(50)) {
                applied_all = true;
                break;
            }
        }
        // Allow the remaining commands to drain: conservative settle.
        std::thread::sleep(wall_delta * (6 * k as u32));
        let elapsed = start.elapsed();
        let snap = metrics.snapshot();
        part_b.row(&[
            cfg.n().to_string(),
            k.to_string(),
            format!("{:.1?}", elapsed),
            if applied_all {
                format!("{:.0}", k as f64 / elapsed.as_secs_f64())
            } else {
                "stalled".into()
            },
            fmt_path_counts(&snap),
            fmt_path_latencies(&snap, 1000.0, "ms"),
        ]);
    }
    part_b.print("E10b: sequential KV-SMR throughput (unpipelined, Δ = 5ms)");

    // Part C: message complexity per committed command (deterministic
    // simulator, synchronous rounds).
    let mut part_c = Table::new(&[
        "n",
        "commands",
        "messages sent",
        "messages/command",
        "paths f/s/gt/eq/l",
    ]);
    for (e, f) in [(1usize, 1usize), (2, 2)] {
        let cfg = SystemConfig::minimal_object(e, f).unwrap();
        let k = 5u64;
        let (metrics, obs) = Metrics::shared();
        let mut sim = SimulationBuilder::new(cfg)
            .observed(obs.clone())
            .build(|q| {
                SmrReplicaBuilder::new(cfg, q)
                    .observed(obs.clone())
                    .build::<KvCommand, KvStore>()
            });
        for i in 0..k {
            sim.schedule_propose(
                p(0),
                KvCommand::put(format!("key{i}"), "v"),
                Time::from_units(i * 100),
            );
        }
        let outcome = sim.run_until(Time::ZERO + Duration::deltas(200), |s| {
            (0..cfg.n()).all(|i| s.process(p(i as u32)).applied() >= k)
        });
        let sent = outcome.trace.messages_sent();
        let snap = metrics.snapshot();
        part_c.row(&[
            cfg.n().to_string(),
            k.to_string(),
            sent.to_string(),
            format!("{:.0}", sent as f64 / k as f64),
            fmt_path_counts(&snap),
        ]);
    }
    part_c.print("E10c: message complexity per committed command (includes Ω heartbeats)");
    println!(
        "\npaths column: slot decisions per path (fast/slow/recovery-gt/recovery-eq/learned);\n\
         p50/p99 per path cover each node's first decision, wall-clock since node start."
    );
}
