//! E5 (Figure 2): decision latency (in message delays Δ) versus the
//! number of initial crashes `k`, for each protocol at its own minimal
//! process count for `(e, f) = (2, 2)`.
//!
//! Expected shape: the fast protocols (Fast Paxos, Task, Object,
//! EPaxos-lite) hold 2Δ at the proxy for every `k ≤ e`; Paxos holds 2Δ
//! at its leader only while the leader survives (`k = 0`) and pays a
//! failure-detection timeout plus a full ballot once `p0 ∈ E`.

use twostep_baselines::{EPaxosLite, FastPaxos, Paxos};
use twostep_bench::{fmt_deltas, fmt_path_counts, fmt_path_latencies, Table};
use twostep_core::{ObjectConsensus, TaskConsensus};
use twostep_sim::{RunOutcome, SyncRunner};
use twostep_telemetry::{Metrics, MetricsSnapshot};
use twostep_types::{Duration, ProcessId, ProcessSet, ProtocolKind, SystemConfig, Time, Value};

const E: usize = 2;
const F: usize = 2;

fn crash_set(k: usize) -> ProcessSet {
    (0..k as u32).map(ProcessId::new).collect()
}

struct Measurement {
    proxy_latency: Option<f64>,
    first_latency: Option<f64>,
    agreement: bool,
}

fn measure<V: Value, P>(outcome: &RunOutcome<V, P>, proxy: ProcessId) -> Measurement {
    let first = outcome
        .decisions
        .iter()
        .flatten()
        .map(|(_, t)| t.as_deltas())
        .fold(None, |acc: Option<f64>, t| {
            Some(acc.map_or(t, |a| a.min(t)))
        });
    Measurement {
        proxy_latency: outcome.latency_in_deltas(proxy),
        first_latency: first,
        agreement: outcome.agreement(),
    }
}

fn main() {
    let mut table = Table::new(&[
        "protocol",
        "n",
        "crashes k",
        "proxy latency",
        "first decision",
        "agreement",
        "paths fast/slow/r-gt/r-eq/learned",
        "p50/p99 by path",
    ]);

    for k in 0..=E {
        let crashed = crash_set(k);

        // Paxos at n = 2f+1; proxy = last process (learns via Decide).
        {
            let cfg = SystemConfig::for_protocol(ProtocolKind::Paxos, 2 * F + 1, E, F).unwrap();
            let proxy = ProcessId::new((cfg.n() - 1) as u32);
            let (metrics, obs) = Metrics::shared();
            let outcome = SyncRunner::new(cfg)
                .crashed(crashed)
                .observed(obs.clone())
                .horizon(Duration::deltas(60))
                .run(|q| Paxos::new(cfg, q, 100 + u64::from(q.as_u32())).observed(obs.clone()));
            push(
                &mut table,
                "Paxos",
                cfg.n(),
                k,
                measure(&outcome, proxy),
                &metrics.snapshot(),
            );
        }

        // Fast Paxos at n = 2e+f+1; favored proxy.
        {
            let cfg = SystemConfig::minimal_fast_paxos(E, F).unwrap();
            let proxy = ProcessId::new((cfg.n() - 1) as u32);
            let (metrics, obs) = Metrics::shared();
            let outcome = SyncRunner::new(cfg)
                .crashed(crashed)
                .favoring(proxy)
                .observed(obs.clone())
                .horizon(Duration::deltas(60))
                .run(|q| FastPaxos::new(cfg, q, 100 + u64::from(q.as_u32())).observed(obs.clone()));
            push(
                &mut table,
                "FastPaxos",
                cfg.n(),
                k,
                measure(&outcome, proxy),
                &metrics.snapshot(),
            );
        }

        // Task at n = 2e+f; favored max-value proxy.
        {
            let cfg = SystemConfig::minimal_task(E, F).unwrap();
            let proxy = ProcessId::new((cfg.n() - 1) as u32);
            let (metrics, obs) = Metrics::shared();
            let outcome = SyncRunner::new(cfg)
                .crashed(crashed)
                .favoring(proxy)
                .observed(obs.clone())
                .horizon(Duration::deltas(60))
                .run(|q| {
                    TaskConsensus::new(cfg, q, 100 + u64::from(q.as_u32())).observed(obs.clone())
                });
            push(
                &mut table,
                "TwoStep(task)",
                cfg.n(),
                k,
                measure(&outcome, proxy),
                &metrics.snapshot(),
            );
        }

        // Object at n = 2e+f-1; lone proposer proxy.
        {
            let cfg = SystemConfig::minimal_object(E, F).unwrap();
            let proxy = ProcessId::new((cfg.n() - 1) as u32);
            let (metrics, obs) = Metrics::shared();
            let outcome = SyncRunner::new(cfg)
                .crashed(crashed)
                .observed(obs.clone())
                .horizon(Duration::deltas(60))
                .run_object(
                    |q| ObjectConsensus::<u64>::new(cfg, q).observed(obs.clone()),
                    vec![(proxy, 42, Time::ZERO)],
                );
            push(
                &mut table,
                "TwoStep(object)",
                cfg.n(),
                k,
                measure(&outcome, proxy),
                &metrics.snapshot(),
            );
        }

        // EPaxos-lite at n = 2f+1; lone command leader proxy.
        {
            let cfg = SystemConfig::for_protocol(ProtocolKind::Paxos, 2 * F + 1, E, F).unwrap();
            let proxy = ProcessId::new((cfg.n() - 1) as u32);
            let (metrics, obs) = Metrics::shared();
            let outcome = SyncRunner::new(cfg)
                .crashed(crashed)
                .observed(obs.clone())
                .horizon(Duration::deltas(60))
                .run_object(
                    |q| EPaxosLite::<u64>::new(cfg, q).observed(obs.clone()),
                    vec![(proxy, 42, Time::ZERO)],
                );
            push(
                &mut table,
                "EPaxos-lite",
                cfg.n(),
                k,
                measure(&outcome, proxy),
                &metrics.snapshot(),
            );
        }
    }

    table.print(&format!(
        "E5: proxy decision latency vs initial crashes (e={E}, f={F}; crashes hit p0..p_k-1, \
         including Paxos's leader)"
    ));
    println!(
        "\npaths column: first decisions per process by decision path; \
         p50/p99 per path over all deciders, from the telemetry subsystem."
    );
}

fn push(table: &mut Table, name: &str, n: usize, k: usize, m: Measurement, snap: &MetricsSnapshot) {
    table.row(&[
        name.to_string(),
        n.to_string(),
        k.to_string(),
        fmt_deltas(m.proxy_latency),
        fmt_deltas(m.first_latency),
        if m.agreement {
            "yes".into()
        } else {
            "VIOLATED".to_string()
        },
        fmt_path_counts(snap),
        fmt_path_latencies(snap, 1000.0, "Δ"),
    ]);
}
