//! E8 (Figure 5): recovery correctness and latency.
//!
//! Part A (correctness, Lemma 7 at protocol level): randomized
//! adversarial recoveries — a fast decision lands, its `Decide`
//! broadcasts are suppressed, the winner crashes, and a randomly chosen
//! leader recovers with a randomly chosen `1B` quorum. The recovered
//! value must equal the fast-decided value in *every* scenario.
//!
//! Part B (latency): in timed synchronous runs where the would-be fast
//! winner crashes at the start of round 3 (its supporters' votes are
//! cast but the decision never completes), how long until all correct
//! processes decide via the slow path.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use twostep_bench::{mean, percentile, Table};
use twostep_core::{Msg, OmegaMode, TaskConsensus, TwoStepBuilder};
use twostep_sim::{ManualExecutor, SimulationBuilder};
use twostep_types::protocol::TimerId;
use twostep_types::{Duration, ProcessId, SystemConfig, Time};

const SCENARIOS: u64 = 200;

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// Part A: one randomized recovery scenario; returns whether the
/// recovered value matched the fast decision.
fn randomized_recovery(seed: u64) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    let (e, f) = *[(1usize, 1usize), (1, 2), (2, 2), (2, 3)]
        .choose(&mut rng)
        .expect("nonempty");
    let cfg = SystemConfig::minimal_task(e, f).unwrap();
    let n = cfg.n();

    let winner = p(rng.gen_range(0..n as u32));
    let leader_pool: Vec<u32> = (0..n as u32).filter(|i| p(*i) != winner).collect();
    let leader = p(*leader_pool.choose(&mut rng).expect("n >= 2"));

    let mut ex = ManualExecutor::new(cfg, |q| {
        // The winner proposes the maximum value so everyone can vote it.
        let value = if q == winner {
            1000
        } else {
            u64::from(q.as_u32())
        };
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(leader))
            .task(q, value)
    });
    ex.start_all();

    // A random set of n-e-1 supporters votes for the winner.
    let mut others: Vec<u32> = (0..n as u32).filter(|i| p(*i) != winner).collect();
    others.shuffle(&mut rng);
    let supporters: Vec<ProcessId> = others[..cfg.fast_quorum() - 1]
        .iter()
        .map(|i| p(*i))
        .collect();
    for &s in &supporters {
        for id in ex
            .pending_matching(|m| m.from == winner && m.to == s && matches!(m.msg, Msg::Propose(_)))
        {
            ex.deliver(id);
        }
        for id in
            ex.pending_matching(|m| m.from == s && m.to == winner && matches!(m.msg, Msg::TwoB(..)))
        {
            ex.deliver(id);
        }
    }
    let fast_value = ex.decision_of(winner).copied();
    assert_eq!(
        fast_value,
        Some(1000),
        "seed {seed}: fast path did not complete"
    );

    // Suppress the Decide broadcast entirely; crash the winner.
    for id in ex.pending_matching(|m| matches!(m.msg, Msg::Decide(_))) {
        ex.drop_message(id);
    }
    ex.crash(winner);

    // Recovery over a random quorum of n-f survivors (the leader always
    // participates).
    let mut survivors: Vec<u32> = (0..n as u32)
        .filter(|i| p(*i) != winner && p(*i) != leader)
        .collect();
    survivors.shuffle(&mut rng);
    let mut quorum: Vec<ProcessId> = vec![leader];
    quorum.extend(survivors[..cfg.slow_quorum() - 1].iter().map(|i| p(*i)));

    ex.fire_timer(leader, TimerId::NEW_BALLOT);
    for phase in ["OneA", "OneB", "TwoA", "TwoB"] {
        for &q in &quorum {
            let ids = ex.pending_matching(|m| {
                let kind = twostep_sim::msg_kind(&m.msg);
                kind == phase
                    && ((phase == "OneA" || phase == "TwoA") && m.from == leader && m.to == q
                        || (phase == "OneB" || phase == "TwoB") && m.from == q && m.to == leader)
            });
            for id in ids {
                ex.deliver(id);
            }
        }
    }

    ex.decision_of(leader) == fast_value.as_ref() && ex.agreement()
}

fn main() {
    // Part A.
    let mut preserved = 0usize;
    for seed in 0..SCENARIOS {
        if randomized_recovery(seed) {
            preserved += 1;
        }
    }
    let mut part_a = Table::new(&["scenarios", "fast value preserved", "violations"]);
    part_a.row(&[
        SCENARIOS.to_string(),
        preserved.to_string(),
        (SCENARIOS as usize - preserved).to_string(),
    ]);
    part_a.print("E8a: randomized adversarial recoveries (Lemma 7 at protocol level)");

    // Part B: timed slow-path latency after the winner crashes at 2Δ.
    let mut latencies: Vec<f64> = Vec::new();
    for (e, f) in [(1usize, 1usize), (2, 2), (2, 3)] {
        let cfg = SystemConfig::minimal_task(e, f).unwrap();
        let winner = p((cfg.n() - 1) as u32);
        let sim = SimulationBuilder::new(cfg)
            .delivery_order(twostep_sim::DeliveryOrder::Favor(winner))
            .crash_at(winner, Time::ZERO + Duration::deltas(2)) // before its 2Bs arrive
            .build(|q| TaskConsensus::new(cfg, q, 100 + u64::from(q.as_u32())));
        let outcome = sim.run_until_all_decided(Time::ZERO + Duration::deltas(80));
        let all_done = outcome
            .decisions
            .iter()
            .enumerate()
            .filter(|(i, _)| p(*i as u32) != winner)
            .filter_map(|(_, d)| d.as_ref().map(|(_, t)| t.as_deltas()))
            .fold(0f64, f64::max);
        latencies.push(all_done);
    }
    let mut part_b = Table::new(&["runs", "mean slow-path completion", "p100"]);
    part_b.row(&[
        latencies.len().to_string(),
        format!("{:.1}Δ", mean(&latencies)),
        format!("{:.1}Δ", percentile(&latencies, 1.0)),
    ]);
    part_b.print("E8b: slow-path completion after the fast winner crashes at 2Δ");
    println!(
        "\nReading: recovery re-selects the fast value in 100% of adversarial scenarios;\n\
         when the fast path aborts, the slow path completes within a failure-detection\n\
         sweep plus one ballot (≈ 8-10Δ with the §C.1 timer settings)."
    );
}
