//! E11 (Table 5): the definitional gap that resolves the conundrum.
//!
//! Lamport's fast-consensus definition requires that for every proposer
//! `p` and **every** correct process `q` there is a lone-proposer run in
//! which `q` decides within two message delays. The paper's e-two-step
//! definition only requires the *proxy* (`p` itself) to be fast unless
//! proposals agree. This experiment measures, per protocol at its own
//! minimal `n`, who actually decides by `2Δ` in a lone-proposer run:
//!
//! * Fast Paxos (n = 2e+f+1): acceptors broadcast votes to all learners
//!   — **everyone** decides at 2Δ. It satisfies Lamport's definition,
//!   and pays for it with the extra process.
//! * The object protocol (n = 2e+f-1): fast votes flow only to the
//!   proposer — **only the proxy** decides at 2Δ; the rest learn at 3Δ.
//!   It satisfies Definition A.1 but *not* Lamport's definition — which
//!   is exactly why it can exist below Lamport's bound.

use twostep_baselines::FastPaxos;
use twostep_bench::{fmt_deltas, Table};
use twostep_core::ObjectConsensus;
use twostep_sim::SyncRunner;
use twostep_types::{Duration, ProcessId, SystemConfig, Time};

const E: usize = 2;
const F: usize = 2;

fn main() {
    let mut table = Table::new(&[
        "protocol",
        "n",
        "proposer latency",
        "non-proposer latencies",
        "2Δ-deciders",
        "Lamport-fast run?",
        "A.1(1)-fast run?",
    ]);

    // Object protocol at n = 2e+f-1.
    {
        let cfg = SystemConfig::minimal_object(E, F).unwrap();
        let proposer = ProcessId::new((cfg.n() - 1) as u32);
        let outcome = SyncRunner::new(cfg)
            .horizon(Duration::deltas(10))
            .run_object(
                |q| ObjectConsensus::<u64>::new(cfg, q),
                vec![(proposer, 7, Time::ZERO)],
            );
        push(
            &mut table,
            "TwoStep(object)",
            cfg,
            proposer,
            &outcome.decisions,
        );
    }

    // Fast Paxos at n = 2e+f+1 (lone proposer via passive instances).
    {
        let cfg = SystemConfig::minimal_fast_paxos(E, F).unwrap();
        let proposer = ProcessId::new((cfg.n() - 1) as u32);
        let mut sim =
            twostep_sim::SimulationBuilder::new(cfg).build(|q| FastPaxos::<u64>::passive(cfg, q));
        sim.schedule_propose(proposer, 7, Time::ZERO);
        let outcome = sim.run_until_all_decided(Time::ZERO + Duration::deltas(10));
        push(&mut table, "FastPaxos", cfg, proposer, &outcome.decisions);
    }

    table.print(&format!(
        "E11: who decides by 2Δ in a lone-proposer run (e={E}, f={F}, each protocol at \
         its own minimal n)"
    ));
    println!(
        "\nReading: Fast Paxos is fast *everywhere* (Lamport's definition) and needs\n\
         n = 2e+f+1 = {} processes; the paper's protocol is fast *at the proxy*\n\
         (Definition A.1) and needs only n = 2e+f-1 = {}. The decision a client waits\n\
         for is its proxy's — so in the deployment pattern of §1 the weaker guarantee\n\
         costs nothing and saves two processes. This is the paper's resolution of the\n\
         EPaxos conundrum, measured.",
        SystemConfig::minimal_fast_paxos(E, F).unwrap().n(),
        SystemConfig::minimal_object(E, F).unwrap().n(),
    );
}

fn push(
    table: &mut Table,
    name: &str,
    cfg: SystemConfig,
    proposer: ProcessId,
    decisions: &[Option<(u64, Time)>],
) {
    let deadline = Time::ZERO + Duration::deltas(2);
    let proposer_latency = decisions[proposer.index()]
        .as_ref()
        .map(|(_, t)| t.as_deltas());
    let mut others: Vec<String> = Vec::new();
    let mut fast = 0usize;
    for (i, d) in decisions.iter().enumerate() {
        if let Some((_, t)) = d {
            if *t <= deadline {
                fast += 1;
            }
            if i != proposer.index() {
                others.push(format!("{:.0}Δ", t.as_deltas()));
            }
        } else if i != proposer.index() {
            others.push("-".into());
        }
    }
    let lamport_fast = fast == decisions.len();
    let a11_fast = proposer_latency.is_some_and(|l| l <= 2.0);
    table.row(&[
        name.to_string(),
        cfg.n().to_string(),
        fmt_deltas(proposer_latency),
        others.join(","),
        format!("{fast}/{}", decisions.len()),
        if lamport_fast {
            "yes".into()
        } else {
            "NO".to_string()
        },
        if a11_fast {
            "yes".into()
        } else {
            "NO".to_string()
        },
    ]);
}
