//! E14: the price of Byzantium — crash two-step bounds versus the
//! Byzantine fast-path bounds, measured head to head.
//!
//! The paper's crash-model bounds put two-step consensus at
//! `n ≥ max{2e+f, 2f+1}` (task) and `n ≥ max{2e+f−1, 2f+1}` (object).
//! Against *Byzantine* faults the fast path inflates to FaB's
//! `n ≥ 5f+1` — or `5f−1` under the Tight variant's honest-proposer
//! conditioning (arXiv:2102.12825) — because a fast quorum must
//! intersect another in `f+1` honest processes *and* out-count `f`
//! forged echoes. At `e = f` the premium is about `2f` extra processes
//! for the same two-message-delay decision.
//!
//! The experiment runs every bound at its edge, under the faults it is
//! priced for:
//!
//! * crash task/object at their minima, with 0 and `e` crashes — the
//!   fast path holds 2Δ through crashes;
//! * FastBft at `n = 5f+1` / `5f−1` with `f` seeded *equivocators*
//!   (`twostep-byz` injection, coordinator honest) — the fast path
//!   still decides in 2Δ because honest echoes alone fill the quorum;
//! * FastBft one process below its bound with `f` faults — the fast
//!   quorum no longer fits in the honest population, every decision
//!   falls through to recovery, and the measured latency shows what the
//!   missing process buys.
//!
//! Outputs:
//! * stdout — the comparison table,
//! * `results/e14_byzantine_bounds.txt` — the same table,
//! * `BENCH_e14.json` — machine-readable rows for CI schema checks.
//!
//! Flags: `--smoke` (f = 1 only, CI-sized), `--max-f <N>` (sweep cap,
//! default 2).

use twostep_baselines::FastBft;
use twostep_bench::{fmt_deltas, Table};
use twostep_byz::{ByzBehavior, ByzPlan};
use twostep_core::{ObjectConsensus, TaskConsensus};
use twostep_sim::SyncRunner;
use twostep_types::{ByzConfig, ByzVariant, Duration, ProcessId, ProcessSet, SystemConfig, Time};

const HORIZON_DELTAS: u64 = 100;
const SEED: u64 = 42;

struct Row {
    scenario: &'static str,
    protocol: String,
    n: usize,
    f: usize,
    faults: String,
    fast_deciders: usize,
    first_decision: Option<f64>,
    last_decision: Option<f64>,
    all_honest_decided: bool,
    agreement: bool,
}

/// Collapses a run into a row, judging only the `honest` processes
/// (crashed processes are not honest; Byzantine victims' claims are
/// not evidence).
fn assess(
    scenario: &'static str,
    protocol: String,
    n: usize,
    f: usize,
    faults: String,
    fast: usize,
    observed: &[(Option<f64>, Option<u64>)],
) -> Row {
    let decided: Vec<f64> = observed.iter().filter_map(|(t, _)| *t).collect();
    let firsts: Vec<u64> = observed.iter().filter_map(|(_, v)| *v).collect();
    Row {
        scenario,
        protocol,
        n,
        f,
        faults,
        fast_deciders: fast,
        first_decision: decided
            .iter()
            .copied()
            .fold(None, |a: Option<f64>, t| Some(a.map_or(t, |x| x.min(t)))),
        last_decision: if decided.len() == observed.len() {
            decided
                .iter()
                .copied()
                .fold(None, |a: Option<f64>, t| Some(a.map_or(t, |x| x.max(t))))
        } else {
            None
        },
        all_honest_decided: decided.len() == observed.len(),
        agreement: firsts.windows(2).all(|w| w[0] == w[1]),
    }
}

/// Runs FastBft under `plan`, with `crashed` processes down, and
/// assesses the processes that are neither crashed nor Byzantine.
fn run_fab(
    scenario: &'static str,
    byz: ByzConfig,
    plan: &ByzPlan,
    crashed: ProcessSet,
    faults: String,
) -> Row {
    let sim = SystemConfig::new(byz.n(), byz.f(), byz.f()).expect("n >= 3f+1 is a valid config");
    let outcome = SyncRunner::new(sim)
        .crashed(crashed)
        .horizon(Duration::deltas(HORIZON_DELTAS))
        .run(|q| plan.wrap(FastBft::new(byz, q, 100 + u64::from(q.as_u32()))));
    let honest: Vec<ProcessId> = (0..byz.n() as u32)
        .map(ProcessId::new)
        .filter(|p| plan.behavior_of(*p).is_honest() && !crashed.contains(*p))
        .collect();
    let (fast, _) = outcome.fast_deciders();
    let fast_honest = honest.iter().filter(|p| fast.contains(**p)).count();
    let observed: Vec<_> = honest
        .iter()
        .map(|p| {
            (
                outcome.latency_in_deltas(*p),
                outcome.decision_of(*p).copied(),
            )
        })
        .collect();
    assess(
        scenario,
        byz.variant().name().to_string(),
        byz.n(),
        byz.f(),
        faults,
        fast_honest,
        &observed,
    )
}

/// The crash-model rows: task and object two-step at their minima,
/// with `k` initial crashes hitting the lowest ids (as in E5), the
/// favored max-value proposer being the last process.
fn crash_rows(f: usize, k: usize, rows: &mut Vec<Row>) {
    let down: ProcessSet = (0..k as u32).map(ProcessId::new).collect();
    {
        let cfg = SystemConfig::minimal_task(f, f).expect("minimal task configuration");
        let proxy = ProcessId::new((cfg.n() - 1) as u32);
        let outcome = SyncRunner::new(cfg)
            .crashed(down)
            .favoring(proxy)
            .horizon(Duration::deltas(HORIZON_DELTAS))
            .run(|q| TaskConsensus::new(cfg, q, 100 + u64::from(q.as_u32())));
        let alive: Vec<ProcessId> = (0..cfg.n() as u32)
            .map(ProcessId::new)
            .filter(|p| !down.contains(*p))
            .collect();
        let (fast, _) = outcome.fast_deciders();
        let observed: Vec<_> = alive
            .iter()
            .map(|p| {
                (
                    outcome.latency_in_deltas(*p),
                    outcome.decision_of(*p).copied(),
                )
            })
            .collect();
        rows.push(assess(
            "crash bound 2e+f",
            "TwoStep(task)".into(),
            cfg.n(),
            f,
            format!("{k} crashes"),
            alive.iter().filter(|p| fast.contains(**p)).count(),
            &observed,
        ));
    }
    {
        let cfg = SystemConfig::minimal_object(f, f).expect("minimal object configuration");
        let proposer = ProcessId::new((cfg.n() - 1) as u32);
        let outcome = SyncRunner::new(cfg)
            .crashed(down)
            .horizon(Duration::deltas(HORIZON_DELTAS))
            .run_object(
                |q| ObjectConsensus::<u64>::new(cfg, q),
                vec![(proposer, 142, Time::ZERO)],
            );
        let alive: Vec<ProcessId> = (0..cfg.n() as u32)
            .map(ProcessId::new)
            .filter(|p| !down.contains(*p))
            .collect();
        let (fast, _) = outcome.fast_deciders();
        let observed: Vec<_> = alive
            .iter()
            .map(|p| {
                (
                    outcome.latency_in_deltas(*p),
                    outcome.decision_of(*p).copied(),
                )
            })
            .collect();
        rows.push(assess(
            "crash bound 2e+f-1",
            "TwoStep(object)".into(),
            cfg.n(),
            f,
            format!("{k} crashes"),
            alive.iter().filter(|p| fast.contains(**p)).count(),
            &observed,
        ));
    }
}

/// The Byzantine rows for one variant at one `f`: at the bound with
/// `f` equivocators, and one process below it with `f` crashes.
fn byz_rows(variant: ByzVariant, f: usize, rows: &mut Vec<Row>) {
    let at_bound = match ByzConfig::minimal_fast(variant, f) {
        Ok(byz) => byz,
        Err(_) => return,
    };
    // Victims are the top ids: never the ballot-0 coordinator p0 (the
    // unsigned-BFT caveat — a Byzantine coordinator needs signatures to
    // defend against, not quorums).
    let mut plan = ByzPlan::honest(SEED);
    for i in 0..f {
        plan = plan.with(
            ProcessId::new((at_bound.n() - 1 - i) as u32),
            ByzBehavior::Equivocate,
        );
    }
    rows.push(run_fab(
        "byz bound, equivocation",
        at_bound,
        &plan,
        ProcessSet::new(),
        format!("{f} equivocators"),
    ));

    if let Ok(below) = ByzConfig::new(at_bound.n() - 1, f, variant) {
        let crashed: ProcessSet = (0..f)
            .map(|i| ProcessId::new((below.n() - 1 - i) as u32))
            .collect();
        rows.push(run_fab(
            "one below byz bound",
            below,
            &ByzPlan::honest(SEED),
            crashed,
            format!("{f} crashes"),
        ));
    }
}

fn json_report(rows: &[Row]) -> String {
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let fmt_opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.1}"));
        body.push_str(&format!(
            "\n    {{\"scenario\": \"{}\", \"protocol\": \"{}\", \"n\": {}, \"f\": {}, \
             \"faults\": \"{}\", \"fast_deciders\": {}, \"first_decision_deltas\": {}, \
             \"last_decision_deltas\": {}, \"all_honest_decided\": {}, \"agreement\": {}}}",
            r.scenario,
            r.protocol,
            r.n,
            r.f,
            r.faults,
            r.fast_deciders,
            fmt_opt(r.first_decision),
            fmt_opt(r.last_decision),
            r.all_honest_decided,
            r.agreement,
        ));
    }
    format!(
        "{{\n  \"experiment\": \"e14_byzantine_bounds\",\n  \
         \"config\": {{\"seed\": {SEED}, \"horizon_deltas\": {HORIZON_DELTAS}}},\n  \
         \"rows\": [{body}\n  ]\n}}\n"
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let max_f = args
        .iter()
        .position(|a| a == "--max-f")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(if smoke { 1 } else { 2 });

    let mut rows: Vec<Row> = Vec::new();
    for f in 1..=max_f {
        crash_rows(f, 0, &mut rows);
        crash_rows(f, f, &mut rows);
        byz_rows(ByzVariant::Fab, f, &mut rows);
        byz_rows(ByzVariant::Tight, f, &mut rows);
    }

    let mut table = Table::new(&[
        "scenario",
        "protocol",
        "n",
        "f",
        "faults",
        "fast deciders",
        "first decision",
        "last decision",
        "all honest decided",
        "agreement",
    ]);
    for r in &rows {
        table.row(&[
            r.scenario.to_string(),
            r.protocol.clone(),
            r.n.to_string(),
            r.f.to_string(),
            r.faults.clone(),
            r.fast_deciders.to_string(),
            fmt_deltas(r.first_decision),
            fmt_deltas(r.last_decision),
            if r.all_honest_decided { "yes" } else { "no" }.into(),
            if r.agreement { "yes" } else { "VIOLATED" }.into(),
        ]);
    }

    let title = format!(
        "E14: crash vs Byzantine fast-path bounds (crash minima at e = f; \
         FaB 5f+1 and Tight 5f-1 at and one below their bounds; seed {SEED}, \
         horizon {HORIZON_DELTAS}Δ)"
    );
    table.print(&title);
    println!(
        "\nthe crash fast path costs max{{2e+f, 2f+1}} processes; the Byzantine\n\
         one costs 5f+1 (or 5f-1 conditioned on an honest proposer) — about 2f\n\
         more, because fast quorums must out-count forged echoes as well as\n\
         intersect. one process below the bound the fast path goes vacant and\n\
         every decision pays the recovery latency instead of 2Δ."
    );

    let _ = std::fs::create_dir_all("results");
    let txt = format!("{title}\n\n{}", table.render());
    if let Err(e) = std::fs::write("results/e14_byzantine_bounds.txt", txt) {
        eprintln!("warning: could not write results/e14_byzantine_bounds.txt: {e}");
    }
    if let Err(e) = std::fs::write("BENCH_e14.json", json_report(&rows)) {
        eprintln!("warning: could not write BENCH_e14.json: {e}");
    }
}
