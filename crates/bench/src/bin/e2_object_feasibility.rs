//! E2 (Table 2): Theorem 6 "if" — the object protocol is f-resilient
//! and e-two-step at exactly `n = max{2e+f-1, 2f+1}` (one process fewer
//! than the task bound), per Definition A.1.

use twostep_bench::Table;
use twostep_core::ObjectConsensus;
use twostep_sim::SyncRunner;
use twostep_types::{Duration, SystemConfig, Time};

fn main() {
    let grid = [(1usize, 1usize), (1, 2), (2, 2), (2, 3), (3, 3), (3, 4)];
    let mut table = Table::new(&[
        "e",
        "f",
        "n=max{2e+f-1,2f+1}",
        "task needs",
        "FastPaxos needs",
        "|E| sets",
        "A.1(1) lone proposer",
        "A.1(2) unanimous",
        "agreement",
    ]);

    for (e, f) in grid {
        let cfg = SystemConfig::minimal_object(e, f).expect("valid grid point");
        let mut sets = 0usize;
        let mut a11 = true;
        let mut a12 = true;
        let mut agreement = true;

        for crashed in cfg.failure_sets() {
            sets += 1;
            let correct = cfg.all_processes().difference(crashed);

            // A.1(1): only p proposes; p decides by 2Δ.
            for proposer in correct.iter() {
                let outcome = SyncRunner::new(cfg)
                    .crashed(crashed)
                    .horizon(Duration::deltas(60))
                    .run_object(
                        |q| ObjectConsensus::<u64>::new(cfg, q),
                        vec![(proposer, 42, Time::ZERO)],
                    );
                let (fast, v) = outcome.fast_deciders();
                a11 &= fast.contains(proposer) && v == Some(42);
                agreement &= outcome.agreement();
            }

            // A.1(2): all correct propose the same value at round start;
            // each correct process has a run two-step for it.
            for witness in correct.iter() {
                let proposals: Vec<_> = correct.iter().map(|q| (q, 7u64, Time::ZERO)).collect();
                let outcome = SyncRunner::new(cfg)
                    .crashed(crashed)
                    .favoring(witness)
                    .horizon(Duration::deltas(60))
                    .run_object(|q| ObjectConsensus::<u64>::new(cfg, q), proposals);
                let (fast, v) = outcome.fast_deciders();
                a12 &= fast.contains(witness) && v == Some(7);
                agreement &= outcome.agreement();
            }
        }

        table.row(&[
            e.to_string(),
            f.to_string(),
            cfg.n().to_string(),
            SystemConfig::minimal_task(e, f).unwrap().n().to_string(),
            SystemConfig::minimal_fast_paxos(e, f)
                .unwrap()
                .n()
                .to_string(),
            sets.to_string(),
            pass(a11),
            pass(a12),
            pass(agreement),
        ]);
    }

    table.print("E2: object protocol at the Theorem 6 bound (Definition A.1, all failure sets)");
}

fn pass(ok: bool) -> String {
    if ok {
        "yes".into()
    } else {
        "VIOLATED".into()
    }
}
