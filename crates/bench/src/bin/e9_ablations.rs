//! E9 (Table 4): ablations — each ingredient of the recovery rule is
//! necessary at the paper's minimal process counts.
//!
//! | ingredient | where | broken by |
//! |---|---|---|
//! | max-value tie-break | Figure 1 line 58 | picking the min instead |
//! | proposer-exclusion set R | line 47 | counting all votes in Q |
//! | object red line | line 10 | accepting conflicting proposals |
//!
//! For each ablation the same adversarial schedule is run against the
//! correct protocol (expected: agreement intact) and the ablated one
//! (expected: agreement VIOLATED).

use twostep_bench::Table;
use twostep_core::Ablations;
use twostep_verify::{object_exclusion_demo, object_guard_demo, task_at_bound_with};

fn main() {
    let mut table = Table::new(&[
        "ablation",
        "bound under test",
        "e",
        "f",
        "n",
        "correct protocol",
        "ablated protocol",
    ]);

    for (e, f) in [(2usize, 2usize), (3, 3), (3, 4)] {
        let correct = task_at_bound_with(e, f, Ablations::NONE);
        let ablated = task_at_bound_with(
            e,
            f,
            Ablations {
                no_max_tiebreak: true,
                ..Ablations::NONE
            },
        );
        table.row(&[
            "no max tie-break (line 58)".to_string(),
            "task n=2e+f".to_string(),
            e.to_string(),
            f.to_string(),
            correct.cfg.n().to_string(),
            verdict(correct.agreement_violated),
            verdict(ablated.agreement_violated),
        ]);
    }

    for (e, f) in [(2usize, 2usize), (3, 3), (3, 4)] {
        let correct = object_exclusion_demo(e, f, Ablations::NONE);
        let ablated = object_exclusion_demo(
            e,
            f,
            Ablations {
                no_proposer_exclusion: true,
                ..Ablations::NONE
            },
        );
        table.row(&[
            "no proposer exclusion (line 47)".to_string(),
            "object n=2e+f-1".to_string(),
            e.to_string(),
            f.to_string(),
            correct.cfg.n().to_string(),
            verdict(correct.agreement_violated),
            verdict(ablated.agreement_violated),
        ]);
    }

    for (e, f) in [(2usize, 2usize), (3, 3), (3, 4)] {
        let correct = object_guard_demo(e, f, Ablations::NONE);
        let ablated = object_guard_demo(
            e,
            f,
            Ablations {
                no_object_guard: true,
                ..Ablations::NONE
            },
        );
        table.row(&[
            "no red-line guard (line 10)".to_string(),
            "object n=2e+f-1".to_string(),
            e.to_string(),
            f.to_string(),
            correct.cfg.n().to_string(),
            verdict(correct.agreement_violated),
            verdict(ablated.agreement_violated),
        ]);
    }

    table.print("E9: each recovery-rule ingredient is necessary at the bound");
    println!(
        "\nExpected shape: every 'correct protocol' cell intact, every 'ablated protocol'\n\
         cell VIOLATED — removing any single ingredient re-opens the safety hole that the\n\
         respective lower bound says must exist with fewer processes."
    );
}

fn verdict(violated: bool) -> String {
    if violated {
        "VIOLATED".into()
    } else {
        "intact".into()
    }
}
