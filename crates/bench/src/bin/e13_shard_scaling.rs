//! E13: shard-scaling throughput of the partitioned KV store.
//!
//! A fixed population of closed-loop clients drives a sharded KV-SMR
//! cluster (on any of the three transport backends, default in-memory)
//! while the sweep varies the shard count. Each shard is
//! an independent consensus group with its own leader (round-robin
//! across the nodes), its own log, and its own batching/pipelining
//! budget, so aggregate in-flight capacity — and with it closed-loop
//! throughput — grows with the shard count until the clients or the
//! machine saturate. The per-instance step bounds are untouched: a
//! sharded deployment is just many two-step instances side by side, and
//! each key still pays exactly one group's fast path.
//!
//! The links carry an emulated one-way latency
//! ([`ClusterBuilder::link_delay`]): with instant in-memory links a
//! single group is CPU-bound and sharding has no latency to hide, which
//! measures the host scheduler rather than the protocol. Under a
//! wall-clock link latency the cluster behaves like a LAN deployment —
//! a group's throughput is capped at its in-flight budget per
//! round-trip, and shards multiply that budget.
//!
//! Outputs:
//! * stdout — the sweep table and the per-shard balance rollup,
//! * `results/e13_shard_scaling.txt` — the same table,
//! * `BENCH_e13.json` — machine-readable sweep for CI schema checks.
//!
//! Flags: `--smoke` (sub-second windows, CI-sized), `--secs <f64>`
//! (measurement window per configuration), `--backend
//! {memory|tcp|reactor}` (transport the cluster deploys on; the
//! emulated link latency applies to every backend, so the sweep
//! compares transport overheads at identical network conditions).

use std::time::{Duration as WallDuration, Instant};

use twostep_bench::{percentile, Backend, Table};
use twostep_runtime::ClusterBuilder;
use twostep_smr::{KvCommand, KvStore};
use twostep_telemetry::ShardedMetrics;
use twostep_types::SystemConfig;

/// The shard counts swept at a fixed client count.
const SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Point {
    shards: usize,
    commands: u64,
    commands_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    speedup: f64,
    busiest_share: f64,
}

/// The knobs held fixed across the sweep; only the shard count varies.
#[derive(Clone, Copy)]
struct Workload {
    cfg: SystemConfig,
    wall_delta: WallDuration,
    link_delay: WallDuration,
    batch: usize,
    depth: usize,
    clients: usize,
    secs: f64,
    backend: Backend,
}

/// Runs the fixed closed-loop client population against a `shards`-way
/// cluster; returns (committed commands, elapsed seconds, per-command
/// latencies in µs, busiest shard's share of decisions).
fn run_config(w: &Workload, shards: usize) -> (u64, f64, Vec<f64>, f64) {
    let metrics = ShardedMetrics::new(shards);
    let builder = ClusterBuilder::new(w.cfg)
        .shards(shards)
        .shard_observers(metrics.handles())
        .wall_delta(w.wall_delta)
        .link_delay(w.link_delay)
        .batch(w.batch)
        .pipeline(w.depth);
    let cluster = w
        .backend
        .apply(builder)
        .build_sharded_smr::<KvCommand, KvStore>()
        .expect("cluster build failed");
    let window = WallDuration::from_secs_f64(w.secs);

    let start = Instant::now();
    let handles: Vec<_> = (0..w.clients)
        .map(|cid| {
            // Leader-routed: each command is submitted at the node
            // leading its key's shard, so load spreads by the router.
            let client = cluster.client();
            std::thread::spawn(move || {
                let deadline = Instant::now() + window;
                let mut latencies = Vec::new();
                let mut seq = 0u64;
                while Instant::now() < deadline {
                    // Unique per client+sequence so submit_and_wait
                    // matches exactly this command's commit; the hash of
                    // the key picks the shard.
                    let cmd = KvCommand::put(format!("c{cid}-{seq}"), "v");
                    seq += 1;
                    match client.submit_and_wait(cmd, WallDuration::from_secs(10)) {
                        Some(latency) => latencies.push(latency.as_micros() as f64),
                        None => break,
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread panicked"));
    }
    let elapsed = start.elapsed().as_secs_f64();

    let per_shard: Vec<u64> = metrics
        .snapshot()
        .iter()
        .map(|s| s.total_decisions())
        .collect();
    let total: u64 = per_shard.iter().sum();
    let busiest_share = if total > 0 {
        *per_shard.iter().max().unwrap() as f64 / total as f64
    } else {
        0.0
    };
    (latencies.len() as u64, elapsed, latencies, busiest_share)
}

fn json_report(w: &Workload, points: &[Point]) -> String {
    let mut sweep = String::new();
    for (i, pt) in points.iter().enumerate() {
        if i > 0 {
            sweep.push(',');
        }
        sweep.push_str(&format!(
            "\n    {{\"shards\": {}, \"commands\": {}, \"commands_per_sec\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"speedup\": {:.2}, \
             \"busiest_shard_share\": {:.3}}}",
            pt.shards,
            pt.commands,
            pt.commands_per_sec,
            pt.p50_us,
            pt.p99_us,
            pt.speedup,
            pt.busiest_share
        ));
    }
    format!(
        "{{\n  \"experiment\": \"e13_shard_scaling\",\n  \
         \"config\": {{\"n\": 3, \"backend\": \"{}\", \"clients\": {}, \"secs_per_point\": {}, \
         \"wall_delta_ms\": {}, \"link_delay_ms\": {}, \"batch\": {}, \"depth\": {}}},\n  \
         \"sweep\": [{}\n  ]\n}}\n",
        w.backend.label(),
        w.clients,
        w.secs,
        w.wall_delta.as_millis(),
        w.link_delay.as_millis(),
        w.batch,
        w.depth,
        sweep
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let secs = args
        .iter()
        .position(|a| a == "--secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(if smoke { 0.4 } else { 3.0 });
    let backend = Backend::from_args(&args);
    // Enough clients to saturate the widest configuration: with batch 4
    // × depth 2 per group, 8 shards can hold 64 commands in flight.
    // Keeping batch/depth fixed across the sweep isolates the sharding
    // effect: under the emulated 2ms one-way link latency a group can
    // commit at most batch × depth commands per ~4ms round-trip, so the
    // 1-shard run is capacity-bound and each doubling of the shard
    // count doubles the aggregate in-flight budget.
    let w = Workload {
        cfg: SystemConfig::minimal_object(1, 1).unwrap(),
        wall_delta: WallDuration::from_millis(10),
        link_delay: WallDuration::from_millis(2),
        batch: 4,
        depth: 2,
        clients: 64,
        secs,
        backend,
    };

    let mut table = Table::new(&[
        "shards",
        "commands",
        "commands/sec",
        "p50 amortized",
        "p99 amortized",
        "speedup vs 1 shard",
        "busiest shard",
    ]);
    let mut points: Vec<Point> = Vec::new();
    for shards in SWEEP {
        let (commands, elapsed, latencies, busiest_share) = run_config(&w, shards);
        let commands_per_sec = if elapsed > 0.0 {
            commands as f64 / elapsed
        } else {
            0.0
        };
        let baseline = points
            .first()
            .map_or(commands_per_sec, |p| p.commands_per_sec);
        let speedup = if baseline > 0.0 {
            commands_per_sec / baseline
        } else {
            0.0
        };
        let pt = Point {
            shards,
            commands,
            commands_per_sec,
            p50_us: percentile(&latencies, 0.50),
            p99_us: percentile(&latencies, 0.99),
            speedup,
            busiest_share,
        };
        table.row(&[
            pt.shards.to_string(),
            pt.commands.to_string(),
            format!("{:.0}", pt.commands_per_sec),
            format!("{:.1} ms", pt.p50_us / 1000.0),
            format!("{:.1} ms", pt.p99_us / 1000.0),
            format!("{:.2}x", pt.speedup),
            format!("{:.0}%", pt.busiest_share * 100.0),
        ]);
        points.push(pt);
    }

    let title = format!(
        "E13: shard-scaling throughput of the partitioned KV store \
         ({} clients, leader-routed, {} transport with {:?} one-way links, \
         batch {} x depth {} per group, Δ = {:?}, {}s per point)",
        w.clients,
        w.backend.label(),
        w.link_delay,
        w.batch,
        w.depth,
        w.wall_delta,
        w.secs
    );
    table.print(&title);
    println!(
        "\nsharding multiplies independent consensus groups, not quorums: each\n\
         group keeps the paper's per-instance step bounds and 2e+f economics,\n\
         and each key still pays exactly one group's fast path."
    );

    let _ = std::fs::create_dir_all("results");
    let txt = format!("{title}\n\n{}", table.render());
    if let Err(e) = std::fs::write("results/e13_shard_scaling.txt", txt) {
        eprintln!("warning: could not write results/e13_shard_scaling.txt: {e}");
    }
    let json = json_report(&w, &points);
    if let Err(e) = std::fs::write("BENCH_e13.json", json) {
        eprintln!("warning: could not write BENCH_e13.json: {e}");
    }
}
