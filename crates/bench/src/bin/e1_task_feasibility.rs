//! E1 (Table 1): Theorem 5 "if" — the task protocol is f-resilient and
//! e-two-step at exactly `n = max{2e+f, 2f+1}`.
//!
//! For every `(e, f)` in the grid and *every* failure set `E` of size
//! `e`, the binary verifies both clauses of Definition 4 in E-faulty
//! synchronous runs, plus Agreement/Validity/Termination over the full
//! runs.

use twostep_bench::Table;
use twostep_core::TaskConsensus;
use twostep_sim::SyncRunner;
use twostep_types::{Duration, ProcessId, ProcessSet, SystemConfig};

fn max_correct(props: &[u64], crashed: ProcessSet) -> ProcessId {
    (0..props.len() as u32)
        .map(ProcessId::new)
        .filter(|q| !crashed.contains(*q))
        .max_by_key(|q| props[q.index()])
        .expect("some process is correct")
}

fn main() {
    let grid = [
        (1usize, 1usize),
        (1, 2),
        (2, 2),
        (1, 3),
        (2, 3),
        (3, 3),
        (2, 4),
    ];
    let mut table = Table::new(&[
        "e",
        "f",
        "n=max{2e+f,2f+1}",
        "|E| sets",
        "Def4(1) two-step",
        "Def4(2) two-step",
        "agreement",
        "termination",
    ]);

    for (e, f) in grid {
        let cfg = SystemConfig::minimal_task(e, f).expect("valid grid point");
        let props: Vec<u64> = (0..cfg.n() as u64).map(|i| 100 + i).collect();
        let mut sets = 0usize;
        let mut d41 = true;
        let mut d42 = true;
        let mut agreement = true;
        let mut termination = true;

        for crashed in cfg.failure_sets() {
            sets += 1;
            // Definition 4(1): distinct proposals, some process two-step.
            let witness = max_correct(&props, crashed);
            let outcome = SyncRunner::new(cfg)
                .crashed(crashed)
                .favoring(witness)
                .horizon(Duration::deltas(60))
                .run(|q| TaskConsensus::new(cfg, q, props[q.index()]));
            let (fast, _) = outcome.fast_deciders();
            d41 &= fast.contains(witness);
            agreement &= outcome.agreement();
            termination &= outcome.all_correct_decided();

            // Definition 4(2): unanimous proposals, every correct process
            // two-step in its own witness run.
            for w in cfg.all_processes().difference(crashed).iter() {
                let outcome = SyncRunner::new(cfg)
                    .crashed(crashed)
                    .favoring(w)
                    .horizon(Duration::deltas(60))
                    .run(|q| TaskConsensus::new(cfg, q, 7u64));
                let (fast, v) = outcome.fast_deciders();
                d42 &= fast.contains(w) && v == Some(7);
                agreement &= outcome.agreement();
            }
        }

        table.row(&[
            e.to_string(),
            f.to_string(),
            cfg.n().to_string(),
            sets.to_string(),
            pass(d41),
            pass(d42),
            pass(agreement),
            pass(termination),
        ]);
    }

    table.print("E1: task protocol at the Theorem 5 bound (Definition 4, all failure sets)");
}

fn pass(ok: bool) -> String {
    if ok {
        "yes".into()
    } else {
        "VIOLATED".into()
    }
}
