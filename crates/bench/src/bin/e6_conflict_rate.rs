//! E6 (Figure 3): fast-path success and decision latency as proposal
//! contention grows.
//!
//! All `n` processes propose simultaneously; `c` distinct values are
//! spread round-robin over the proposers. Delivery order is randomized
//! per seed. For each protocol we report how often *some* process
//! decided within 2Δ (the paper's Definition 4(1) requires exactly
//! this) and the mean latency of the first decision.
//!
//! Expected shape: with unanimous proposals (`c = 1`) everyone is fast;
//! as `c` grows, the task protocol keeps a single fast winner alive in
//! most schedules (the max-value proposal still gathers votes), while
//! Fast Paxos's leaderless fast round splits and falls back to
//! coordinated recovery, and the object variant's red line deliberately
//! surrenders the fast path under conflict — the price of running with
//! one process fewer.

use twostep_baselines::FastPaxos;
use twostep_bench::{mean, Table};
use twostep_core::{ObjectConsensus, TaskConsensus};
use twostep_sim::{DeliveryOrder, SimulationBuilder, SynchronousRounds};
use twostep_types::{Duration, ProcessId, SystemConfig, Time};

const E: usize = 2;
const F: usize = 2;
const SEEDS: u64 = 30;

struct Series {
    fast_runs: usize,
    latencies: Vec<f64>,
}

fn value_of(i: u32, c: usize) -> u64 {
    100 + u64::from(i) % c as u64
}

fn run_task(c: usize, seed: u64) -> (bool, Option<f64>) {
    let cfg = SystemConfig::minimal_task(E, F).unwrap();
    let outcome = SimulationBuilder::new(cfg)
        .delay_model(SynchronousRounds)
        .delivery_order(DeliveryOrder::randomized(seed))
        .build(|q| TaskConsensus::new(cfg, q, value_of(q.as_u32(), c)))
        .run_until_all_decided(Time::ZERO + Duration::deltas(80));
    summarize(outcome.decisions.iter())
}

fn run_object(c: usize, seed: u64) -> (bool, Option<f64>) {
    let cfg = SystemConfig::minimal_object(E, F).unwrap();
    let mut sim = SimulationBuilder::new(cfg)
        .delay_model(SynchronousRounds)
        .delivery_order(DeliveryOrder::randomized(seed))
        .build(|q| ObjectConsensus::<u64>::new(cfg, q));
    for i in 0..cfg.n() as u32 {
        sim.schedule_propose(ProcessId::new(i), value_of(i, c), Time::ZERO);
    }
    let outcome = sim.run_until_all_decided(Time::ZERO + Duration::deltas(80));
    summarize(outcome.decisions.iter())
}

fn run_fastpaxos(c: usize, seed: u64) -> (bool, Option<f64>) {
    let cfg = SystemConfig::minimal_fast_paxos(E, F).unwrap();
    let outcome = SimulationBuilder::new(cfg)
        .delay_model(SynchronousRounds)
        .delivery_order(DeliveryOrder::randomized(seed))
        .build(|q| FastPaxos::new(cfg, q, value_of(q.as_u32(), c)))
        .run_until_all_decided(Time::ZERO + Duration::deltas(80));
    summarize(outcome.decisions.iter())
}

fn summarize<'a, V: 'a>(
    decisions: impl Iterator<Item = &'a Option<(V, Time)>>,
) -> (bool, Option<f64>) {
    let first = decisions
        .flatten()
        .map(|(_, t)| t.as_deltas())
        .fold(None, |acc: Option<f64>, t| {
            Some(acc.map_or(t, |a| a.min(t)))
        });
    (first.is_some_and(|t| t <= 2.0), first)
}

fn main() {
    let mut table = Table::new(&[
        "protocol",
        "n",
        "distinct values c",
        "fast-path runs",
        "mean first-decision",
    ]);

    for c in [1usize, 2, 3, 6] {
        for (name, n, runner) in [
            (
                "TwoStep(task)",
                SystemConfig::minimal_task(E, F).unwrap().n(),
                run_task as fn(usize, u64) -> (bool, Option<f64>),
            ),
            (
                "TwoStep(object)",
                SystemConfig::minimal_object(E, F).unwrap().n(),
                run_object,
            ),
            (
                "FastPaxos",
                SystemConfig::minimal_fast_paxos(E, F).unwrap().n(),
                run_fastpaxos,
            ),
        ] {
            let mut series = Series {
                fast_runs: 0,
                latencies: Vec::new(),
            };
            for seed in 0..SEEDS {
                let (fast, latency) = runner(c, seed);
                series.fast_runs += usize::from(fast);
                if let Some(l) = latency {
                    series.latencies.push(l);
                }
            }
            table.row(&[
                name.to_string(),
                n.to_string(),
                c.to_string(),
                format!("{}/{}", series.fast_runs, SEEDS),
                format!("{:.2}Δ", mean(&series.latencies)),
            ]);
        }
    }

    table.print(&format!(
        "E6: contention vs fast path (e={E}, f={F}; all n processes propose, {SEEDS} random \
         schedules per point)"
    ));
    println!(
        "\nReading: these are *random* schedules, not the witness runs of Definitions 4/A.1\n\
         (those always exist — see E1/E2). A fast decision needs n-e-1 same-target votes,\n\
         so smaller deployments concentrate votes more easily: the object protocol (n=5)\n\
         out-fasts the task protocol (n=6) at low contention, until its red line\n\
         deliberately surrenders the fast path once proposals conflict (c ≥ 3) — the\n\
         price of running with max{{2e+f-1, 2f+1}} processes. Fast Paxos keeps a fast\n\
         path under mild conflict but needs n=7 to do so. When the fast path misses,\n\
         everyone falls back to the ~4-6Δ slow ballot."
    );
}
