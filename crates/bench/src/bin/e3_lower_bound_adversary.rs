//! E3 (Table 3): Theorems 5/6 "only if" — the mechanized lower-bound
//! adversary (§B.1, §B.2 splices) drives the protocol into a concrete
//! agreement violation one process below each bound, and fails at the
//! bound.

use twostep_bench::Table;
use twostep_verify::{
    fast_paxos_at_bound, fast_paxos_below_bound, object_adversary_grid, object_at_bound,
    object_below_bound, task_adversary_grid, task_at_bound, task_below_bound,
};

fn main() {
    let mut table = Table::new(&[
        "variant",
        "e",
        "f",
        "n",
        "vs bound",
        "fast decision",
        "recovery decision",
        "agreement",
    ]);

    for (e, f) in task_adversary_grid(4) {
        for (label, report) in [
            ("n=2e+f-1 (below)", task_below_bound(e, f)),
            ("n=2e+f   (at)", task_at_bound(e, f)),
        ] {
            let fast = report.decisions.first().map(|(p, v)| format!("{p}:{v}"));
            let last = report.decisions.last().map(|(p, v)| format!("{p}:{v}"));
            table.row(&[
                "task".to_string(),
                e.to_string(),
                f.to_string(),
                report.cfg.n().to_string(),
                label.to_string(),
                fast.unwrap_or_else(|| "-".into()),
                last.unwrap_or_else(|| "-".into()),
                verdict(report.agreement_violated),
            ]);
        }
    }

    for (e, f) in object_adversary_grid(5) {
        for (label, report) in [
            ("n=2e+f-2 (below)", object_below_bound(e, f)),
            ("n=2e+f-1 (at)", object_at_bound(e, f)),
        ] {
            let fast = report.decisions.first().map(|(p, v)| format!("{p}:{v}"));
            let last = report.decisions.last().map(|(p, v)| format!("{p}:{v}"));
            table.row(&[
                "object".to_string(),
                e.to_string(),
                f.to_string(),
                report.cfg.n().to_string(),
                label.to_string(),
                fast.unwrap_or_else(|| "-".into()),
                last.unwrap_or_else(|| "-".into()),
                verdict(report.agreement_violated),
            ]);
        }
    }

    // Bonus: the same tightness statement for the baseline — Lamport's
    // 2e+f+1 is exactly what Fast Paxos's O4 rule needs.
    for (e, f) in [(1usize, 1usize), (2, 2), (2, 3), (3, 3)] {
        for (label, report) in [
            ("n=2e+f   (below)", fast_paxos_below_bound(e, f)),
            ("n=2e+f+1 (at)", fast_paxos_at_bound(e, f)),
        ] {
            let fast = report.decisions.first().map(|(p, v)| format!("{p}:{v}"));
            let last = report.decisions.last().map(|(p, v)| format!("{p}:{v}"));
            table.row(&[
                "fastpaxos".to_string(),
                e.to_string(),
                f.to_string(),
                report.cfg.n().to_string(),
                label.to_string(),
                fast.unwrap_or_else(|| "-".into()),
                last.unwrap_or_else(|| "-".into()),
                verdict(report.agreement_violated),
            ]);
        }
    }

    table.print("E3: lower-bound splices (§B.1/§B.2) against the real protocol");
    println!(
        "\nExpected shape: every 'below' row VIOLATED (two different values decided),\n\
         every 'at' row intact — the proposer-exclusion/tie-break recovery rule is\n\
         exactly strong enough at the bound and no stronger."
    );

    // Print one full narrative as a worked example.
    let sample = task_below_bound(2, 2);
    println!(
        "\n-- worked example ({} ) --\n{}",
        sample.cfg, sample.narrative
    );
}

fn verdict(violated: bool) -> String {
    if violated {
        "VIOLATED".into()
    } else {
        "intact".into()
    }
}
