//! E7 (Figure 4): the wide-area cost of an extra process (intro:
//! "contacting an additional process may incur a cost of hundreds of
//! milliseconds per command").
//!
//! Setup: `(e, f) = (2, 2)`. The object protocol needs `n = 5` and is
//! deployed across the five core regions; Fast Paxos needs `n = 7`, and
//! since failure independence forbids co-location, its two extra
//! processes go to two *additional* (farther) regions. A lone proposer
//! in each region measures its fast-path decision latency: the larger
//! fast quorum (`n-e` of 7 instead of `n-e` of 5) must reach deeper
//! into the latency matrix.

use twostep_baselines::FastPaxos;
use twostep_bench::{fmt_path_counts, fmt_path_latencies, Table};
use twostep_core::ObjectConsensus;
use twostep_sim::wan::{region_of, wan_matrix, Region};
use twostep_sim::SimulationBuilder;
use twostep_telemetry::{Metrics, MetricsSnapshot};
use twostep_types::{Duration, ProcessId, SystemConfig, Time};

const E: usize = 2;
const F: usize = 2;

/// Runs a lone-proposer instance with WAN delays and returns the
/// proposer's decision latency in milliseconds plus the run's telemetry
/// snapshot (decision paths per process, latency histograms in ms).
fn object_latency(proposer: ProcessId) -> (Option<u64>, MetricsSnapshot) {
    let cfg = SystemConfig::minimal_object(E, F).unwrap(); // n = 5
    let (metrics, obs) = Metrics::shared();
    let mut sim = SimulationBuilder::new(cfg)
        .delay_model(wan_matrix(cfg.n(), &Region::ALL))
        .observed(obs.clone())
        .build(|q| ObjectConsensus::<u64>::new(cfg, q).observed(obs.clone()));
    sim.schedule_propose(proposer, 7, Time::ZERO);
    let outcome = sim.run_until(Time::ZERO + Duration::from_units(1_500), |s| {
        s.decisions()[proposer.index()].is_some()
    });
    let latency = outcome.decision_time_of(proposer).map(|t| t.units());
    (latency, metrics.snapshot())
}

fn main() {
    // Fast Paxos's task-style constructor makes every process propose;
    // to measure a *lone* proposer we run it through a dedicated
    // lone-proposal harness (see `fast_paxos_lone_latency` below).
    let mut table = Table::new(&[
        "proxy region",
        "TwoStep(object) n=5 [ms]",
        "FastPaxos n=7 [ms]",
        "extra cost [ms]",
        "obj paths f/s/gt/eq/l",
        "fp paths f/s/gt/eq/l",
    ]);

    let mut obj_latency_lines = Vec::new();
    let mut fp_latency_lines = Vec::new();
    for i in 0..5u32 {
        let proposer = ProcessId::new(i);
        let (obj, obj_snap) = object_latency(proposer);
        let (fp, fp_snap) = fast_paxos_lone_latency(proposer);
        let region = region_of(proposer, &Region::ALL);
        let extra = match (obj, fp) {
            (Some(o), Some(f)) => format!("+{}", f.saturating_sub(o)),
            _ => "-".into(),
        };
        table.row(&[
            region.name().to_string(),
            obj.map_or("-".into(), |v| v.to_string()),
            fp.map_or("-".into(), |v| v.to_string()),
            extra,
            fmt_path_counts(&obj_snap),
            fmt_path_counts(&fp_snap),
        ]);
        obj_latency_lines.push(format!(
            "  {:<12} {}",
            region.name(),
            fmt_path_latencies(&obj_snap, 1.0, "ms")
        ));
        fp_latency_lines.push(format!(
            "  {:<12} {}",
            region.name(),
            fmt_path_latencies(&fp_snap, 1.0, "ms")
        ));
    }

    table.print(&format!(
        "E7: lone-proposer fast-path latency over WAN (e={E}, f={F}; object across 5 regions, \
         Fast Paxos forced into 7)"
    ));
    println!("\nTelemetry p50/p99 decision latency by path, all deciders (1 unit = 1 ms):");
    println!("TwoStep(object):");
    for line in &obj_latency_lines {
        println!("{line}");
    }
    println!("FastPaxos:");
    for line in &fp_latency_lines {
        println!("{line}");
    }
    println!(
        "\nReading: both protocols decide in one round trip to their fast quorum, but Fast\n\
         Paxos's quorum is n-e of 7 — it must hear from farther regions, so distant proxies\n\
         pay up to hundreds of extra milliseconds per command. (1 unit = 1 ms one-way.)"
    );
}

/// Lone-proposal Fast Paxos run: only `proposer`'s value circulates
/// (all other instances are passive acceptors/learners). Returns the
/// proposer's decision latency in milliseconds plus the run's telemetry
/// snapshot.
fn fast_paxos_lone_latency(proposer: ProcessId) -> (Option<u64>, MetricsSnapshot) {
    let cfg = SystemConfig::minimal_fast_paxos(E, F).unwrap();
    let (metrics, obs) = Metrics::shared();
    let mut sim = SimulationBuilder::new(cfg)
        .delay_model(wan_matrix(cfg.n(), &Region::ALL7))
        .observed(obs.clone())
        .build(|q| FastPaxos::<u64>::passive(cfg, q).observed(obs.clone()));
    sim.schedule_propose(proposer, 7, Time::ZERO);
    let outcome = sim.run_until(Time::ZERO + Duration::from_units(1_500), |s| {
        s.decisions()[proposer.index()].is_some()
    });
    let latency = outcome.decision_time_of(proposer).map(|t| t.units());
    (latency, metrics.snapshot())
}
