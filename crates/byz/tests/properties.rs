//! Property tests for the Byzantine injection layer, pinning the two
//! guarantees every downstream consumer relies on:
//!
//! 1. **Replayability** — the same `(seed, behavior)` produces a
//!    byte-identical mutated message stream, run after run, so fuzz
//!    `--replay` lines and experiment seeds stay meaningful.
//! 2. **Honest isolation** — the pass-through behavior never alters a
//!    message: a wrapped honest process is indistinguishable from an
//!    unwrapped one, so the oracles may trust every honest send.

use proptest::prelude::*;

use twostep_byz::{ByzBehavior, ByzPlan, ByzProtocol};
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::ProcessId;

/// A minimal broadcaster: each proposal is broadcast to the other
/// processes, giving the injector a deterministic stream to perturb.
#[derive(Debug)]
struct Voter {
    me: ProcessId,
    n: usize,
    decided: Option<u64>,
}

impl Voter {
    fn new(me: u32, n: usize) -> Self {
        Voter {
            me: ProcessId::new(me),
            n,
            decided: None,
        }
    }
}

impl Protocol<u64> for Voter {
    type Message = u64;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_start(&mut self, _effects: &mut Effects<u64, u64>) {}

    fn on_propose(&mut self, value: u64, effects: &mut Effects<u64, u64>) {
        effects.broadcast_others(value, self.n, self.me);
    }

    fn on_message(&mut self, _from: ProcessId, msg: u64, effects: &mut Effects<u64, u64>) {
        if self.decided.is_none() {
            self.decided = Some(msg);
            effects.decide(msg);
        }
    }

    fn on_timer(&mut self, _timer: TimerId, _effects: &mut Effects<u64, u64>) {}

    fn decision(&self) -> Option<u64> {
        self.decided
    }
}

/// Drives `rounds` proposals through `p` and renders every resulting
/// send as stable bytes (`to:msg` lines), so stream equality is literal
/// byte equality.
fn rendered_stream(p: &mut dyn Protocol<u64, Message = u64>, rounds: u64, base: u64) -> Vec<u8> {
    let mut out = Vec::new();
    for round in 0..rounds {
        let mut eff = Effects::new();
        p.on_propose(base.wrapping_add(round), &mut eff);
        for (to, msg) in eff.sends {
            out.extend_from_slice(format!("{}:{msg}\n", to.as_u32()).as_bytes());
        }
    }
    out
}

fn behavior_from(index: usize) -> ByzBehavior {
    ByzBehavior::ALL[index % ByzBehavior::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed ⇒ byte-identical mutated message streams, for every
    /// behavior, across fresh wrapper instances.
    #[test]
    fn same_seed_yields_byte_identical_streams(
        seed in any::<u64>(),
        base in any::<u64>(),
        behavior_index in 0usize..5,
        n in 4usize..16,
    ) {
        let behavior = behavior_from(behavior_index);
        let mut a = ByzProtocol::new(Voter::new(0, n), behavior, seed);
        let mut b = ByzProtocol::new(Voter::new(0, n), behavior, seed);
        prop_assert_eq!(
            rendered_stream(&mut a, 6, base),
            rendered_stream(&mut b, 6, base),
            "behavior {} diverged", behavior
        );
        prop_assert_eq!(a.injections(), b.injections());
    }

    /// Mutations never alter messages from honest processes: under any
    /// plan, a process without an assignment sends exactly what the
    /// unwrapped protocol would.
    #[test]
    fn honest_processes_are_never_altered(
        seed in any::<u64>(),
        base in any::<u64>(),
        victim_behavior in 0usize..5,
        n in 4usize..16,
    ) {
        // p1 is the victim; p0 stays honest under the same plan.
        let plan = ByzPlan::honest(seed)
            .with(ProcessId::new(1), behavior_from(victim_behavior));
        let mut raw = Voter::new(0, n);
        let mut wrapped = plan.wrap(Voter::new(0, n));
        prop_assert!(wrapped.behavior().is_honest());
        prop_assert_eq!(
            rendered_stream(&mut raw, 6, base),
            rendered_stream(&mut wrapped, 6, base)
        );
        prop_assert_eq!(wrapped.injections(), 0);
    }

    /// Per-process streams are independent: wrapping the same victim
    /// under plans that differ only in *other* victims replays the same
    /// corruption stream.
    #[test]
    fn victim_streams_do_not_depend_on_other_victims(
        seed in any::<u64>(),
        base in any::<u64>(),
        n in 4usize..16,
    ) {
        let solo = ByzPlan::honest(seed)
            .with(ProcessId::new(1), ByzBehavior::Equivocate);
        let crowd = ByzPlan::honest(seed)
            .with(ProcessId::new(1), ByzBehavior::Equivocate)
            .with(ProcessId::new(2), ByzBehavior::Silence)
            .with(ProcessId::new(3), ByzBehavior::Forge);
        let mut a = solo.wrap(Voter::new(1, n));
        let mut b = crowd.wrap(Voter::new(1, n));
        prop_assert_eq!(
            rendered_stream(&mut a, 6, base),
            rendered_stream(&mut b, 6, base)
        );
    }
}
