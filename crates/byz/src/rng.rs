//! The injector's deterministic randomness source.
//!
//! Byzantine schedules must replay bit-for-bit from a seed, on every
//! platform and under every future standard library, so this crate
//! carries its own SplitMix64 (Steele, Lea & Flood, OOPSLA'14) rather
//! than depending on an external generator whose stream might change.
//! The implementation is kept identical to the fuzzer's copy in
//! `twostep-fuzz` (both pin the same reference values), so a fuzz seed
//! and an injection seed drawn from it stay mutually reproducible.

/// SplitMix64 generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Derives the seed for an independent stream, used to give every
    /// wrapped process its own corruption stream from one plan seed.
    pub fn stream(root: u64, index: u64) -> u64 {
        let mut g = SplitMix64(root ^ index.wrapping_mul(GOLDEN));
        g.next_u64()
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GOLDEN);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..n`, or 0 when `n` is 0. The degenerate case is
    /// defined (rather than asserted) because injection code derives
    /// `n` from message counts that can legitimately be zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_fuzzer_reference_stream() {
        // Pinned to the same values as `twostep-fuzz`'s copy, so the
        // two generators can never silently diverge.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn streams_are_independent() {
        assert_ne!(SplitMix64::stream(1, 0), SplitMix64::stream(1, 1));
        assert_ne!(SplitMix64::stream(1, 0), SplitMix64::stream(2, 0));
    }
}
