//! Byzantine fault injection for the `twostep` workspace.
//!
//! The source paper's lower bounds assume *crash* faults; ROADMAP item 4
//! asks how the picture changes when up to `b` processes are actively
//! malicious. This crate supplies the adversary: [`ByzProtocol`] wraps
//! any [`Protocol`](twostep_types::protocol::Protocol) implementation
//! and perturbs its *outgoing* effects according to a [`ByzBehavior`] —
//!
//! * **equivocation** — a broadcast is split into disjoint recipient
//!   sets that receive conflicting values;
//! * **value forgery** — embedded proposal/decision values are mutated;
//! * **ballot lying** — embedded ballot numbers are mutated;
//! * **selective silence** — individual sends are dropped.
//!
//! All perturbation is driven by a seeded [`SplitMix64`] stream, so a
//! Byzantine schedule is exactly as replayable as a crash schedule: the
//! pair `(seed, process)` fully determines every corruption. A
//! [`ByzPlan`] assigns behaviors across a cluster and derives the
//! per-process seeds, so the sim engine, `ManualExecutor`, and the
//! fuzzer wrap victims with one call.
//!
//! The wrapper works at the [`Effects`](twostep_types::protocol::Effects)
//! boundary — *between* the protocol and the engine — which is what
//! keeps it engine-agnostic: the same wrapped protocol runs under the
//! deterministic simulator, the model checker, and the threaded
//! runtime, and honest processes run completely unwrapped code paths
//! ([`ByzBehavior::Honest`] is a verified no-op).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod rng;
mod wrapper;

pub use behavior::{ByzBehavior, ByzPlan};
pub use rng::SplitMix64;
pub use wrapper::ByzProtocol;
