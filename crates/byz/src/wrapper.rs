//! The fault-injection protocol wrapper.

use std::marker::PhantomData;

use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::{Corruptible, ProcessId, Value};

use crate::behavior::ByzBehavior;
use crate::rng::SplitMix64;

/// A [`Protocol`] adaptor that makes one process Byzantine.
///
/// `ByzProtocol` delegates every event to the wrapped protocol, then
/// perturbs *only the sends that event produced* according to its
/// [`ByzBehavior`]. Timers, decisions, and local state pass through
/// untouched — a Byzantine process here lies on the wire, it does not
/// corrupt the engine.
///
/// Injection sits at the [`Effects`] boundary, so the wrapper runs
/// unmodified under every engine that drives the [`Protocol`] trait:
/// the deterministic simulator, the `ManualExecutor`, the model
/// checker, and the threaded runtime.
///
/// Determinism: the corruption stream is a seeded [`SplitMix64`], and
/// every behavior consumes randomness in a fixed pattern over the
/// (deterministic) send sequence, so `(seed, behavior)` replays the
/// exact same perturbations on every run. Each *actually* mutated or
/// dropped message is reported once via
/// [`fault_injected`](twostep_telemetry::ProtocolObserver::fault_injected)
/// and counted in [`ByzProtocol::injections`].
#[derive(Debug)]
pub struct ByzProtocol<V, P> {
    inner: P,
    behavior: ByzBehavior,
    rng: SplitMix64,
    obs: ObserverHandle,
    injected: u64,
    _value: PhantomData<fn() -> V>,
}

impl<V, P> ByzProtocol<V, P>
where
    V: Value,
    P: Protocol<V>,
    P::Message: Corruptible + PartialEq,
{
    /// Wraps `inner` with `behavior`, corrupting along the `seed`
    /// stream.
    pub fn new(inner: P, behavior: ByzBehavior, seed: u64) -> Self {
        Self::observed(inner, behavior, seed, ObserverHandle::none())
    }

    /// [`ByzProtocol::new`] with telemetry: every real injection is
    /// reported through `observer`.
    pub fn observed(inner: P, behavior: ByzBehavior, seed: u64, observer: ObserverHandle) -> Self {
        ByzProtocol {
            inner,
            behavior,
            rng: SplitMix64::new(seed),
            obs: observer,
            injected: 0,
            _value: PhantomData,
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// This process's behavior.
    pub fn behavior(&self) -> ByzBehavior {
        self.behavior
    }

    /// Messages actually mutated or dropped so far.
    pub fn injections(&self) -> u64 {
        self.injected
    }

    fn record(&mut self, me: ProcessId, behavior: &'static str) {
        self.injected += 1;
        self.obs.fault_injected(me, behavior);
    }

    /// Perturbs the sends appended after `start` by the step that just
    /// ran.
    fn perturb(&mut self, effects: &mut Effects<V, P::Message>, start: usize) {
        let me = self.inner.id();
        match self.behavior {
            ByzBehavior::Honest => {}
            ByzBehavior::Silence => {
                let tail = effects.sends.split_off(start);
                for (to, msg) in tail {
                    if self.rng.chance(1, 2) {
                        self.record(me, "silence");
                    } else {
                        effects.sends.push((to, msg));
                    }
                }
            }
            ByzBehavior::Forge => {
                for i in start..effects.sends.len() {
                    let salt = self.rng.next_u64();
                    if self.rng.chance(1, 2) && effects.sends[i].1.forge_value(salt) {
                        self.record(me, "forge");
                    }
                }
            }
            ByzBehavior::LieBallot => {
                for i in start..effects.sends.len() {
                    let salt = self.rng.next_u64();
                    if self.rng.chance(1, 2) && effects.sends[i].1.lie_ballot(salt) {
                        self.record(me, "lie-ballot");
                    }
                }
            }
            ByzBehavior::Equivocate => {
                // Group the step's sends by message equality, in
                // first-appearance order so grouping is deterministic.
                let mut groups: Vec<Vec<usize>> = Vec::new();
                for i in start..effects.sends.len() {
                    let m = &effects.sends[i].1;
                    match groups.iter_mut().find(|g| effects.sends[g[0]].1 == *m) {
                        Some(idxs) => idxs.push(i),
                        None => groups.push(vec![i]),
                    }
                }
                // Each multi-recipient group is a (logical) broadcast:
                // keep the original for the first half of the
                // recipients and send one consistently forged value to
                // the rest — conflicting votes to disjoint sets.
                for idxs in groups {
                    if idxs.len() < 2 {
                        continue;
                    }
                    let salt = self.rng.next_u64();
                    for &i in &idxs[idxs.len() / 2..] {
                        if effects.sends[i].1.forge_value(salt) {
                            self.record(me, "equivocate");
                        }
                    }
                }
            }
        }
    }
}

impl<V, P> Protocol<V> for ByzProtocol<V, P>
where
    V: Value,
    P: Protocol<V>,
    P::Message: Corruptible + PartialEq,
{
    type Message = P::Message;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_start(&mut self, effects: &mut Effects<V, Self::Message>) {
        let start = effects.sends.len();
        self.inner.on_start(effects);
        self.perturb(effects, start);
    }

    fn on_propose(&mut self, value: V, effects: &mut Effects<V, Self::Message>) {
        let start = effects.sends.len();
        self.inner.on_propose(value, effects);
        self.perturb(effects, start);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Message,
        effects: &mut Effects<V, Self::Message>,
    ) {
        let start = effects.sends.len();
        self.inner.on_message(from, msg, effects);
        self.perturb(effects, start);
    }

    fn on_timer(&mut self, timer: TimerId, effects: &mut Effects<V, Self::Message>) {
        let start = effects.sends.len();
        self.inner.on_timer(timer, effects);
        self.perturb(effects, start);
    }

    fn decision(&self) -> Option<V> {
        self.inner.decision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use twostep_telemetry::Metrics;

    /// A minimal broadcaster: proposes by broadcasting its value,
    /// decides on the first message it hears.
    #[derive(Debug)]
    struct Voter {
        me: ProcessId,
        n: usize,
        decided: Option<u64>,
    }

    impl Voter {
        fn new(me: u32, n: usize) -> Self {
            Voter {
                me: ProcessId::new(me),
                n,
                decided: None,
            }
        }
    }

    impl Protocol<u64> for Voter {
        type Message = u64;

        fn id(&self) -> ProcessId {
            self.me
        }

        fn on_start(&mut self, _effects: &mut Effects<u64, u64>) {}

        fn on_propose(&mut self, value: u64, effects: &mut Effects<u64, u64>) {
            effects.broadcast_others(value, self.n, self.me);
        }

        fn on_message(&mut self, _from: ProcessId, msg: u64, effects: &mut Effects<u64, u64>) {
            if self.decided.is_none() {
                self.decided = Some(msg);
                effects.decide(msg);
            }
        }

        fn on_timer(&mut self, _timer: TimerId, _effects: &mut Effects<u64, u64>) {}

        fn decision(&self) -> Option<u64> {
            self.decided
        }
    }

    fn sends_of(p: &mut dyn Protocol<u64, Message = u64>, value: u64) -> Vec<(ProcessId, u64)> {
        let mut eff = Effects::new();
        p.on_propose(value, &mut eff);
        eff.sends
    }

    #[test]
    fn honest_wrapper_is_a_perfect_passthrough() {
        let mut raw = Voter::new(0, 6);
        let mut wrapped = ByzProtocol::new(Voter::new(0, 6), ByzBehavior::Honest, 42);
        assert_eq!(sends_of(&mut raw, 7), sends_of(&mut wrapped, 7));
        assert_eq!(wrapped.injections(), 0);
        // Decisions pass through too.
        let mut eff = Effects::new();
        wrapped.on_message(ProcessId::new(1), 9, &mut eff);
        assert_eq!(eff.decisions, vec![9]);
        assert_eq!(wrapped.decision(), Some(9));
    }

    #[test]
    fn equivocation_splits_a_broadcast_into_conflicting_halves() {
        let mut wrapped = ByzProtocol::new(Voter::new(0, 7), ByzBehavior::Equivocate, 42);
        let sends = sends_of(&mut wrapped, 5);
        assert_eq!(sends.len(), 6, "equivocation never drops messages");
        let originals: Vec<_> = sends.iter().filter(|(_, m)| *m == 5).collect();
        let forged: Vec<_> = sends.iter().filter(|(_, m)| *m != 5).collect();
        assert_eq!(originals.len(), 3);
        assert_eq!(forged.len(), 3);
        // All forged copies carry the SAME conflicting value (it is an
        // equivocation, not random noise), to disjoint recipients.
        assert!(forged.windows(2).all(|w| w[0].1 == w[1].1));
        let mut recipients: Vec<u32> = sends.iter().map(|(p, _)| p.as_u32()).collect();
        recipients.sort_unstable();
        recipients.dedup();
        assert_eq!(recipients.len(), 6, "recipient sets are disjoint");
        assert_eq!(wrapped.injections(), 3);
    }

    #[test]
    fn silence_drops_only_some_messages() {
        let mut wrapped = ByzProtocol::new(Voter::new(0, 12), ByzBehavior::Silence, 42);
        let sends = sends_of(&mut wrapped, 5);
        assert!(sends.len() < 11, "some messages must be dropped");
        assert!(!sends.is_empty(), "silence is selective, not a crash");
        assert!(sends.iter().all(|(_, m)| *m == 5), "silence never forges");
        assert_eq!(wrapped.injections() as usize, 11 - sends.len());
    }

    #[test]
    fn forgery_mutates_some_messages_and_counts_them() {
        let mut wrapped = ByzProtocol::new(Voter::new(0, 12), ByzBehavior::Forge, 42);
        let sends = sends_of(&mut wrapped, 5);
        assert_eq!(sends.len(), 11, "forgery never drops messages");
        let forged = sends.iter().filter(|(_, m)| *m != 5).count();
        assert!(forged > 0);
        assert!(forged < 11, "forgery is probabilistic, not total");
        assert_eq!(wrapped.injections() as usize, forged);
    }

    #[test]
    fn lie_ballot_is_inert_on_ballotless_messages() {
        // u64 messages carry no ballot, so the injector must leave them
        // untouched and count nothing.
        let mut wrapped = ByzProtocol::new(Voter::new(0, 8), ByzBehavior::LieBallot, 42);
        let sends = sends_of(&mut wrapped, 5);
        assert!(sends.iter().all(|(_, m)| *m == 5));
        assert_eq!(wrapped.injections(), 0);
    }

    #[test]
    fn same_seed_replays_the_same_perturbations() {
        for behavior in ByzBehavior::ALL {
            let mut a = ByzProtocol::new(Voter::new(0, 9), behavior, 1234);
            let mut b = ByzProtocol::new(Voter::new(0, 9), behavior, 1234);
            for round in 0..8u64 {
                assert_eq!(
                    sends_of(&mut a, round),
                    sends_of(&mut b, round),
                    "{behavior}: streams diverged"
                );
            }
            assert_eq!(a.injections(), b.injections());
        }
    }

    #[test]
    fn perturbation_touches_only_the_current_step() {
        // Pre-existing sends in the effects buffer (from an earlier
        // protocol layered on the same buffer) must not be perturbed.
        let mut wrapped = ByzProtocol::new(Voter::new(0, 6), ByzBehavior::Forge, 3);
        let mut eff = Effects::new();
        eff.send(ProcessId::new(9), 777);
        wrapped.on_propose(5, &mut eff);
        assert_eq!(eff.sends[0], (ProcessId::new(9), 777));
    }

    #[test]
    fn injections_flow_into_telemetry_counters() {
        let (metrics, handle) = Metrics::shared();
        let mut wrapped =
            ByzProtocol::observed(Voter::new(2, 10), ByzBehavior::Equivocate, 42, handle);
        let _ = sends_of(&mut wrapped, 5);
        let snap = metrics.snapshot();
        assert_eq!(snap.injections("equivocate"), wrapped.injections());
        assert!(snap.total_injections() > 0);
        let arc: Arc<Metrics> = metrics;
        assert!(arc
            .render_text()
            .contains("twostep_fault_injections_total{behavior=\"equivocate\"}"));
    }
}
