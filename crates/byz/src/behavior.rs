//! Behavior taxonomy and cluster-wide fault plans.

use std::collections::BTreeMap;
use std::fmt;

use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::Protocol;
use twostep_types::{Corruptible, ProcessId, Value};

use crate::rng::SplitMix64;
use crate::wrapper::ByzProtocol;

/// What a wrapped process does to its outgoing traffic.
///
/// Every variant except [`ByzBehavior::Honest`] models one classic
/// Byzantine capability. A single process carries a single behavior for
/// its lifetime — campaigns wanting mixed adversaries assign different
/// behaviors to different victims via [`ByzPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ByzBehavior {
    /// Pass effects through untouched (the wrapper is a verified no-op).
    Honest,
    /// Split each broadcast into disjoint recipient sets receiving
    /// conflicting values: the first half keeps the original message,
    /// the second half gets one consistently forged copy.
    Equivocate,
    /// Mutate embedded proposal/decision values on roughly half the
    /// outgoing messages.
    Forge,
    /// Mutate embedded ballot numbers on roughly half the outgoing
    /// messages.
    LieBallot,
    /// Drop roughly half the outgoing messages (selective silence —
    /// strictly stronger than a crash, which drops *all* of them).
    Silence,
}

impl ByzBehavior {
    /// Every behavior, honest first.
    pub const ALL: [ByzBehavior; 5] = [
        ByzBehavior::Honest,
        ByzBehavior::Equivocate,
        ByzBehavior::Forge,
        ByzBehavior::LieBallot,
        ByzBehavior::Silence,
    ];

    /// The actively malicious behaviors (everything but honest).
    pub const MALICIOUS: [ByzBehavior; 4] = [
        ByzBehavior::Equivocate,
        ByzBehavior::Forge,
        ByzBehavior::LieBallot,
        ByzBehavior::Silence,
    ];

    /// The stable label used by telemetry counters, replay lines, and
    /// experiment output.
    pub fn label(self) -> &'static str {
        match self {
            ByzBehavior::Honest => "honest",
            ByzBehavior::Equivocate => "equivocate",
            ByzBehavior::Forge => "forge",
            ByzBehavior::LieBallot => "lie-ballot",
            ByzBehavior::Silence => "silence",
        }
    }

    /// Parses a [`ByzBehavior::label`] rendering (CLI flags, replay
    /// lines).
    pub fn parse(s: &str) -> Option<ByzBehavior> {
        ByzBehavior::ALL.into_iter().find(|b| b.label() == s)
    }

    /// Whether this is the pass-through behavior.
    pub fn is_honest(self) -> bool {
        self == ByzBehavior::Honest
    }
}

impl fmt::Display for ByzBehavior {
    fn fmt(&self, fmtr: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmtr.write_str(self.label())
    }
}

/// A cluster-wide fault assignment: which processes are Byzantine, what
/// each of them does, and the root seed their corruption streams derive
/// from.
///
/// Processes without an explicit assignment are honest, so a plan can
/// wrap *every* process uniformly — the engine sees one protocol type —
/// while only the named victims misbehave.
///
/// # Example
///
/// ```rust
/// use twostep_byz::{ByzBehavior, ByzPlan};
/// use twostep_types::ProcessId;
///
/// let plan = ByzPlan::honest(42)
///     .with(ProcessId::new(2), ByzBehavior::Equivocate)
///     .with(ProcessId::new(4), ByzBehavior::Silence);
/// assert_eq!(plan.byzantine_count(), 2);
/// assert!(plan.behavior_of(ProcessId::new(0)).is_honest());
/// ```
#[derive(Clone, Debug)]
pub struct ByzPlan {
    seed: u64,
    assignments: BTreeMap<ProcessId, ByzBehavior>,
}

impl ByzPlan {
    /// An all-honest plan rooted at `seed`.
    pub fn honest(seed: u64) -> Self {
        ByzPlan {
            seed,
            assignments: BTreeMap::new(),
        }
    }

    /// Assigns `behavior` to `process` (builder style). Assigning
    /// [`ByzBehavior::Honest`] removes a previous assignment.
    pub fn with(mut self, process: ProcessId, behavior: ByzBehavior) -> Self {
        if behavior.is_honest() {
            self.assignments.remove(&process);
        } else {
            self.assignments.insert(process, behavior);
        }
        self
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The behavior assigned to `process` (honest by default).
    pub fn behavior_of(&self, process: ProcessId) -> ByzBehavior {
        self.assignments
            .get(&process)
            .copied()
            .unwrap_or(ByzBehavior::Honest)
    }

    /// The Byzantine processes, in id order.
    pub fn byzantine(&self) -> impl Iterator<Item = (ProcessId, ByzBehavior)> + '_ {
        self.assignments.iter().map(|(p, b)| (*p, *b))
    }

    /// How many processes misbehave under this plan.
    pub fn byzantine_count(&self) -> usize {
        self.assignments.len()
    }

    /// Wraps `inner` with its assigned behavior and a per-process seed
    /// derived from the plan root, reporting injections to `observer`.
    ///
    /// The per-process stream is `SplitMix64::stream(seed, id)`, so
    /// adding or removing one victim never perturbs another victim's
    /// corruption stream.
    pub fn wrap_observed<V, P>(&self, inner: P, observer: ObserverHandle) -> ByzProtocol<V, P>
    where
        V: Value,
        P: Protocol<V>,
        P::Message: Corruptible + PartialEq,
    {
        let id = inner.id();
        let stream = SplitMix64::stream(self.seed, u64::from(id.as_u32()));
        ByzProtocol::observed(inner, self.behavior_of(id), stream, observer)
    }

    /// [`ByzPlan::wrap_observed`] without telemetry.
    pub fn wrap<V, P>(&self, inner: P) -> ByzProtocol<V, P>
    where
        V: Value,
        P: Protocol<V>,
        P::Message: Corruptible + PartialEq,
    {
        self.wrap_observed(inner, ObserverHandle::none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for b in ByzBehavior::ALL {
            assert_eq!(ByzBehavior::parse(b.label()), Some(b));
            assert_eq!(b.to_string(), b.label());
        }
        assert_eq!(ByzBehavior::parse("gossip"), None);
    }

    #[test]
    fn malicious_excludes_honest() {
        assert!(ByzBehavior::MALICIOUS.iter().all(|b| !b.is_honest()));
        assert_eq!(ByzBehavior::ALL.len(), ByzBehavior::MALICIOUS.len() + 1);
    }

    #[test]
    fn plans_default_to_honest_and_unassign_on_honest() {
        let p2 = ProcessId::new(2);
        let plan = ByzPlan::honest(7).with(p2, ByzBehavior::Forge);
        assert_eq!(plan.behavior_of(p2), ByzBehavior::Forge);
        assert_eq!(plan.byzantine_count(), 1);
        let plan = plan.with(p2, ByzBehavior::Honest);
        assert_eq!(plan.byzantine_count(), 0);
        assert!(plan.behavior_of(p2).is_honest());
    }

    #[test]
    fn byzantine_iterates_in_id_order() {
        let plan = ByzPlan::honest(1)
            .with(ProcessId::new(5), ByzBehavior::Silence)
            .with(ProcessId::new(1), ByzBehavior::Equivocate);
        let got: Vec<u32> = plan.byzantine().map(|(p, _)| p.as_u32()).collect();
        assert_eq!(got, vec![1, 5]);
    }
}
