//! Lint fixture: a safety invariant guarded only in debug builds.
//! Expected findings: exactly one `debug-assert`.

pub fn check(q: usize, n: usize) {
    debug_assert!(q <= n, "quorum within bounds");
}
