//! Lint fixture: typestate phase types constructed outside
//! `crates/core`, which would bypass the constructors that force the
//! `1A` broadcast and the decision effect.
//! Expected findings: exactly two `phase-construction` (the struct
//! literal and the associated-function call); the variant uses and the
//! enum declaration below must stay clean.

pub enum DemoEvent {
    Decided { value: u64 },
    Collecting,
}

pub fn forge_decision() -> Decided {
    Decided { value: 7, path: 0 }
}

pub fn forge_recovery() -> RecoveryGt {
    RecoveryGt::new(7)
}

pub fn legal_variant_use() -> DemoEvent {
    DemoEvent::Decided { value: 7 }
}

pub fn legal_kind_check(e: &DemoEvent) -> bool {
    matches!(e, DemoEvent::Collecting)
}
