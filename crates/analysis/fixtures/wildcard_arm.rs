//! Lint fixture: a wildcard arm on a protocol-style enum.
//! Expected findings: exactly one `wildcard-arm`.

pub enum DemoMsg {
    Ping,
    Pong,
}

pub fn handle(m: DemoMsg) -> u32 {
    match m {
        DemoMsg::Ping => 1,
        _ => 0,
    }
}
