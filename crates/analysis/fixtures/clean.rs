//! Lint fixture: code that must produce zero findings — exhaustive
//! matches, guarded arithmetic, and a `#[cfg(test)]` module that uses
//! every forbidden construct (test code is out of scope).

pub enum CleanMsg {
    A,
    B,
}

pub fn handle(m: CleanMsg) -> u32 {
    match m {
        CleanMsg::A => 1,
        CleanMsg::B => 2,
    }
}

pub fn named_catchall(m: CleanMsg) -> u32 {
    match m {
        CleanMsg::A => 1,
        other => 10 + handle(other),
    }
}

pub fn margin(n: usize, f: usize) -> usize {
    n.saturating_sub(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forbidden_constructs_are_fine_in_tests() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        debug_assert!(handle(CleanMsg::A) == 1);
        let x = match CleanMsg::B {
            CleanMsg::B => 2,
            _ => 0,
        };
        assert_eq!(x, 2);
    }
}
