//! Lint fixture: panicking accessors in non-test code.
//! Expected findings: exactly two `unwrap-expect`.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn last(xs: &[u32]) -> u32 {
    *xs.last().expect("nonempty")
}
