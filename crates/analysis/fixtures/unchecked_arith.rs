//! Lint fixture: bare subtraction on quorum quantities.
//! Expected findings: exactly two `unchecked-quorum-arith`
//! (the `fast_quorum` body and the `margin` body).

pub struct Cfg {
    n: usize,
    e: usize,
}

impl Cfg {
    pub fn n(&self) -> usize {
        self.n
    }

    pub fn e(&self) -> usize {
        self.e
    }

    pub fn fast_quorum(&self) -> usize {
        self.n() - self.e()
    }

    pub fn safe_margin(&self) -> usize {
        self.n().saturating_sub(self.e)
    }
}

pub fn margin(cfg: &Cfg) -> usize {
    cfg.n() - cfg.fast_quorum()
}
