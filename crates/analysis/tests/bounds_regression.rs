//! Pinned regressions for the bound sweep: the real arithmetic is
//! certified clean over the whole small-model space, the bounds are
//! tight (a concrete counterexample exists one process below each
//! bound), and the seeded-broken fixtures reliably turn the gate red.

use twostep_analysis::bounds::{sweep, tightness_witness, WitnessKind, DEFAULT_MAX_N};
use twostep_analysis::model::Fixture;
use twostep_types::ProtocolKind;

/// Theorems 5–6 as a regression: every `(n, e, f)` with `n ≤ 25`
/// satisfies every obligation under the real quorum arithmetic, and
/// every below-bound `n` yields a constructible witness (witness
/// construction failures surface as violations).
#[test]
fn full_default_sweep_is_clean_and_fully_witnessed() {
    let outcome = sweep(DEFAULT_MAX_N, None);
    assert_eq!(outcome.model, "real");
    // 650 = #{(n, e, f) : 3 ≤ n ≤ 25, 1 ≤ f ≤ (n-1)/2, 1 ≤ e ≤ f,
    // n ≥ 2f+1} — pinned so a silent shrink of the swept space fails.
    assert_eq!(outcome.configs_checked, 650);
    assert!(
        outcome.violations.is_empty(),
        "real arithmetic violated an obligation: {:?}",
        outcome.violations.first()
    );
    assert!(!outcome.witnesses.is_empty());
    for w in &outcome.witnesses {
        assert!(
            w.n < w.bound,
            "witness at n={} not below the {} bound {}",
            w.n,
            w.protocol,
            w.bound
        );
        assert!(!w.sets.is_empty(), "witness without concrete sets: {w:?}");
    }
}

/// Tightness: for every protocol family and every `(e, f)` whose bound
/// fits in the sweep, a witness exists at exactly `bound - 1`.
#[test]
fn every_bound_has_a_witness_one_process_below() {
    for protocol in [
        ProtocolKind::Paxos,
        ProtocolKind::FastPaxos,
        ProtocolKind::TaskTwoStep,
        ProtocolKind::ObjectTwoStep,
    ] {
        for f in 1..=8usize {
            for e in 1..=f {
                let bound = protocol.min_processes(e, f);
                let n = bound - 1;
                if bound > DEFAULT_MAX_N || n < f + 1 {
                    continue;
                }
                let w = tightness_witness(protocol, n, e, f).unwrap_or_else(|err| {
                    panic!("no witness at {protocol} n={n} e={e} f={f}: {err}")
                });
                assert_eq!((w.n, w.e, w.f, w.bound), (n, e, f, bound));
            }
        }
    }
}

/// The executable witness kinds really do drive the production
/// recovery rule into disagreeing with a fast decision.
#[test]
fn executable_witnesses_overturn_fast_decisions() {
    let outcome = sweep(DEFAULT_MAX_N, None);
    let mut task_executed = 0;
    let mut object_executed = 0;
    for w in &outcome.witnesses {
        match w.kind {
            WitnessKind::TaskRivalOvertake => {
                let run = w.executed.expect("task witnesses are executable");
                assert_ne!(
                    run.fast_decided, run.recovery_selected,
                    "witness failed to overturn at {w:?}"
                );
                task_executed += 1;
            }
            WitnessKind::ObjectGtAmbiguity => {
                let run = w.executed.expect("object witnesses are executable");
                assert_ne!(run.fast_decided, run.recovery_selected);
                object_executed += 1;
            }
            WitnessKind::DisjointSlowQuorums | WitnessKind::FastQuorumAmbiguity => {
                assert!(w.executed.is_none(), "structural witness claims execution");
            }
        }
    }
    assert!(task_executed > 0, "no task-region witnesses in the sweep");
    assert!(
        object_executed > 0,
        "no object-region witnesses in the sweep"
    );
}

/// Guarding the gate itself: both seeded-broken fixtures must be
/// caught, at every config, by obligations that name the break.
#[test]
fn seeded_fixtures_always_turn_the_sweep_red() {
    for fx in Fixture::ALL {
        let outcome = sweep(12, Some(fx));
        assert_eq!(outcome.model, fx.name());
        assert!(
            !outcome.is_clean(),
            "fixture {} slipped past the checker",
            fx.name()
        );
        // The break is visibility-shaped in both fixtures: O3 must be
        // among the firing obligations.
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.obligation == "O3-fast-slow-visibility"),
            "fixture {} tripped only {:?}",
            fx.name(),
            outcome
                .violations
                .iter()
                .map(|v| v.obligation)
                .collect::<std::collections::BTreeSet<_>>()
        );
        assert!(outcome.witnesses.is_empty(), "fixtures skip witnesses");
    }
}

/// The machine-readable output holds the whole outcome: counts in the
/// JSON match the in-memory sweep.
#[test]
fn json_report_carries_violations_and_witnesses() {
    let clean = sweep(9, None);
    let json = clean.to_json();
    assert!(json.contains("\"model\":\"real\""));
    assert!(json.contains("\"violations\":[]"));
    assert_eq!(
        json.matches("\"kind\":").count(),
        clean.witnesses.len(),
        "every witness serialized"
    );

    let broken = sweep(9, Some(Fixture::BrokenFastQuorum));
    let json = broken.to_json();
    assert_eq!(
        json.matches("\"obligation\":").count(),
        broken.violations.len(),
        "every violation serialized"
    );
}
