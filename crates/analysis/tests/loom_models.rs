//! Exhaustive-interleaving models of the workspace's two lock-free-ish
//! hot spots, checked with the vendored `loom` scheduler
//! (`cargo test -p twostep-analysis --features loom`).
//!
//! These are *extracted models*: the decision structure of the real
//! code re-expressed over `loom` primitives, because the originals are
//! welded to `TcpStream` / `parking_lot` which the model scheduler
//! cannot drive. Each model documents, line by line, which real code
//! path it mirrors; if the real code changes shape, change the model.
#![cfg(feature = "loom")]

use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// Model of `twostep_telemetry::ObserverHandle` attach/detach racing
/// with recording (`crates/telemetry/src/observer.rs`).
///
/// The handle is `Clone` around an `Arc<dyn ProtocolObserver>`; node
/// threads record through their own clones while the owner may drop or
/// detach its handle at any time. The property: a record made through
/// any clone is never lost and never touches a freed observer —
/// ownership, not the detach, controls the observer's lifetime.
#[test]
fn observer_clone_outlives_detach() {
    loom::model(|| {
        // The observer: just a counter of hook invocations.
        let observer = Arc::new(AtomicUsize::new(0));

        // ObserverHandle::new + .clone() handed to a node thread.
        let handle: Option<Arc<AtomicUsize>> = Some(Arc::clone(&observer));
        let node_handle = handle.clone();

        let node = thread::spawn(move || {
            // ObserverHandle::decided + ::recovery_case on the node
            // thread: `if let Some(o) = &self.0 { o.hook(...) }`.
            if let Some(o) = &node_handle {
                o.fetch_add(1, Ordering::SeqCst);
            }
            if let Some(o) = &node_handle {
                o.fetch_add(1, Ordering::SeqCst);
            }
        });

        // Owner detaches (drops its handle) concurrently with the
        // node's recording.
        drop(handle);

        node.join().unwrap();
        // Both records landed: the node's clone kept the observer
        // alive, and no interleaving of the drop can lose an update.
        assert_eq!(observer.load(Ordering::SeqCst), 2);
    });
}

/// Model of a shared observer *registry* being swapped to detached
/// while recorders hold the lock — the pattern used when an engine
/// re-wires telemetry mid-run. Recorders clone the `Arc` out of the
/// registry under the lock and record outside it; the detacher `take`s
/// the slot. The property: every record made through a clone acquired
/// before the detach is counted, and no recorder ever observes a
/// half-detached state.
#[test]
fn observer_registry_swap_is_atomic() {
    loom::model(|| {
        let observer = Arc::new(AtomicUsize::new(0));
        let registry = Arc::new(Mutex::new(Some(Arc::clone(&observer))));

        let recorders: Vec<_> = (0..2)
            .map(|_| {
                let registry = Arc::clone(&registry);
                thread::spawn(move || {
                    // Clone out under the lock, record outside it.
                    let snapshot = registry.lock().unwrap().clone();
                    match snapshot {
                        Some(o) => {
                            o.fetch_add(1, Ordering::SeqCst);
                            1usize
                        }
                        None => 0,
                    }
                })
            })
            .collect();

        let detacher = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let taken = registry.lock().unwrap().take();
                taken.is_some()
            })
        };

        let recorded: usize = recorders.into_iter().map(|r| r.join().unwrap()).sum();
        let detached = detacher.join().unwrap();

        // The detacher saw the attached observer exactly once.
        assert!(detached, "registry was attached at the start");
        // Count integrity: records through pre-detach clones all
        // landed; recorders that lost the race saw a clean `None`.
        assert_eq!(observer.load(Ordering::SeqCst), recorded);
        assert!(recorded <= 2);
        // Afterwards the registry is stably detached.
        assert!(registry.lock().unwrap().is_none());
    });
}

/// Model of `TcpTransport` flush/redial bookkeeping
/// (`crates/runtime/src/transport.rs`).
///
/// Real shape: each destination has one send queue and one
/// `writer_loop` thread that *exclusively owns* that destination's
/// connection — `send` only enqueues, so no two threads ever race on a
/// `TcpStream`. The writer lazily dials, flushes a coalesced frame,
/// and on write failure drops the dead connection and redials once
/// (after a backoff) before declaring the flush dropped.
///
/// The model: connection ids from a generation counter; generation 0
/// is the pre-established stale connection whose writes always fail,
/// every redial yields a working one. Two threads flush concurrently
/// through one shared slot — deliberately *more* concurrent than the
/// production single-writer discipline, so the bookkeeping is shown
/// sound even without the exclusive-ownership guarantee (and stays
/// sound if a future change reintroduces sharing, the shape this code
/// originally had).
///
/// Checked properties, over every interleaving:
/// * no message is dropped — the single redial always suffices because
///   a fresh dial is never stale;
/// * an unconditional slot-clear on failure is harmless: it costs an
///   extra dial, never a delivery;
/// * the slot ends attached to a *working* connection (the stale
///   generation cannot survive a failed flush).
#[test]
fn transport_retry_never_drops_and_heals_the_slot() {
    struct Net {
        /// `connections[to.index()]`: cached connection generation.
        slot: Mutex<Option<u32>>,
        /// Dial generation counter; `fetch_add` in `connection_to`.
        next_conn: AtomicU32,
        reconnects: AtomicUsize,
        drops: AtomicUsize,
        delivered: AtomicUsize,
    }

    impl Net {
        /// `writer_loop`'s lazy dial: reuse the cached connection or
        /// dial into the empty slot.
        fn connection_to(&self) -> u32 {
            let mut slot = self.slot.lock().unwrap();
            if slot.is_none() {
                *slot = Some(self.next_conn.fetch_add(1, Ordering::SeqCst));
            }
            slot.unwrap()
        }

        /// `writer_loop`'s frame write: generation 0 (the stale
        /// pre-established stream) fails, and failure clears the slot
        /// unconditionally.
        fn try_send_frame(&self) -> bool {
            let conn = self.connection_to();
            let write_ok = conn != 0;
            if !write_ok {
                *self.slot.lock().unwrap() = None;
            }
            write_ok
        }

        /// `writer_loop`'s flush: one redial-and-retry after backoff,
        /// then report reconnected / dropped.
        fn send(&self) {
            if self.try_send_frame() {
                self.delivered.fetch_add(1, Ordering::SeqCst);
                return;
            }
            // (The real code sleeps RECONNECT_BACKOFF here; a model
            // yield stands in for the scheduling opportunity.)
            thread::yield_now();
            if self.try_send_frame() {
                self.reconnects.fetch_add(1, Ordering::SeqCst);
                self.delivered.fetch_add(1, Ordering::SeqCst);
            } else {
                self.drops.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    loom::model(|| {
        let net = Arc::new(Net {
            // The peer restarted: the cached generation-0 connection is
            // stale and every write on it will fail.
            slot: Mutex::new(Some(0)),
            next_conn: AtomicU32::new(1),
            reconnects: AtomicUsize::new(0),
            drops: AtomicUsize::new(0),
            delivered: AtomicUsize::new(0),
        });

        let senders: Vec<_> = (0..2)
            .map(|_| {
                let net = Arc::clone(&net);
                thread::spawn(move || net.send())
            })
            .collect();
        for s in senders {
            s.join().unwrap();
        }

        let delivered = net.delivered.load(Ordering::SeqCst);
        let drops = net.drops.load(Ordering::SeqCst);
        let reconnects = net.reconnects.load(Ordering::SeqCst);

        // Crash-stop bookkeeping: both messages make it, the bounded
        // retry is actually sufficient.
        assert_eq!(delivered, 2, "a send was lost");
        assert_eq!(drops, 0, "the single retry must absorb a stale connection");
        // At least one sender hit the stale connection and reconnected;
        // both may have, depending on who cloned generation 0.
        assert!((1..=2).contains(&reconnects), "reconnects = {reconnects}");
        // The slot healed: whatever got clobbered along the way, the
        // final cached connection is a working one.
        let final_slot = *net.slot.lock().unwrap();
        assert!(
            matches!(final_slot, Some(c) if c > 0),
            "slot must end on a live connection, got {final_slot:?}"
        );
    });
}

/// Model of the reactor transport's `Doorbell` park/wake handoff
/// (`crates/runtime/src/reactor.rs`).
///
/// Real shape: the reactor thread publishes `sleeping = true`
/// (`Doorbell::sleeping`), *then* rechecks the command channel, and
/// only calls `park_timeout` if it is empty; a sender enqueues a
/// command, *then* `swap`s `sleeping` to false and unparks the reactor
/// thread on observing `true` (`Doorbell::ring`). The claimed
/// invariant, quoted from the doorbell's doc comment: *either the
/// sender observes `sleeping` (and unparks) or the reactor's recheck
/// observes the enqueued command — a command can never be stranded
/// behind a full park.*
///
/// The model collapses one reactor park decision plus two concurrent
/// ringers onto loom primitives. Parking itself is not simulated
/// (vendored loom has no park/unpark); instead the model checks the
/// invariant that makes the real park safe, over every interleaving:
///
/// * if the reactor commits to parking, every command was enqueued
///   after its recheck, so the first ring to run finds `sleeping ==
///   true`, clears it, and unparks — the flag cannot still be set once
///   the senders are done (`sleeping` high after a park with pending
///   work ⇒ the reactor would sleep its full timeout ⇒ lost wakeup);
/// * if the reactor skips the park, its pre-park drain saw the
///   commands, and nothing relies on the ring at all.
///
/// Flipping the publish/recheck order in the model (recheck first,
/// `sleeping.store(true)` second) makes loom find the classic lost
/// wakeup: both senders push and swap a still-false flag, then the
/// reactor publishes, rechecks nothing — schedule `recheck → push →
/// ring → publish → park` strands both commands behind the park.
#[test]
fn reactor_doorbell_never_loses_a_wakeup() {
    struct Doorbell {
        /// `Doorbell::sleeping`.
        sleeping: AtomicBool,
        /// The command channel (`Reactor::cmds`), as a mutexed queue.
        queue: Mutex<Vec<u32>>,
    }

    loom::model(|| {
        let bell = Arc::new(Doorbell {
            sleeping: AtomicBool::new(false),
            queue: Mutex::new(Vec::new()),
        });

        // The reactor's `park()`: publish the sleeping flag, recheck
        // the channel, park only if it is empty. A skipped park lowers
        // the flag and drains (the next loop iteration's `drain_cmds`,
        // folded into the recheck's critical section to keep the
        // schedule tree small); a taken park leaves the flag for
        // `ring` to clear — in the real code the thread is inside
        // `park_timeout` at that point and only an unpark ends the
        // wait promptly. Returns `(parked, drained)`.
        let reactor = {
            let bell = Arc::clone(&bell);
            thread::spawn(move || {
                bell.sleeping.store(true, Ordering::Release);
                let drained = {
                    let mut q = bell.queue.lock().unwrap();
                    if q.is_empty() {
                        return (true, 0); // parked
                    }
                    q.drain(..).count()
                };
                bell.sleeping.store(false, Ordering::Release);
                (false, drained)
            })
        };

        // Two transport handles racing `send` + `ring`; each returns
        // whether its swap observed the sleeping flag (= unpark sent).
        let senders: Vec<_> = (0..2u32)
            .map(|i| {
                let bell = Arc::clone(&bell);
                thread::spawn(move || {
                    bell.queue.lock().unwrap().push(i);
                    bell.sleeping.swap(false, Ordering::AcqRel)
                })
            })
            .collect();

        let (parked, drained) = reactor.join().unwrap();
        let woke = senders
            .into_iter()
            .map(|s| s.join().unwrap())
            .filter(|&w| w)
            .count();

        let pending = bell.queue.lock().unwrap().len();
        // No command evaporates: it is either drained pre-park or still
        // queued for the woken reactor's next iteration.
        assert_eq!(drained + pending, 2, "a command was lost outright");
        if parked {
            // The reactor parked, so both commands arrived after its
            // recheck — the ring protocol must have fired: the flag is
            // down and at least one unpark was delivered. A high flag
            // here is the lost wakeup (nobody will unpark; the queue
            // sits until the poll timeout).
            assert!(
                !bell.sleeping.load(Ordering::Acquire),
                "parked with the sleeping flag still set and {pending} commands pending"
            );
            assert!(woke >= 1, "parked, yet no ring observed the sleeping flag");
        } else {
            // Park skipped: the recheck (or the publish racing ahead of
            // a ring) saw the traffic; the pre-park drain got
            // everything that was in by then.
            assert!(drained >= 1, "skipped the park without seeing a command");
        }
    });
}
