//! Per-rule fixture tests for the protocol lint, plus the pinned
//! regression that the real workspace is clean under the checked-in
//! allowlist — and *only* under it.

use std::path::{Path, PathBuf};

use twostep_analysis::lint::{
    collect_enums, collect_sources, lint_file, lint_file_rules, Allowlist, Finding, SourceFile,
};

fn fixture(name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    SourceFile {
        source: std::fs::read_to_string(&path).unwrap(),
        path,
    }
}

/// Lints one fixture file against its own enum declarations.
fn lint_fixture(name: &str) -> Vec<Finding> {
    let file = fixture(name);
    let enums = collect_enums(std::slice::from_ref(&file));
    lint_file(&file, &enums)
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn wildcard_arm_fixture_trips_exactly_its_rule() {
    let findings = lint_fixture("wildcard_arm.rs");
    assert_eq!(rules(&findings), ["wildcard-arm"], "{findings:?}");
    assert_eq!(findings[0].line, 12);
    assert_eq!(findings[0].excerpt, "_ => 0,");
}

#[test]
fn unwrap_expect_fixture_trips_exactly_its_rule() {
    let findings = lint_fixture("unwrap_expect.rs");
    assert_eq!(
        rules(&findings),
        ["unwrap-expect", "unwrap-expect"],
        "{findings:?}"
    );
}

#[test]
fn unchecked_arith_fixture_trips_exactly_its_rule() {
    let findings = lint_fixture("unchecked_arith.rs");
    assert_eq!(
        rules(&findings),
        ["unchecked-quorum-arith", "unchecked-quorum-arith"],
        "{findings:?}"
    );
    assert!(findings.iter().any(|f| f.excerpt.contains("fast_quorum()")));
}

#[test]
fn debug_assert_fixture_trips_exactly_its_rule() {
    let findings = lint_fixture("debug_assert.rs");
    assert_eq!(rules(&findings), ["debug-assert"], "{findings:?}");
}

#[test]
fn phase_construction_fixture_trips_exactly_its_rule() {
    let findings = lint_fixture("phase_construction.rs");
    assert_eq!(
        rules(&findings),
        ["phase-construction", "phase-construction"],
        "{findings:?}"
    );
    assert!(findings.iter().any(|f| f.excerpt.contains("Decided {")));
    assert!(findings
        .iter()
        .any(|f| f.excerpt.contains("RecoveryGt::new")));
}

#[test]
fn clean_fixture_produces_no_findings() {
    let findings = lint_fixture("clean.rs");
    assert_eq!(findings, [], "clean fixture must lint clean");
}

// ---------------------------------------------------------------------
// The real workspace
// ---------------------------------------------------------------------

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Mirrors the binary's scan set (`run_lint` in `src/main.rs`): the
/// protocol crates get every rule (core without `phase-construction`,
/// since core is where phase construction is legal), the
/// runtime/telemetry crates only the relaxed-atomic audit, and the
/// harness crates (sim/verify/fuzz) only the phase-construction
/// boundary.
fn workspace_findings() -> (Vec<Finding>, Allowlist) {
    let root = workspace_root();
    let core_files = collect_sources(&[root.join("crates/core/src")]).unwrap();
    let lint_dirs: Vec<PathBuf> = ["crates/baselines/src", "crates/smr/src", "crates/byz/src"]
        .iter()
        .map(|d| root.join(d))
        .collect();
    let files = collect_sources(&lint_dirs).unwrap();
    assert!(
        !core_files.is_empty() && !files.is_empty(),
        "protocol crates not found under {root:?}"
    );
    let relaxed_files = collect_sources(&[
        root.join("crates/runtime/src"),
        root.join("crates/telemetry/src"),
    ])
    .unwrap();
    let phase_files = collect_sources(&[
        root.join("crates/sim/src"),
        root.join("crates/verify/src"),
        root.join("crates/fuzz/src"),
    ])
    .unwrap();
    assert!(!phase_files.is_empty(), "harness crates not found");
    let enum_files = {
        let mut dirs = lint_dirs;
        dirs.push(root.join("crates/core/src"));
        dirs.push(root.join("crates/types/src"));
        collect_sources(&dirs).unwrap()
    };
    let enums = collect_enums(&enum_files);
    assert!(
        enums.len() >= 8,
        "expected the protocol enum universe, got {enums:?}"
    );
    let non_phase_rules: Vec<&str> = twostep_analysis::lint::RULES
        .iter()
        .copied()
        .filter(|r| *r != "phase-construction")
        .collect();
    let allow = Allowlist::load(&root.join("crates/analysis/lint-allow.txt")).unwrap();
    let findings = core_files
        .iter()
        .flat_map(|f| lint_file_rules(f, &enums, &non_phase_rules))
        .chain(files.iter().flat_map(|f| lint_file(f, &enums)))
        .chain(
            relaxed_files
                .iter()
                .flat_map(|f| lint_file_rules(f, &enums, &["relaxed-atomic"])),
        )
        .chain(
            phase_files
                .iter()
                .flat_map(|f| lint_file_rules(f, &enums, &["phase-construction"])),
        )
        .collect::<Vec<_>>();
    (findings, allow)
}

/// Pinned regression: the protocol crates lint clean under the
/// checked-in allowlist. A new wildcard arm, unwrap, debug_assert or
/// unchecked quorum subtraction in crates/{core,baselines,smr} fails
/// this test (and the CI gate) until either fixed or audited into the
/// allowlist.
#[test]
fn protocol_crates_are_clean_under_the_allowlist() {
    let (findings, allow) = workspace_findings();
    let surviving: Vec<&Finding> = findings.iter().filter(|f| !allow.allows(f)).collect();
    assert!(
        surviving.is_empty(),
        "unaudited lint findings in protocol crates:\n{}",
        surviving
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The allowlist is load-bearing: every entry waives at least one real
/// finding (no stale entries), and without the allowlist the audited
/// findings do surface (the lint is not trivially clean).
#[test]
fn allowlist_entries_are_all_load_bearing() {
    let (findings, allow) = workspace_findings();
    assert!(
        !findings.is_empty(),
        "expected the audited findings to surface without the allowlist"
    );
    let waived = findings.iter().filter(|f| allow.allows(f)).count();
    assert_eq!(
        waived,
        findings.len(),
        "every raw finding should be an audited one"
    );
    assert!(
        waived >= allow.len(),
        "{} allowlist entries but only {waived} waived findings — stale entry?",
        allow.len()
    );
}
