//! The committed public-API snapshot matches the working tree.
//!
//! This is the same comparison the CI `api` gate runs: if it fails,
//! the public surface of `twostep-core` or `twostep-types` changed
//! without regenerating `docs/public-api.txt`. Intentional changes are
//! blessed with `cargo run -p twostep-analysis -- api --bless`.

use std::path::Path;

use twostep_analysis::api;

#[test]
fn committed_snapshot_matches_working_tree() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let current = api::snapshot(&root).expect("snapshot extraction");
    let path = api::snapshot_path(&root);
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert!(
        committed == current,
        "{} is out of date; regenerate with `cargo run -p twostep-analysis -- api --bless`",
        path.display()
    );
}
