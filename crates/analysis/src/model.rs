//! The quorum-arithmetic surface under analysis.
//!
//! The bound checker does not hard-code `n - e` / `n - f` / `n - f - e`:
//! it checks whatever a [`QuorumModel`] reports, so that
//!
//! * the real [`SystemConfig`] arithmetic is what CI certifies, and
//! * deliberately broken fixtures ([`Fixture`]) prove the checker can
//!   actually fail — a gate that cannot go red is not a gate.

use twostep_types::SystemConfig;

/// Quorum arithmetic as seen by the bound checker.
///
/// Implementations answer for one concrete `(n, e, f)`; the checker
/// derives every obligation from these five numbers.
pub trait QuorumModel {
    /// Which arithmetic this is ("real", or a fixture name).
    fn name(&self) -> &'static str;
    /// The underlying parameters `(n, e, f)`.
    fn params(&self) -> (usize, usize, usize);
    /// Fast-path quorum size (the real model returns `n - e`).
    fn fast_quorum(&self) -> usize;
    /// Slow-path quorum size (the real model returns `n - f`).
    fn slow_quorum(&self) -> usize;
    /// Recovery vote threshold (the real model returns `n - f - e`).
    fn recovery_threshold(&self) -> usize;
}

/// The production arithmetic: delegates every query to [`SystemConfig`].
#[derive(Debug, Clone, Copy)]
pub struct RealModel(pub SystemConfig);

impl QuorumModel for RealModel {
    fn name(&self) -> &'static str {
        "real"
    }

    fn params(&self) -> (usize, usize, usize) {
        (self.0.n(), self.0.e(), self.0.f())
    }

    fn fast_quorum(&self) -> usize {
        self.0.fast_quorum()
    }

    fn slow_quorum(&self) -> usize {
        self.0.slow_quorum()
    }

    fn recovery_threshold(&self) -> usize {
        self.0.recovery_threshold()
    }
}

/// Seeded-violation fixtures: known-broken arithmetic the checker must
/// reject. CI runs the checker against one of these and asserts a
/// nonzero exit, guarding the gate itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fixture {
    /// Fast quorums of `n - e - 1`: one process too small, so a fast
    /// quorum and a slow quorum may share fewer than `n - f - e`
    /// members and a fast decision can vanish from recovery's view.
    BrokenFastQuorum,
    /// Recovery threshold of `n - f - e + 1`: one vote too demanding,
    /// so a fast-decided value guaranteed only `n - f - e` surviving
    /// votes falls through to the arbitrary fallback branch.
    BrokenRecoveryThreshold,
}

impl Fixture {
    /// All fixtures, for CLI listing and tests.
    pub const ALL: [Fixture; 2] = [Fixture::BrokenFastQuorum, Fixture::BrokenRecoveryThreshold];

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Fixture> {
        match s {
            "broken-fast-quorum" => Some(Fixture::BrokenFastQuorum),
            "broken-recovery-threshold" => Some(Fixture::BrokenRecoveryThreshold),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Fixture::BrokenFastQuorum => "broken-fast-quorum",
            Fixture::BrokenRecoveryThreshold => "broken-recovery-threshold",
        }
    }

    /// Wraps `cfg` in this fixture's broken arithmetic.
    pub fn model(self, cfg: SystemConfig) -> FixtureModel {
        FixtureModel { cfg, fixture: self }
    }
}

/// A [`QuorumModel`] with one quantity deliberately off by one.
#[derive(Debug, Clone, Copy)]
pub struct FixtureModel {
    cfg: SystemConfig,
    fixture: Fixture,
}

impl QuorumModel for FixtureModel {
    fn name(&self) -> &'static str {
        self.fixture.name()
    }

    fn params(&self) -> (usize, usize, usize) {
        (self.cfg.n(), self.cfg.e(), self.cfg.f())
    }

    fn fast_quorum(&self) -> usize {
        match self.fixture {
            Fixture::BrokenFastQuorum => self.cfg.fast_quorum().saturating_sub(1),
            Fixture::BrokenRecoveryThreshold => self.cfg.fast_quorum(),
        }
    }

    fn slow_quorum(&self) -> usize {
        self.cfg.slow_quorum()
    }

    fn recovery_threshold(&self) -> usize {
        match self.fixture {
            Fixture::BrokenFastQuorum => self.cfg.recovery_threshold(),
            Fixture::BrokenRecoveryThreshold => self.cfg.recovery_threshold() + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_model_mirrors_config() {
        let cfg = SystemConfig::new(7, 2, 3).unwrap();
        let m = RealModel(cfg);
        assert_eq!(m.params(), (7, 2, 3));
        assert_eq!(m.fast_quorum(), 5);
        assert_eq!(m.slow_quorum(), 4);
        assert_eq!(m.recovery_threshold(), 2);
        assert_eq!(m.name(), "real");
    }

    #[test]
    fn fixtures_break_exactly_one_quantity() {
        let cfg = SystemConfig::new(7, 2, 3).unwrap();
        let bfq = Fixture::BrokenFastQuorum.model(cfg);
        assert_eq!(bfq.fast_quorum(), cfg.fast_quorum() - 1);
        assert_eq!(bfq.slow_quorum(), cfg.slow_quorum());
        assert_eq!(bfq.recovery_threshold(), cfg.recovery_threshold());

        let brt = Fixture::BrokenRecoveryThreshold.model(cfg);
        assert_eq!(brt.fast_quorum(), cfg.fast_quorum());
        assert_eq!(brt.recovery_threshold(), cfg.recovery_threshold() + 1);
    }

    #[test]
    fn fixture_cli_names_round_trip() {
        for fx in Fixture::ALL {
            assert_eq!(Fixture::parse(fx.name()), Some(fx));
        }
        assert_eq!(Fixture::parse("no-such-fixture"), None);
    }
}
