//! Exhaustive small-model checking of the Byzantine fast-path bounds.
//!
//! The crash checker ([`crate::bounds`]) certifies the paper's
//! `2e+f`-family arithmetic; this module does the same for the
//! Byzantine comparison point of experiment E14: FaB-Paxos-style fast
//! quorums (`⌈(n+3f+1)/2⌉`, two-step iff `n ≥ 5f+1`) and the
//! arXiv:2102.12825 "Tight" variant (`⌈(n+3f−1)/2⌉`, two-step iff
//! `n ≥ 5f−1` under honest-proposer conditioning). For every
//! `(n, f, variant)` with `n` up to a caller-chosen ceiling it
//! discharges:
//!
//! * **B1 fast honest intersection** — two fast quorums share an
//!   *honest* process (`2·fq ≥ n+f+1`), so an equivocating coalition of
//!   `f` processes cannot drive two conflicting fast decisions: the
//!   honest process in the overlap echoes only one value.
//! * **B2 recovery certification** — a fast decision survives a view
//!   change. For FaB, a fast-decided value keeps `fq + sq − n − f`
//!   honest witnesses inside every slow quorum, which must reach the
//!   certification threshold `f+1` (so forged `Promise`s are outvoted).
//!   Tight recovery certifies from the *coordinator's own report*,
//!   which phase one waits for, so its obligation is quorum
//!   feasibility: `sq ≤ n − f`, a promise quorum containing the
//!   (honest, by conditioning) coordinator can always form — no
//!   witness counting, which is exactly what the two fewer processes
//!   buy.
//! * **B3 slow honest intersection** — two slow quorums share an honest
//!   process (`2·sq ≥ n+f+1`): ballots cannot fork.
//! * **B4 fast availability, both directions** — the fast path is live
//!   under `f` silent processes (`fq ≤ n−f`) *iff* `n` reaches the
//!   variant's bound (`5f+1` / `5f−1`, floored at `3f+1`). The
//!   below-bound direction is the tightness half: arithmetic that is
//!   live below the bound is broken arithmetic.
//! * **B5 certification threshold placement** — the matching-report
//!   threshold sits strictly above the forging coalition (`cert > f`,
//!   so `f` fabricated `Promise`s can never certify a value by
//!   themselves) yet within the intersection of an accepting quorum
//!   and the next view's promise quorum (`cert ≤ 2·sq − n`), the only
//!   processes that can ever produce matching reports for a
//!   slow-decided value. The full intersection counts because a
//!   `Promise`'s slow `(vbal, vval)` pair quotes the ballot leader's
//!   signed progress certificate: a Byzantine intersection member can
//!   withhold its report (shrinking the quorum, not the intersection)
//!   but cannot misreport the pair — load-bearing below `n = 4f+1`,
//!   where only `n − 3f` of the `n − 2f` intersection members are
//!   honest (see the `Corruptible` impl on `FabMsg`).
//! * **B6 max-count recovery (FaB only)** — the fast quorum is large
//!   enough that the most-reported value in a promise quorum is the
//!   fast-decided one (`2·fq > n+3f`). The Tight variant *deliberately*
//!   gives this up (that is where its two processes go) and leans on
//!   B2's honest-proposer conditioning instead, so B6 is not an
//!   obligation there.
//! * **B7 set-level cross-check** — for `n ≤ 10`, brute-force subset
//!   enumeration re-derives the worst-case honest overlap of two fast
//!   quorums (`max(0, 2fq − n − f)`, with the `f` Byzantine processes
//!   packed adversarially into the intersection) and must agree with
//!   the closed form behind B1.
//!
//! Below each variant's liveness bound the sweep emits a **tightness
//! witness**: the `f` silent processes plus the largest live set,
//! showing `n − f < fq`. Every witness whose configuration is
//! constructible is additionally *executed*: the real [`FastBft`]
//! baseline runs under the deterministic synchronous runner with the
//! `f` processes crashed, and the run must show zero fast deciders
//! while the slow path still reaches agreement — the Byzantine
//! analogue of the crash checker's `select_value` executions.

use twostep_baselines::FastBft;
use twostep_sim::SyncRunner;
use twostep_types::{ByzConfig, ByzVariant, Duration, ProcessId, ProcessSet, SystemConfig};

use crate::bounds::min_intersection_by_enumeration;

/// Ceiling for the B7 brute-force subset enumeration.
const SET_CHECK_MAX_N: usize = 10;

/// Simulation horizon for executed witnesses: enough for suspicion,
/// a new ballot, and the slow round at every constructible size.
const WITNESS_HORIZON_DELTAS: u64 = 80;

/// Byzantine quorum arithmetic as seen by the bound checker.
///
/// Mirrors [`crate::model::QuorumModel`]: implementations answer for
/// one concrete `(n, f, variant)`, and the checker derives every
/// obligation from these numbers — so seeded-broken fixtures can prove
/// the gate is able to go red.
pub trait ByzQuorumModel {
    /// Which arithmetic this is ("real", or a fixture name).
    fn name(&self) -> &'static str;
    /// The underlying parameters `(n, f, variant)`.
    fn params(&self) -> (usize, usize, ByzVariant);
    /// Fast-path quorum size.
    fn fast_quorum(&self) -> usize;
    /// Slow-path (view-change) quorum size.
    fn slow_quorum(&self) -> usize;
    /// Matching-report threshold for value certification.
    fn cert_threshold(&self) -> usize;
}

/// The production arithmetic: delegates every query to [`ByzConfig`].
#[derive(Debug, Clone, Copy)]
pub struct RealByzModel(pub ByzConfig);

impl ByzQuorumModel for RealByzModel {
    fn name(&self) -> &'static str {
        "real"
    }

    fn params(&self) -> (usize, usize, ByzVariant) {
        (self.0.n(), self.0.f(), self.0.variant())
    }

    fn fast_quorum(&self) -> usize {
        self.0.fast_quorum()
    }

    fn slow_quorum(&self) -> usize {
        self.0.slow_quorum()
    }

    fn cert_threshold(&self) -> usize {
        self.0.cert_threshold()
    }
}

/// Seeded-broken Byzantine arithmetic the checker must reject. CI runs
/// the checker against this and asserts a nonzero exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzFixture {
    /// Fast quorums of `⌈(n+f+1)/2⌉` — the *crash-tolerant* size,
    /// blind to equivocation. Too small for max-count recovery (B6
    /// fails for every FaB configuration), short of certification
    /// below `n = 5f` (B2), and live below the variant bounds (the
    /// tightness half of B4).
    CrashSizedFastQuorum,
}

impl ByzFixture {
    /// All fixtures, for CLI listing and tests.
    pub const ALL: [ByzFixture; 1] = [ByzFixture::CrashSizedFastQuorum];

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<ByzFixture> {
        match s {
            "byz-crash-sized-fast-quorum" => Some(ByzFixture::CrashSizedFastQuorum),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            ByzFixture::CrashSizedFastQuorum => "byz-crash-sized-fast-quorum",
        }
    }

    /// Wraps `cfg` in this fixture's broken arithmetic.
    pub fn model(self, cfg: ByzConfig) -> ByzFixtureModel {
        ByzFixtureModel { cfg, fixture: self }
    }
}

/// A [`ByzQuorumModel`] with the fast quorum deliberately mis-sized.
#[derive(Debug, Clone, Copy)]
pub struct ByzFixtureModel {
    cfg: ByzConfig,
    fixture: ByzFixture,
}

impl ByzQuorumModel for ByzFixtureModel {
    fn name(&self) -> &'static str {
        self.fixture.name()
    }

    fn params(&self) -> (usize, usize, ByzVariant) {
        (self.cfg.n(), self.cfg.f(), self.cfg.variant())
    }

    fn fast_quorum(&self) -> usize {
        match self.fixture {
            // Crash-style majority-of-(n+f): ignores that the f
            // overlap members may be equivocators.
            ByzFixture::CrashSizedFastQuorum => {
                let (n, f, _) = self.params();
                (n.saturating_add(f).saturating_add(1)).div_ceil(2)
            }
        }
    }

    fn slow_quorum(&self) -> usize {
        self.cfg.slow_quorum()
    }

    fn cert_threshold(&self) -> usize {
        self.cfg.cert_threshold()
    }
}

/// A Byzantine quorum obligation that fails for a model claiming it
/// should hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByzViolation {
    /// Model the violation was found in (`"real"` or a fixture name).
    pub model: &'static str,
    /// Quorum-rule variant ("FaB(5f+1)" / "FaB(5f-1)").
    pub variant: &'static str,
    /// Processes.
    pub n: usize,
    /// Byzantine resilience threshold.
    pub f: usize,
    /// Obligation identifier (`"B1-fast-honest-intersection"`, …).
    pub obligation: &'static str,
    /// Human-readable account of the failing inequality.
    pub detail: String,
    /// Concrete sets exhibiting the failure, when constructible.
    pub witness_sets: Vec<(&'static str, Vec<u32>)>,
}

/// Result of executing a tightness witness against the real
/// [`FastBft`] baseline under the synchronous runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByzExecutionRecord {
    /// Processes crashed in the run (always `f`, the top ids).
    pub crashed: usize,
    /// Correct processes that decided on the fast path — zero, by
    /// construction, since `fq > n − f`.
    pub fast_deciders: usize,
    /// Correct processes that decided at all (via recovery).
    pub correct_deciders: usize,
    /// The agreed value the slow path certified.
    pub decided_value: u64,
}

/// A concrete counterexample showing a fast-liveness bound is tight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByzTightnessWitness {
    /// Quorum-rule variant the bound belongs to.
    pub variant: ByzVariant,
    /// Processes (below the fast-liveness bound, at or above `3f+1`).
    pub n: usize,
    /// Byzantine resilience threshold.
    pub f: usize,
    /// The fast-liveness bound `n` falls short of.
    pub bound: usize,
    /// Named process sets: the silent coalition and the largest live
    /// set, whose size `n − f` is below the fast quorum.
    pub sets: Vec<(&'static str, Vec<u32>)>,
    /// Present when the witness was executed against [`FastBft`].
    pub executed: Option<ByzExecutionRecord>,
}

/// Outcome of a full Byzantine sweep.
#[derive(Debug, Clone)]
pub struct ByzSweepOutcome {
    /// The sweep ceiling.
    pub max_n: usize,
    /// Arithmetic under test (`"real"` or a fixture name).
    pub model: &'static str,
    /// Number of `(n, f, variant)` configurations checked.
    pub configs_checked: usize,
    /// Obligation violations (empty for the real arithmetic).
    pub violations: Vec<ByzViolation>,
    /// Tightness witnesses for every `n` below each variant's
    /// fast-liveness bound (real model only).
    pub witnesses: Vec<ByzTightnessWitness>,
}

impl ByzSweepOutcome {
    /// Whether the sweep certifies the model.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn ids(range: impl Iterator<Item = usize>) -> Vec<u32> {
    range.map(|i| i as u32).collect()
}

/// Checks obligations B1–B7 for one model instance.
pub fn check_byz_model(model: &dyn ByzQuorumModel) -> Vec<ByzViolation> {
    let (n, f, variant) = model.params();
    let fq = model.fast_quorum();
    let sq = model.slow_quorum();
    let cert = model.cert_threshold();
    let mut out = Vec::new();
    let mut violate =
        |obligation: &'static str, detail: String, witness_sets: Vec<(&'static str, Vec<u32>)>| {
            out.push(ByzViolation {
                model: model.name(),
                variant: variant.name(),
                n,
                f,
                obligation,
                detail,
                witness_sets,
            });
        };

    // B1: two fast quorums must share an honest process even after the
    // adversary packs all f Byzantine members into the intersection.
    if 2 * fq < n + f + 1 {
        let overlap = (2 * fq).saturating_sub(n);
        violate(
            "B1-fast-honest-intersection",
            format!(
                "2·fq = {} < n+f+1 = {}: two fast quorums can overlap in only \
                 {overlap} ≤ f = {f} processes, all possibly equivocators",
                2 * fq,
                n + f + 1
            ),
            vec![
                ("fast_quorum_1", ids(0..fq)),
                ("fast_quorum_2", ids(n - fq..n)),
                ("byzantine_overlap", ids(n - fq..fq.max(n - fq))),
            ],
        );
    }

    // B2: a fast decision must survive recovery, per variant.
    //
    // FaB counts matching fast-round (vbal, vval) reports and needs
    // cert = f+1 of them honest in every promise quorum:
    // fq+sq−n−f ≥ cert. Tight instead certifies from the *coordinator's
    // own report*, which phase one waits for — so its obligation is not
    // a witness count but quorum feasibility: a promise quorum that
    // includes the (honest, by conditioning) coordinator must be able
    // to form from the n−f honest processes, i.e. sq ≤ n−f. This
    // matches what `FastBft::certify_fast` actually reads; the earlier
    // "one honest witness" form encoded an assumption the
    // implementation never used (REVIEW.md, medium).
    match variant {
        ByzVariant::Fab => {
            let honest_witnesses = (fq + sq).saturating_sub(n + f);
            if honest_witnesses < cert {
                violate(
                    "B2-recovery-certification",
                    format!(
                        "fq+sq−n−f = {honest_witnesses} < cert = {cert}: a fast-decided \
                         value cannot gather f+1 matching honest reports across a \
                         view change"
                    ),
                    vec![("fast_quorum", ids(0..fq)), ("slow_quorum", ids(n - sq..n))],
                );
            }
        }
        ByzVariant::Tight => {
            if sq > n.saturating_sub(f) {
                violate(
                    "B2-recovery-certification",
                    format!(
                        "sq = {sq} > n−f = {}: recovery waits for a promise quorum \
                         containing the coordinator, which the {f} faulty processes \
                         can starve forever",
                        n.saturating_sub(f)
                    ),
                    vec![("honest_set", ids(0..n - f))],
                );
            }
        }
    }

    // B3: two slow quorums share an honest process.
    if 2 * sq < n + f + 1 {
        violate(
            "B3-slow-honest-intersection",
            format!(
                "2·sq = {} < n+f+1 = {}: ballots can fork through a fully \
                 Byzantine overlap",
                2 * sq,
                n + f + 1
            ),
            vec![
                ("slow_quorum_1", ids(0..sq)),
                ("slow_quorum_2", ids(n - sq..n)),
            ],
        );
    }

    // B4: fast availability under f silence, both directions. The
    // below-bound direction is the tightness half of the 5f+1 / 5f−1
    // bounds: arithmetic that stays live below them is broken.
    let live = fq <= n.saturating_sub(f);
    let bound = variant.min_fast_live(f);
    if n >= bound && !live {
        violate(
            "B4-fast-availability",
            format!(
                "fq = {fq} > n−f = {}: the fast path is dead although n = {n} ≥ {bound}",
                n - f
            ),
            vec![("largest_live_set", ids(0..n - f))],
        );
    }
    if n < bound && live {
        violate(
            "B4-fast-availability",
            format!(
                "fq = {fq} ≤ n−f = {}: the fast path is live although n = {n} < {bound} \
                 — the bound's tightness is refuted",
                n - f
            ),
            vec![
                ("silent_byzantine", ids(n - f..n)),
                ("claimed_fast_quorum", ids(0..fq)),
            ],
        );
    }

    // B5: the certification threshold must be unreachable for the f
    // forgers alone, yet achievable by the accepting/promise quorum
    // intersection — the only processes that can report a slow value.
    // The *full* 2·sq−n intersection counts (not just its honest
    // part): slow reports are certificate-pinned, so a Byzantine
    // member can only withhold, which shrinks the quorum rather than
    // the intersection.
    if cert <= f {
        violate(
            "B5-cert-threshold-placement",
            format!(
                "cert = {cert} ≤ f = {f}: a coalition of forged reports can \
                 certify a value nobody accepted"
            ),
            vec![("forging_coalition", ids(n - f..n))],
        );
    }
    if cert > (2 * sq).saturating_sub(n) {
        violate(
            "B5-cert-threshold-placement",
            format!(
                "cert = {cert} > 2·sq−n = {}: even the full intersection of an \
                 accepting quorum and the next promise quorum cannot certify \
                 a slow-decided value",
                (2 * sq).saturating_sub(n)
            ),
            vec![
                ("accepting_quorum", ids(0..sq)),
                ("next_view_quorum", ids(n - sq..n)),
            ],
        );
    }

    // B6 (FaB only): max-count recovery — the fast quorum must be
    // large enough that the plurality report value in any promise
    // quorum is the fast-decided one: 2·fq > n+3f. The Tight variant
    // trades exactly this away for two fewer processes.
    if variant == ByzVariant::Fab && 2 * fq <= n + 3 * f {
        violate(
            "B6-maxcount-recovery",
            format!(
                "2·fq = {} ≤ n+3f = {}: a rival value backed by f forgers plus \
                 the processes outside the fast quorum can tie or beat the \
                 fast-decided value's report count",
                2 * fq,
                n + 3 * f
            ),
            vec![
                ("fast_quorum", ids(0..fq)),
                ("outside_fast_quorum", ids(fq..n)),
            ],
        );
    }

    // B7: brute-force subset enumeration must agree with the closed
    // form behind B1's honest-overlap count.
    if n <= SET_CHECK_MAX_N && fq > 0 && fq <= n {
        let min_overlap = min_intersection_by_enumeration(n, fq, fq);
        let closed_form = (2 * fq).saturating_sub(n);
        if min_overlap != closed_form {
            violate(
                "B7-set-cross-check",
                format!(
                    "min |FQ1 ∩ FQ2| over all subsets is {min_overlap}, closed form \
                     says {closed_form}"
                ),
                vec![],
            );
        } else {
            let worst_honest = min_overlap.saturating_sub(f);
            let arithmetic = (2 * fq).saturating_sub(n + f);
            if worst_honest != arithmetic {
                violate(
                    "B7-set-cross-check",
                    format!(
                        "worst-case honest overlap by enumeration is {worst_honest}, \
                         closed form says {arithmetic}"
                    ),
                    vec![],
                );
            }
        }
    }

    out
}

/// Builds the tightness witness for `(variant, n, f)` with `3f+1 ≤ n`
/// below the variant's fast-liveness bound, executing the real
/// [`FastBft`] baseline to demonstrate the dead fast path.
pub fn byz_tightness_witness(
    variant: ByzVariant,
    n: usize,
    f: usize,
) -> Result<ByzTightnessWitness, String> {
    let bound = variant.min_fast_live(f);
    if n >= bound {
        return Err(format!(
            "n={n} is not below the {} fast-liveness bound {bound}",
            variant.name()
        ));
    }
    let byz = ByzConfig::new(n, f, variant).map_err(|e| e.to_string())?;
    if byz.fast_path_live() {
        return Err(format!(
            "fast path reported live at n={n} < {bound}: arithmetic is broken"
        ));
    }
    let sets = vec![
        ("silent_byzantine", ids(n - f..n)),
        ("largest_live_set", ids(0..n - f)),
    ];

    // Execute: crash the f silent processes and drive the real FastBft
    // through the synchronous runner. No fast quorum can form, so zero
    // fast deciders — and the slow path must still reach agreement on
    // the coordinator's fast-round value.
    let sim = SystemConfig::new(byz.n(), byz.f(), byz.f()).map_err(|e| e.to_string())?;
    let crashed: ProcessSet = (n - f..n).map(|i| ProcessId::new(i as u32)).collect();
    let outcome = SyncRunner::new(sim)
        .crashed(crashed)
        .horizon(Duration::deltas(WITNESS_HORIZON_DELTAS))
        .run(|q| FastBft::new(byz, q, u64::from(q.as_u32())));
    let (fast, _) = outcome.fast_deciders();
    if !fast.is_empty() {
        return Err(format!(
            "{} processes two-stepped at n={n} < {bound}: not a witness",
            fast.len()
        ));
    }
    if !outcome.all_correct_decided() || !outcome.agreement() {
        return Err(format!(
            "slow path failed to reach agreement at n={n}, f={f} ({})",
            variant.name()
        ));
    }
    let decided = *outcome.decided_values()[0];

    Ok(ByzTightnessWitness {
        variant,
        n,
        f,
        bound,
        sets,
        executed: Some(ByzExecutionRecord {
            crashed: f,
            fast_deciders: 0,
            correct_deciders: n - f,
            decided_value: decided,
        }),
    })
}

/// Runs the full Byzantine sweep: obligations for every constructible
/// `(n, f, variant)` with `n ≤ max_n`, plus (for the real arithmetic)
/// executed tightness witnesses for every `n` below each variant's
/// fast-liveness bound.
///
/// Witness-construction failures are reported as
/// `"witness-construction"` violations, exactly as in the crash sweep:
/// a bound the checker cannot exhibit a counterexample for is treated
/// as unverified.
pub fn sweep(max_n: usize, fixture: Option<ByzFixture>) -> ByzSweepOutcome {
    let model_name = fixture.map_or("real", ByzFixture::name);
    let mut outcome = ByzSweepOutcome {
        max_n,
        model: model_name,
        configs_checked: 0,
        violations: Vec::new(),
        witnesses: Vec::new(),
    };

    for n in 4..=max_n {
        for f in 1..=n.saturating_sub(1) / 3 {
            for variant in [ByzVariant::Fab, ByzVariant::Tight] {
                let Ok(cfg) = ByzConfig::new(n, f, variant) else {
                    continue;
                };
                outcome.configs_checked += 1;
                let violations = match fixture {
                    Some(fx) => check_byz_model(&fx.model(cfg)),
                    None => check_byz_model(&RealByzModel(cfg)),
                };
                outcome.violations.extend(violations);
            }
        }
    }

    // Tightness witnesses demonstrate the real bounds; fixtures skip
    // them (their purpose is to trip the obligations above).
    if fixture.is_none() {
        for variant in [ByzVariant::Fab, ByzVariant::Tight] {
            for f in 1.. {
                let floor = 3 * f + 1;
                if floor > max_n {
                    break;
                }
                let bound = variant.min_fast_live(f);
                for n in floor..bound.min(max_n + 1) {
                    match byz_tightness_witness(variant, n, f) {
                        Ok(w) => outcome.witnesses.push(w),
                        Err(err) => outcome.violations.push(ByzViolation {
                            model: model_name,
                            variant: variant.name(),
                            n,
                            f,
                            obligation: "witness-construction",
                            detail: err,
                            witness_sets: vec![],
                        }),
                    }
                }
            }
        }
    }

    outcome
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_sets(sets: &[(&'static str, Vec<u32>)]) -> String {
    let fields: Vec<String> = sets
        .iter()
        .map(|(name, members)| {
            let members: Vec<String> = members.iter().map(u32::to_string).collect();
            format!("\"{name}\":[{}]", members.join(","))
        })
        .collect();
    format!("{{{}}}", fields.join(","))
}

impl ByzViolation {
    /// Machine-readable rendering (one JSON object).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"model\":\"{}\",\"variant\":\"{}\",\"n\":{},\"f\":{},\
             \"obligation\":\"{}\",\"detail\":\"{}\",\"sets\":{}}}",
            self.model,
            json_escape(self.variant),
            self.n,
            self.f,
            self.obligation,
            json_escape(&self.detail),
            json_sets(&self.witness_sets),
        )
    }
}

impl ByzTightnessWitness {
    /// Machine-readable rendering (one JSON object).
    pub fn to_json(&self) -> String {
        let executed = match &self.executed {
            Some(x) => format!(
                "{{\"crashed\":{},\"fast_deciders\":{},\"correct_deciders\":{},\
                 \"decided_value\":{}}}",
                x.crashed, x.fast_deciders, x.correct_deciders, x.decided_value
            ),
            None => "null".into(),
        };
        format!(
            "{{\"variant\":\"{}\",\"n\":{},\"f\":{},\"bound\":{},\
             \"kind\":\"fast-path-vacant\",\"sets\":{},\"executed\":{}}}",
            json_escape(self.variant.name()),
            self.n,
            self.f,
            self.bound,
            json_sets(&self.sets),
            executed,
        )
    }
}

impl ByzSweepOutcome {
    /// Machine-readable rendering of the whole sweep.
    pub fn to_json(&self) -> String {
        let violations: Vec<String> = self.violations.iter().map(ByzViolation::to_json).collect();
        let witnesses: Vec<String> = self
            .witnesses
            .iter()
            .map(ByzTightnessWitness::to_json)
            .collect();
        format!(
            "{{\"max_n\":{},\"model\":\"{}\",\"configs_checked\":{},\
             \"violations\":[{}],\"tightness_witnesses\":[{}]}}",
            self.max_n,
            self.model,
            self.configs_checked,
            violations.join(","),
            witnesses.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_byz_arithmetic_is_clean_for_small_sweep() {
        let outcome = sweep(16, None);
        assert!(outcome.configs_checked > 0);
        assert_eq!(outcome.violations, vec![], "real arithmetic must verify");
    }

    #[test]
    fn every_witness_is_executed_and_fast_path_vacant() {
        let outcome = sweep(16, None);
        assert!(!outcome.witnesses.is_empty());
        for w in &outcome.witnesses {
            let x = w.executed.expect("all byz witnesses execute FastBft");
            assert_eq!(x.fast_deciders, 0, "n={} f={}", w.n, w.f);
            assert_eq!(x.correct_deciders, w.n - w.f);
        }
    }

    #[test]
    fn executed_witness_exists_at_n_equals_5f() {
        // The acceptance criterion: n = 5f breaks the FaB fast path,
        // demonstrated by a real execution, for every f in range.
        let outcome = sweep(16, None);
        let at_5f: Vec<_> = outcome
            .witnesses
            .iter()
            .filter(|w| w.variant == ByzVariant::Fab && w.n == 5 * w.f)
            .collect();
        assert!(at_5f.len() >= 2, "f = 1, 2, 3 all fit under n = 16");
        for w in at_5f {
            assert_eq!(w.bound, 5 * w.f + 1);
            assert!(w.executed.is_some());
        }
    }

    #[test]
    fn direct_witness_at_the_classic_corner() {
        let w = byz_tightness_witness(ByzVariant::Fab, 5, 1).unwrap();
        assert_eq!(w.bound, 6);
        let x = w.executed.unwrap();
        assert_eq!(x.fast_deciders, 0);
        assert_eq!(x.correct_deciders, 4);
        assert_eq!(x.decided_value, 0, "slow path certifies p0's fast value");
    }

    #[test]
    fn tight_variant_witness_region_is_two_narrower() {
        // f = 2: Tight bound 9, floor 7 — witnesses at n = 7, 8 only.
        let outcome = sweep(10, None);
        let tight: Vec<_> = outcome
            .witnesses
            .iter()
            .filter(|w| w.variant == ByzVariant::Tight && w.f == 2)
            .map(|w| w.n)
            .collect();
        assert_eq!(tight, vec![7, 8]);
        // f = 1: Tight bound 4 equals the 3f+1 floor — no witness region.
        assert!(!outcome
            .witnesses
            .iter()
            .any(|w| w.variant == ByzVariant::Tight && w.f == 1));
    }

    #[test]
    fn at_bound_witness_construction_is_refused() {
        assert!(byz_tightness_witness(ByzVariant::Fab, 6, 1).is_err());
        assert!(byz_tightness_witness(ByzVariant::Tight, 4, 1).is_err());
    }

    #[test]
    fn fixture_trips_the_checker() {
        let outcome = sweep(16, Some(ByzFixture::CrashSizedFastQuorum));
        assert!(!outcome.is_clean());
        // Crash-sized quorums lose max-count recovery for every FaB
        // configuration and report live fast paths below the bound.
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.obligation == "B6-maxcount-recovery"));
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.obligation == "B4-fast-availability"));
        // Fixtures skip witness construction.
        assert!(outcome.witnesses.is_empty());
    }

    #[test]
    fn fixture_cli_names_round_trip() {
        for fx in ByzFixture::ALL {
            assert_eq!(ByzFixture::parse(fx.name()), Some(fx));
        }
        assert_eq!(ByzFixture::parse("no-such-fixture"), None);
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_counts() {
        let outcome = sweep(10, None);
        let json = outcome.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches("\"kind\"").count(),
            outcome.witnesses.len(),
            "one kind field per witness"
        );
    }
}
