//! A minimal Rust source scanner for the protocol lint.
//!
//! The lint does not need a full parse — it needs source text with
//! comments and literals *blanked out* (so `// _ => unreachable` or
//! `.expect("…")` message bodies cannot trip a rule) while preserving
//! byte-for-byte line structure (so findings carry exact line numbers
//! and brace matching still works on the result).
//!
//! Handles: line comments, nested block comments, string literals,
//! raw strings with arbitrary `#` fences, byte strings, char literals
//! (including lifetimes, which are *not* char literals), and escapes.

/// Returns `source` with comments and literal bodies replaced by
/// spaces. Newlines are preserved exactly; delimiters of strings are
/// kept as `"` so token boundaries survive.
pub fn blank_comments_and_strings(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment: blank to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment, possibly nested.
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                i = blank_raw_string(bytes, i, &mut out);
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'"' => {
                out.push(b' ');
                i += 1;
                i = blank_quoted(bytes, i, b'"', &mut out);
            }
            b'"' => {
                i = blank_quoted(bytes, i, b'"', &mut out);
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a lifetime is `'` + ident not followed by a
                // closing `'`.
                if is_lifetime(bytes, i) {
                    out.push(c);
                    i += 1;
                } else {
                    i = blank_quoted(bytes, i, b'\'', &mut out);
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }

    String::from_utf8(out).expect("blanking is ASCII-preserving")
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // r"..."  r#"..."#  br"..."  rb is not a thing; b must precede r.
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j >= bytes.len() || bytes[j] != b'r' {
            return false;
        }
    }
    if bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn blank_raw_string(bytes: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    // Prefix: optional `b`, then `r`, then the `#` fence.
    if bytes[i] == b'b' {
        out.push(b' ');
        i += 1;
    }
    out.push(b' '); // the `r`
    i += 1;
    let mut fences = 0usize;
    while bytes[i] == b'#' {
        fences += 1;
        out.push(b' ');
        i += 1;
    }
    out.push(b'"');
    i += 1;
    // Scan for `"` followed by at least `fences` hashes.
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let hashes = bytes[i + 1..].iter().take_while(|b| **b == b'#').count();
            if hashes >= fences {
                out.push(b'"');
                i += 1;
                for _ in 0..fences {
                    out.push(b' ');
                    i += 1;
                }
                break;
            }
        }
        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
        i += 1;
    }
    i
}

fn blank_quoted(bytes: &[u8], mut i: usize, quote: u8, out: &mut Vec<u8>) -> usize {
    out.push(quote);
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                out.extend_from_slice(b"  ");
                i += 2;
            }
            b'\n' => {
                out.push(b'\n');
                i += 1;
            }
            b if b == quote => {
                out.push(quote);
                i += 1;
                break;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    // `'` + (alpha or _) and the char after the ident is not `'`.
    let Some(&first) = bytes.get(i + 1) else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false;
    }
    let mut j = i + 2;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

/// Whether `text[idx..]` starts a standalone word `word` (not a
/// fragment of a longer identifier).
pub fn is_word_at(text: &str, idx: usize, word: &str) -> bool {
    let bytes = text.as_bytes();
    if !text[idx..].starts_with(word) {
        return false;
    }
    let before_ok = idx == 0 || !is_ident_byte(bytes[idx - 1]);
    let after = idx + word.len();
    let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
    before_ok && after_ok
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds every standalone occurrence of `word` in `text`.
pub fn word_positions(text: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(off) = text[start..].find(word) {
        let idx = start + off;
        if is_word_at(text, idx, word) {
            out.push(idx);
        }
        start = idx + word.len();
    }
    out
}

/// 1-based line number of byte offset `idx` in `text`.
pub fn line_of(text: &str, idx: usize) -> usize {
    text[..idx].bytes().filter(|b| *b == b'\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_and_block_comments() {
        let src = "let x = 1; // _ => unwrap()\n/* expect( */ let y = 2;";
        let out = blank_comments_and_strings(src);
        assert!(!out.contains("unwrap"));
        assert!(!out.contains("expect"));
        assert!(out.contains("let x = 1;"));
        assert!(out.contains("let y = 2;"));
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn blanks_nested_block_comments() {
        let src = "a /* outer /* inner unwrap() */ still */ b";
        let out = blank_comments_and_strings(src);
        assert!(!out.contains("unwrap"));
        assert!(!out.contains("still"));
        assert!(out.starts_with('a') && out.trim_end().ends_with('b'));
    }

    #[test]
    fn blanks_strings_but_keeps_delimiters() {
        let src = r#"call(".unwrap() inside string"); x"#;
        let out = blank_comments_and_strings(src);
        assert!(!out.contains("unwrap"));
        assert!(out.contains("call(\""));
        assert_eq!(out.len(), src.len());
    }

    #[test]
    fn blanks_raw_strings_with_fences() {
        let src = r##"let s = r#"unwrap() "quoted" body"#; done"##;
        let out = blank_comments_and_strings(src);
        assert!(!out.contains("unwrap"));
        assert!(out.contains("done"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\''; let d = '}'; }";
        let out = blank_comments_and_strings(src);
        assert!(out.contains("<'a>"));
        assert!(out.contains("&'a str"));
        // The `'}'` char literal is blanked; only the fn's own closing
        // brace survives.
        assert_eq!(
            out.matches('}').count(),
            1,
            "char literal brace must be blanked: {out}"
        );
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a\"b.unwrap()"; tail"#;
        let out = blank_comments_and_strings(src);
        assert!(!out.contains("unwrap"));
        assert!(out.contains("tail"));
    }

    #[test]
    fn word_matching_respects_boundaries() {
        let text = "match rematch match_ matches match";
        let hits = word_positions(text, "match");
        assert_eq!(hits.len(), 2);
        assert!(is_word_at(text, 0, "match"));
        // "match" embedded in "rematch" is not a word hit.
        assert!(!is_word_at(text, 8, "match"));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let text = "a\nb\nc";
        assert_eq!(line_of(text, 0), 1);
        assert_eq!(line_of(text, 2), 2);
        assert_eq!(line_of(text, 4), 3);
    }
}
