//! CI gate binary for the static-analysis suite.
//!
//! ```text
//! twostep-analysis <bounds|lint|api|model-check|all> [options]
//!   --all               shorthand for the `all` subcommand
//!   --bless             `api` only: regenerate docs/public-api.txt
//!                       instead of diffing against it
//!   --max-n N           bound-sweep cap (default 25)
//!   --fixture NAME      run bounds against a seeded-broken model
//!                       (broken-fast-quorum | broken-recovery-threshold
//!                       for the crash sweep, byz-crash-sized-fast-quorum
//!                       for the Byzantine sweep); CI asserts these exit
//!                       nonzero
//!   --witnesses PATH    write both sweep outcomes (violations + tightness
//!                       witnesses) as JSON to PATH
//!   --json              print the sweep outcome JSON to stdout
//!   --root PATH         workspace root for the lint (default: cwd)
//!   --allowlist PATH    lint allowlist (default: ROOT/crates/analysis/lint-allow.txt)
//!   --workers N         model-check worker threads (default 4)
//!   --report PATH       write the model-check sweep report to PATH
//!   --seeded-broken     model-check only the seeded-broken fixture; CI
//!                       asserts this exits nonzero
//! ```
//!
//! Exit codes: 0 clean, 1 violations or lint findings, 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use twostep_analysis::api;
use twostep_analysis::bounds::{self, SweepOutcome};
use twostep_analysis::byz_bounds::{self, ByzFixture, ByzSweepOutcome};
use twostep_analysis::lint::{self, Allowlist};
use twostep_analysis::model::Fixture;
use twostep_analysis::model_check_gate;

const USAGE: &str = "\
usage: twostep-analysis <bounds|lint|api|model-check|all> [options]
  --all               run every analysis (same as the `all` subcommand)
  --bless             api: regenerate docs/public-api.txt instead of
                      diffing against it
  --max-n N           bound-sweep cap (default 25)
  --fixture NAME      check a seeded-broken model instead of the real
                      arithmetic: broken-fast-quorum |
                      broken-recovery-threshold | byz-crash-sized-fast-quorum
  --witnesses PATH    write sweep outcome JSON (crash + byzantine) to PATH
  --json              print sweep outcome JSON to stdout
  --root PATH         workspace root for the lint (default: current dir)
  --allowlist PATH    lint allowlist file
                      (default: ROOT/crates/analysis/lint-allow.txt)
  --workers N         model-check worker threads (default 4)
  --report PATH       write the model-check sweep report to PATH
  --seeded-broken     model-check only the seeded-broken fixture
                      (CI asserts this exits nonzero)";

struct Options {
    run_bounds: bool,
    run_lint: bool,
    run_api: bool,
    bless: bool,
    run_model_check: bool,
    max_n: usize,
    fixture: Option<Fixture>,
    byz_fixture: Option<ByzFixture>,
    witnesses: Option<PathBuf>,
    json: bool,
    root: PathBuf,
    allowlist: Option<PathBuf>,
    workers: usize,
    report: Option<PathBuf>,
    seeded_broken: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        run_bounds: false,
        run_lint: false,
        run_api: false,
        bless: false,
        run_model_check: false,
        max_n: bounds::DEFAULT_MAX_N,
        fixture: None,
        byz_fixture: None,
        witnesses: None,
        json: false,
        root: PathBuf::from("."),
        allowlist: None,
        workers: 4,
        report: None,
        seeded_broken: false,
    };
    let mut it = args.iter();
    let mut saw_mode = false;
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "bounds" => {
                opts.run_bounds = true;
                saw_mode = true;
            }
            "lint" => {
                opts.run_lint = true;
                saw_mode = true;
            }
            "api" => {
                opts.run_api = true;
                saw_mode = true;
            }
            "model-check" => {
                opts.run_model_check = true;
                saw_mode = true;
            }
            "all" | "--all" => {
                opts.run_bounds = true;
                opts.run_lint = true;
                opts.run_api = true;
                opts.run_model_check = true;
                saw_mode = true;
            }
            "--bless" => opts.bless = true,
            "--max-n" => {
                let v = value_for("--max-n")?;
                opts.max_n = v
                    .parse()
                    .map_err(|_| format!("--max-n: not a number: {v}"))?;
            }
            "--fixture" => {
                let v = value_for("--fixture")?;
                match (Fixture::parse(&v), ByzFixture::parse(&v)) {
                    (Some(fx), _) => opts.fixture = Some(fx),
                    (None, Some(fx)) => opts.byz_fixture = Some(fx),
                    (None, None) => return Err(format!("unknown fixture {v:?}")),
                }
            }
            "--workers" => {
                let v = value_for("--workers")?;
                opts.workers = v
                    .parse()
                    .map_err(|_| format!("--workers: not a number: {v}"))?;
            }
            "--report" => opts.report = Some(PathBuf::from(value_for("--report")?)),
            "--seeded-broken" => opts.seeded_broken = true,
            "--witnesses" => opts.witnesses = Some(PathBuf::from(value_for("--witnesses")?)),
            "--json" => opts.json = true,
            "--root" => opts.root = PathBuf::from(value_for("--root")?),
            "--allowlist" => opts.allowlist = Some(PathBuf::from(value_for("--allowlist")?)),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !saw_mode {
        return Err("no mode given".into());
    }
    Ok(opts)
}

fn run_bounds(opts: &Options) -> Result<bool, String> {
    let outcome: SweepOutcome = bounds::sweep(opts.max_n, opts.fixture);
    let byz: ByzSweepOutcome = byz_bounds::sweep(opts.max_n, opts.byz_fixture);
    let combined = format!(
        "{{\"crash\":{},\"byzantine\":{}}}",
        outcome.to_json(),
        byz.to_json()
    );
    if let Some(path) = &opts.witnesses {
        std::fs::write(path, &combined)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if opts.json {
        println!("{combined}");
    } else {
        println!(
            "bounds: model `{}`, {} configs checked up to n = {}, {} violations, {} tightness witnesses",
            outcome.model,
            outcome.configs_checked,
            outcome.max_n,
            outcome.violations.len(),
            outcome.witnesses.len()
        );
        for v in outcome.violations.iter().take(20) {
            println!(
                "  VIOLATION n={} e={} f={} [{}] {}",
                v.n, v.e, v.f, v.obligation, v.detail
            );
        }
        if outcome.violations.len() > 20 {
            println!("  … and {} more", outcome.violations.len() - 20);
        }
        let executed = outcome
            .witnesses
            .iter()
            .filter(|w| w.executed.is_some())
            .count();
        println!(
            "  witnesses: {} structural, {} executed against select_value",
            outcome.witnesses.len() - executed,
            executed
        );
        println!(
            "byz-bounds: model `{}`, {} configs checked up to n = {}, {} violations, {} tightness witnesses",
            byz.model,
            byz.configs_checked,
            byz.max_n,
            byz.violations.len(),
            byz.witnesses.len()
        );
        for v in byz.violations.iter().take(20) {
            println!(
                "  VIOLATION n={} f={} {} [{}] {}",
                v.n, v.f, v.variant, v.obligation, v.detail
            );
        }
        if byz.violations.len() > 20 {
            println!("  … and {} more", byz.violations.len() - 20);
        }
        let byz_executed = byz
            .witnesses
            .iter()
            .filter(|w| w.executed.is_some())
            .count();
        println!(
            "  witnesses: {} structural, {} executed against FastBft",
            byz.witnesses.len() - byz_executed,
            byz_executed
        );
    }
    Ok(outcome.is_clean() && byz.is_clean())
}

fn run_lint(opts: &Options) -> Result<bool, String> {
    let root = &opts.root;
    // crates/core is the one place where constructing the typestate
    // phase types is legal, so it gets every rule *except*
    // phase-construction.
    let core_dirs: Vec<PathBuf> = vec![root.join("crates/core/src")];
    let lint_dirs: Vec<PathBuf> = ["crates/baselines/src", "crates/smr/src", "crates/byz/src"]
        .iter()
        .map(|d| root.join(d))
        .collect();
    // The runtime and telemetry crates are not protocol handlers, so
    // the handler-shape rules (wildcard arms, quorum arithmetic, …)
    // don't apply — but their atomics still get the relaxed-ordering
    // audit.
    let relaxed_only_dirs: Vec<PathBuf> = ["crates/runtime/src", "crates/telemetry/src"]
        .iter()
        .map(|d| root.join(d))
        .collect();
    // The harness crates drive the protocol purely through its public
    // seam; only the phase-construction boundary applies to them.
    let phase_only_dirs: Vec<PathBuf> = ["crates/sim/src", "crates/verify/src", "crates/fuzz/src"]
        .iter()
        .map(|d| root.join(d))
        .collect();
    for d in core_dirs
        .iter()
        .chain(&lint_dirs)
        .chain(&relaxed_only_dirs)
        .chain(&phase_only_dirs)
    {
        if !d.is_dir() {
            return Err(format!(
                "lint: {} is not a directory (set --root to the workspace root)",
                d.display()
            ));
        }
    }
    let core_files = lint::collect_sources(&core_dirs).map_err(|e| format!("lint: {e}"))?;
    let files = lint::collect_sources(&lint_dirs).map_err(|e| format!("lint: {e}"))?;
    let relaxed_files =
        lint::collect_sources(&relaxed_only_dirs).map_err(|e| format!("lint: {e}"))?;
    let phase_files = lint::collect_sources(&phase_only_dirs).map_err(|e| format!("lint: {e}"))?;
    // Protocol enums may be *declared* in twostep-types but matched in
    // the protocol crates, so the enum universe includes both.
    let enum_files = {
        let mut dirs = core_dirs.clone();
        dirs.extend(lint_dirs.clone());
        dirs.push(root.join("crates/types/src"));
        lint::collect_sources(&dirs).map_err(|e| format!("lint: {e}"))?
    };
    let enums = lint::collect_enums(&enum_files);

    let allow_path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| root.join("crates/analysis/lint-allow.txt"));
    let allow = if allow_path.is_file() {
        Allowlist::load(&allow_path)?
    } else {
        Allowlist::default()
    };

    let non_phase_rules: Vec<&str> = lint::RULES
        .iter()
        .copied()
        .filter(|r| *r != "phase-construction")
        .collect();
    let mut raw = Vec::new();
    for file in &core_files {
        raw.extend(lint::lint_file_rules(file, &enums, &non_phase_rules));
    }
    for file in &files {
        raw.extend(lint::lint_file(file, &enums));
    }
    for file in &relaxed_files {
        raw.extend(lint::lint_file_rules(file, &enums, &["relaxed-atomic"]));
    }
    for file in &phase_files {
        raw.extend(lint::lint_file_rules(file, &enums, &["phase-construction"]));
    }
    let findings: Vec<_> = raw.iter().filter(|f| !allow.allows(f)).collect();
    let stale = allow.stale_entries(&raw);
    println!(
        "lint: {} files, {} protocol enums, {} allowlist entries ({} stale), {} findings",
        core_files.len() + files.len() + relaxed_files.len() + phase_files.len(),
        enums.len(),
        allow.len(),
        stale.len(),
        findings.len()
    );
    for f in &findings {
        println!("  {f}");
    }
    for entry in &stale {
        println!("  STALE allowlist entry waives nothing: {entry}");
    }
    Ok(findings.is_empty() && stale.is_empty())
}

fn run_api(opts: &Options) -> Result<bool, String> {
    let current = api::snapshot(&opts.root)?;
    let path = api::snapshot_path(&opts.root);
    if opts.bless {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        std::fs::write(&path, &current)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!(
            "api: blessed {} ({} lines)",
            path.display(),
            current.lines().count()
        );
        return Ok(true);
    }
    let committed = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {} ({e}); run `twostep-analysis api --bless`",
            path.display()
        )
    })?;
    if committed == current {
        println!(
            "api: {} matches the working tree ({} lines)",
            path.display(),
            current.lines().count()
        );
        return Ok(true);
    }
    let committed_set: std::collections::BTreeSet<&str> = committed.lines().collect();
    let current_set: std::collections::BTreeSet<&str> = current.lines().collect();
    println!(
        "api: {} is out of date with the working tree:",
        path.display()
    );
    for line in committed_set.difference(&current_set).take(20) {
        println!("  - {line}");
    }
    for line in current_set.difference(&committed_set).take(20) {
        println!("  + {line}");
    }
    println!("api: regenerate deliberately with `cargo run -p twostep-analysis -- api --bless`");
    Ok(false)
}

fn run_model_check(opts: &Options) -> Result<bool, String> {
    if opts.seeded_broken {
        let (found, report) = model_check_gate::run_seeded_broken(opts.workers);
        print!("{report}");
        if let Some(path) = &opts.report {
            std::fs::write(path, &report)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        // The fixture is *supposed* to violate: finding the bug means
        // the gate goes red (CI inverts this invocation).
        return Ok(!found);
    }
    let outcome = model_check_gate::run_gate(opts.workers);
    let report = outcome.render(opts.workers);
    print!("{report}");
    if let Some(path) = &opts.report {
        std::fs::write(path, &report)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(outcome.is_clean())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("twostep-analysis: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut clean = true;
    if opts.run_bounds {
        match run_bounds(&opts) {
            Ok(ok) => clean &= ok,
            Err(msg) => {
                eprintln!("twostep-analysis: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.run_lint {
        match run_lint(&opts) {
            Ok(ok) => clean &= ok,
            Err(msg) => {
                eprintln!("twostep-analysis: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.run_api {
        match run_api(&opts) {
            Ok(ok) => clean &= ok,
            Err(msg) => {
                eprintln!("twostep-analysis: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.run_model_check {
        match run_model_check(&opts) {
            Ok(ok) => clean &= ok,
            Err(msg) => {
                eprintln!("twostep-analysis: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
