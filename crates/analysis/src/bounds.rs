//! Exhaustive small-model checking of the paper's quorum bounds.
//!
//! For every configuration `(n, e, f)` with `n` up to a caller-chosen
//! ceiling (CI uses 25), the checker verifies that the quorum arithmetic
//! exposed by a [`QuorumModel`] satisfies the obligations the safety
//! proofs rest on:
//!
//! * **O1 sanity** — no quantity underflows or exceeds `n`, and the
//!   recovery threshold fits inside both quorums.
//! * **O2 slow intersection** — two slow quorums always share a process
//!   (`2·sq ≥ n+1`), the classic Paxos requirement.
//! * **O3 fast/slow visibility** — a fast quorum and a slow quorum share
//!   at least `recovery_threshold` processes (`fq + sq ≥ n + thr`): the
//!   survivors Lemma 7 counts when a fast decision must stay visible to
//!   recovery. With the real arithmetic this holds with equality.
//! * **O4 `>`-case uniqueness** — when the object bound `n ≥ 2e+f-1`
//!   holds, two values cannot both exceed the threshold inside one slow
//!   quorum (`2·(thr+1) > sq`); this is the §C.3 variant of Lemma 7.
//! * **O5 rival cap** — when the task bound `n ≥ 2e+f` holds, the
//!   processes outside a fast quorum cannot out-vote the threshold
//!   (`n - fq ≤ thr`), which is what lets the recovery rule's `=`-case
//!   tie-break never overturn a fast decision (Lemma 7 proper).
//! * **O6 case partition** — for every achievable per-value vote count
//!   `k ≤ sq`, exactly one recovery branch (`> thr`, `= thr`, `< thr`)
//!   applies: the rule's two counting cases are mutually exclusive and
//!   exhaustive.
//! * **O7 set-level cross-check** — for `n ≤ 10`, brute-force bitmask
//!   enumeration of actual quorum subsets re-derives O3 and O4 and must
//!   agree with the closed-form arithmetic.
//!
//! Below each protocol's bound the checker emits a **tightness
//! witness**: a concrete quorum pair (and, where the configuration is
//! still constructible, a full `1B` report set that is *executed
//! against the real recovery rule*, [`select_value`]) demonstrating the
//! failure the bound rules out. Theorems 5 and 6 become executable:
//! every `n` below `max{2e+f, 2f+1}` (task) or `max{2e+f-1, 2f+1}`
//! (object) carries a machine-checkable counterexample.

use twostep_core::recovery::{select_value, Report};
use twostep_core::Ablations;
use twostep_types::quorum::Collector;
use twostep_types::{ProcessId, ProtocolKind, SystemConfig};

use crate::model::{Fixture, QuorumModel, RealModel};

/// Ceiling for the exhaustive sweep used by CI.
pub const DEFAULT_MAX_N: usize = 25;

/// Ceiling for the O7 brute-force subset enumeration.
const SET_CHECK_MAX_N: usize = 10;

/// A quorum obligation that fails for a model claiming it should hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Model the violation was found in (`"real"` or a fixture name).
    pub model: &'static str,
    /// Processes.
    pub n: usize,
    /// Fast-decision failure threshold.
    pub e: usize,
    /// Resilience threshold.
    pub f: usize,
    /// Obligation identifier (`"O3-fast-slow-visibility"`, …).
    pub obligation: &'static str,
    /// Human-readable account of the failing inequality.
    pub detail: String,
    /// Concrete sets exhibiting the failure, when constructible.
    pub witness_sets: Vec<(&'static str, Vec<u32>)>,
}

/// How a tightness witness demonstrates the bound's necessity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessKind {
    /// `n ≤ 2f`: two slow quorums of `n-f` that do not intersect, so
    /// two ballots can decide independently.
    DisjointSlowQuorums,
    /// `n ≤ 2e+f` (Fast Paxos): two fast quorums whose intersection
    /// misses an entire slow quorum, so Fast Paxos's recovery cannot
    /// tell which of two values was fast-chosen.
    FastQuorumAmbiguity,
    /// `2f+1 ≤ n ≤ 2e+f-1` (task): a run where value 100 is
    /// fast-decided yet [`select_value`] picks the rival 200 — a rival
    /// proposed by a process that had already voted for 100 gathers
    /// `e > n-f-e` surviving votes.
    TaskRivalOvertake,
    /// `2f+1 ≤ n ≤ 2e+f-2` (object): a run where value 100 is
    /// fast-decided yet both 100 and the rival 50 exceed the `n-f-e`
    /// threshold in the same report quorum, and [`select_value`]
    /// resolves the ambiguity the wrong way.
    ObjectGtAmbiguity,
}

impl WitnessKind {
    /// Stable identifier used in reports and JSON.
    pub fn id(self) -> &'static str {
        match self {
            WitnessKind::DisjointSlowQuorums => "disjoint-slow-quorums",
            WitnessKind::FastQuorumAmbiguity => "fast-quorum-ambiguity",
            WitnessKind::TaskRivalOvertake => "task-rival-overtake",
            WitnessKind::ObjectGtAmbiguity => "object-gt-ambiguity",
        }
    }
}

/// Result of running a witness's report set through the real recovery
/// rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionRecord {
    /// The value fast-decided in the witness run.
    pub fast_decided: u64,
    /// What [`select_value`] picked from the `1B` reports — differing
    /// from `fast_decided`, i.e. an agreement violation.
    pub recovery_selected: u64,
}

/// A concrete counterexample showing a bound is tight at this `n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TightnessWitness {
    /// Protocol family whose bound `n` violates.
    pub protocol: ProtocolKind,
    /// Processes (below the bound).
    pub n: usize,
    /// Fast-decision failure threshold.
    pub e: usize,
    /// Resilience threshold.
    pub f: usize,
    /// The bound `n` falls short of.
    pub bound: usize,
    /// The shape of the counterexample.
    pub kind: WitnessKind,
    /// Named process sets making up the counterexample.
    pub sets: Vec<(&'static str, Vec<u32>)>,
    /// Present when the witness was executed against [`select_value`].
    pub executed: Option<ExecutionRecord>,
}

/// Outcome of a full sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The sweep ceiling.
    pub max_n: usize,
    /// Arithmetic under test (`"real"` or a fixture name).
    pub model: &'static str,
    /// Number of `(n, e, f)` configurations whose obligations were
    /// checked.
    pub configs_checked: usize,
    /// Obligation violations (empty for the real arithmetic).
    pub violations: Vec<Violation>,
    /// Tightness witnesses for every below-bound `n` (real model only).
    pub witnesses: Vec<TightnessWitness>,
}

impl SweepOutcome {
    /// Whether the sweep certifies the model.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn ids(range: impl Iterator<Item = usize>) -> Vec<u32> {
    range.map(|i| i as u32).collect()
}

/// Checks obligations O1–O7 for one model instance.
pub fn check_model(model: &dyn QuorumModel) -> Vec<Violation> {
    let (n, e, f) = model.params();
    let fq = model.fast_quorum();
    let sq = model.slow_quorum();
    let thr = model.recovery_threshold();
    let mut out = Vec::new();
    let mut violate =
        |obligation: &'static str, detail: String, witness_sets: Vec<(&'static str, Vec<u32>)>| {
            out.push(Violation {
                model: model.name(),
                n,
                e,
                f,
                obligation,
                detail,
                witness_sets,
            });
        };

    // O1: basic sanity of the three quantities.
    let mut sanity = Vec::new();
    if fq == 0 || fq > n {
        sanity.push(format!("fast quorum {fq} outside 1..={n}"));
    }
    if sq == 0 || sq > n {
        sanity.push(format!("slow quorum {sq} outside 1..={n}"));
    }
    if thr == 0 {
        sanity.push("recovery threshold is 0: any single vote clears the > case".into());
    }
    if thr > sq {
        sanity.push(format!(
            "recovery threshold {thr} exceeds slow quorum {sq}: the = case is unreachable"
        ));
    }
    if thr > fq {
        sanity.push(format!("recovery threshold {thr} exceeds fast quorum {fq}"));
    }
    if f + e > n {
        sanity.push(format!("f+e = {} exceeds n = {n}", f + e));
    }
    if !sanity.is_empty() {
        violate("O1-sanity", sanity.join("; "), vec![]);
    }

    // O2: two slow quorums must intersect.
    if 2 * sq < n + 1 {
        violate(
            "O2-slow-intersection",
            format!("2·{sq} < {n}+1: disjoint slow quorums exist"),
            vec![
                ("slow_quorum_1", ids(0..sq)),
                ("slow_quorum_2", ids(n - sq..n)),
            ],
        );
    }

    // O3: a fast quorum and a slow quorum share >= thr processes.
    if fq + sq < n + thr {
        let overlap = (fq + sq).saturating_sub(n);
        violate(
            "O3-fast-slow-visibility",
            format!(
                "fq+sq = {} < n+thr = {}: a fast decision can retain only \
                 {overlap} < {thr} votes in some 1B quorum",
                fq + sq,
                n + thr
            ),
            vec![
                ("fast_quorum", ids(0..fq)),
                ("slow_quorum", ids(n - sq..n)),
                ("intersection", ids(n - sq..fq.max(n - sq))),
            ],
        );
    }

    // O4: at the object bound, at most one value can exceed thr votes
    // inside a slow quorum.
    let object_bound = n + 1 >= 2 * e + f;
    if object_bound && 2 * (thr + 1) <= sq {
        violate(
            "O4-gt-uniqueness",
            format!(
                "2·(thr+1) = {} ≤ sq = {sq}: two values can both exceed the \
                 threshold although n ≥ 2e+f-1",
                2 * (thr + 1)
            ),
            vec![
                ("slow_quorum", ids(0..sq)),
                ("value_a_voters", ids(0..thr + 1)),
                ("value_b_voters", ids(thr + 1..2 * (thr + 1))),
            ],
        );
    }

    // O5: at the task bound, the processes outside a fast quorum cannot
    // out-vote the threshold.
    let task_bound = n >= 2 * e + f;
    if task_bound && n - fq > thr {
        violate(
            "O5-task-rival-cap",
            format!(
                "n-fq = {} > thr = {thr}: a rival value can overtake the \
                 recovery threshold although n ≥ 2e+f",
                n - fq
            ),
            vec![("rival_voters", ids(fq..n))],
        );
    }

    // O6: the recovery branches partition every achievable vote count.
    for k in 0..=sq {
        let cases = [k > thr, k == thr, k < thr];
        let applicable = cases.iter().filter(|c| **c).count();
        if applicable != 1 {
            violate(
                "O6-case-partition",
                format!("vote count {k}: {applicable} recovery cases apply (thr = {thr})"),
                vec![],
            );
            break;
        }
    }

    // O7: brute-force subset enumeration must agree with the closed
    // forms behind O3 and O4.
    if n <= SET_CHECK_MAX_N && fq <= n && sq <= n && fq > 0 && sq > 0 {
        let min_overlap = min_intersection_by_enumeration(n, fq, sq);
        let arithmetic = (fq + sq).saturating_sub(n);
        if min_overlap != arithmetic {
            violate(
                "O7-set-cross-check",
                format!(
                    "min |FQ ∩ Q| over all subsets is {min_overlap}, closed form says {arithmetic}"
                ),
                vec![],
            );
        }
        let two_blocks_fit = 2 * (thr + 1) <= sq;
        let two_blocks_by_sets = sq >= 2 && exists_two_disjoint_blocks(sq, thr + 1);
        if two_blocks_fit != two_blocks_by_sets {
            violate(
                "O7-set-cross-check",
                format!(
                    "disjoint (thr+1)-blocks: arithmetic says {two_blocks_fit}, \
                     enumeration says {two_blocks_by_sets}"
                ),
                vec![],
            );
        }
    }

    out
}

/// Minimum `|FQ ∩ Q|` over all size-`fq` and size-`sq` subsets of `n`,
/// by bitmask enumeration (`n ≤ 10`). Shared with the Byzantine
/// checker's set-level cross-check.
pub(crate) fn min_intersection_by_enumeration(n: usize, fq: usize, sq: usize) -> usize {
    let mut min = n;
    for a in 0u32..1 << n {
        if a.count_ones() as usize != fq {
            continue;
        }
        for b in 0u32..1 << n {
            if b.count_ones() as usize != sq {
                continue;
            }
            min = min.min((a & b).count_ones() as usize);
        }
    }
    min
}

/// Whether a set of `sq` elements contains two disjoint subsets of
/// `block` elements each, by bitmask enumeration — the set-wise
/// re-derivation of `2·block ≤ sq` used by the O7 cross-check.
fn exists_two_disjoint_blocks(sq: usize, block: usize) -> bool {
    for a in 0u32..1 << sq {
        if a.count_ones() as usize != block {
            continue;
        }
        for b in 0u32..1 << sq {
            if b.count_ones() as usize == block && a & b == 0 {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Tightness witnesses
// ---------------------------------------------------------------------

/// `n ≤ 2f`: two slow quorums of `n-f` members that do not intersect.
fn disjoint_slow_quorums(
    protocol: ProtocolKind,
    n: usize,
    e: usize,
    f: usize,
    bound: usize,
) -> Result<TightnessWitness, String> {
    if n <= f {
        return Err(format!("n={n} ≤ f={f}: no slow quorum exists at all"));
    }
    let sq = n - f;
    if 2 * sq > n {
        return Err(format!("n={n} > 2f={}: slow quorums intersect", 2 * f));
    }
    let q1 = ids(0..sq);
    let q2 = ids(n - sq..n);
    if q1.iter().any(|p| q2.contains(p)) {
        return Err("constructed quorums are not disjoint".into());
    }
    Ok(TightnessWitness {
        protocol,
        n,
        e,
        f,
        bound,
        kind: WitnessKind::DisjointSlowQuorums,
        sets: vec![("slow_quorum_1", q1), ("slow_quorum_2", q2)],
        executed: None,
    })
}

/// `2f+1 ≤ n ≤ 2e+f`: two fast quorums whose common part misses an
/// entire slow quorum — Fast Paxos's recovery rule cannot arbitrate.
fn fast_quorum_ambiguity(
    n: usize,
    e: usize,
    f: usize,
    bound: usize,
) -> Result<TightnessWitness, String> {
    if n < 2 * f + 1 || n > 2 * e + f {
        return Err(format!("n={n} outside [2f+1, 2e+f] for (e={e}, f={f})"));
    }
    let sq = n - f;
    // Miss the slow quorum Q = {0..sq} from both sides: FQ1 omits Q's
    // first e members, FQ2 omits Q's last e members.
    let e1: Vec<u32> = ids(0..e);
    let e2: Vec<u32> = ids(sq - e..sq);
    let fq1: Vec<u32> = ids(0..n).into_iter().filter(|p| !e1.contains(p)).collect();
    let fq2: Vec<u32> = ids(0..n).into_iter().filter(|p| !e2.contains(p)).collect();
    let q = ids(0..sq);
    let common: Vec<u32> = q
        .iter()
        .copied()
        .filter(|p| fq1.contains(p) && fq2.contains(p))
        .collect();
    if !common.is_empty() {
        return Err(format!(
            "FQ1 ∩ FQ2 ∩ Q = {common:?} is nonempty: witness construction is wrong"
        ));
    }
    Ok(TightnessWitness {
        protocol: ProtocolKind::FastPaxos,
        n,
        e,
        f,
        bound,
        kind: WitnessKind::FastQuorumAmbiguity,
        sets: vec![
            ("slow_quorum", q),
            ("fast_quorum_1", fq1),
            ("fast_quorum_2", fq2),
        ],
        executed: None,
    })
}

/// `2f+1 ≤ n ≤ 2e+f-1` (task): executes the real [`select_value`] on a
/// run where 100 is fast-decided and the rule picks 200.
///
/// Construction: processes `0..n-e` vote for 100 (proposed by process
/// 0, which gathers a full fast quorum and decides). Process 1 — which
/// already voted for 100 — then proposes 200, and the `e` processes
/// outside the fast-voter set vote for it. The `f` processes `0..f`
/// (all fast voters, including both proposers) miss the `1B` quorum
/// `Q = {f..n}`. Inside `Q`, 100 keeps exactly `n-f-e` votes while 200
/// keeps `e ≥ n-f-e+1`, so the `>` case selects 200.
fn task_rival_overtake(
    n: usize,
    e: usize,
    f: usize,
    bound: usize,
) -> Result<TightnessWitness, String> {
    if n < 2 * f + 1 || n + 1 > 2 * e + f {
        return Err(format!("n={n} outside [2f+1, 2e+f-1] for (e={e}, f={f})"));
    }
    let cfg = SystemConfig::new(n, e, f).map_err(|err| err.to_string())?;
    let decided = 100u64;
    let rival = 200u64;
    let pv = ProcessId::new(0);
    let pw = ProcessId::new(1);
    // The region forces 2e ≥ f+2, hence f ≥ 2 (since e ≤ f) and the
    // excluded set {0..f} stays inside the fast-voter set {0..n-e}.
    let mut reports = Collector::new();
    for q in f..n {
        let r = if q < n - e {
            Report::fast_vote(decided, pv)
        } else {
            Report::fast_vote(rival, pw)
        };
        reports.insert(ProcessId::new(q as u32), r);
    }
    let selected = select_value(&cfg, &reports, None, None, Ablations::NONE)
        .ok_or("recovery selected nothing")?;
    if selected == decided {
        return Err("recovery agreed with the fast decision: not a witness".into());
    }
    Ok(TightnessWitness {
        protocol: ProtocolKind::TaskTwoStep,
        n,
        e,
        f,
        bound,
        kind: WitnessKind::TaskRivalOvertake,
        sets: vec![
            ("fast_voters_100", ids(0..n - e)),
            ("rival_voters_200", ids(n - e..n)),
            ("missing_from_1b", ids(0..f)),
            ("report_quorum", ids(f..n)),
        ],
        executed: Some(ExecutionRecord {
            fast_decided: decided,
            recovery_selected: selected,
        }),
    })
}

/// `2f+1 ≤ n ≤ 2e+f-2` (object): executes the real [`select_value`] on
/// a run where 100 is fast-decided but both 100 and the rival 50 exceed
/// the `n-f-e` threshold, and the rule resolves the tie to 50.
///
/// Construction: processes `0..n-e` vote for 100 (proposed by process
/// 0); processes `n-e..n` vote for 50, proposed by process `n-e`. The
/// `f` non-reporters are `{0, 1, …, f-2}` (fast voters, including the
/// proposer of 100) plus `n-e` (the rival's proposer). Inside the `1B`
/// quorum, 100 keeps `n-f-e+1` votes and 50 keeps `e-1 ≥ n-f-e+1`:
/// Lemma 7's uniqueness premise fails exactly because `n ≤ 2e+f-2`.
fn object_gt_ambiguity(
    n: usize,
    e: usize,
    f: usize,
    bound: usize,
) -> Result<TightnessWitness, String> {
    if n < 2 * f + 1 || n + 2 > 2 * e + f {
        return Err(format!("n={n} outside [2f+1, 2e+f-2] for (e={e}, f={f})"));
    }
    let cfg = SystemConfig::new(n, e, f).map_err(|err| err.to_string())?;
    let decided = 100u64;
    let rival = 50u64;
    let pv = ProcessId::new(0);
    let pw = ProcessId::new((n - e) as u32);
    let missing: Vec<usize> = (0..f - 1).chain([n - e]).collect();
    let mut reports = Collector::new();
    for q in 0..n {
        if missing.contains(&q) {
            continue;
        }
        let r = if q < n - e {
            Report::fast_vote(decided, pv)
        } else {
            Report::fast_vote(rival, pw)
        };
        reports.insert(ProcessId::new(q as u32), r);
    }
    let selected = select_value(&cfg, &reports, None, None, Ablations::NONE)
        .ok_or("recovery selected nothing")?;
    if selected == decided {
        return Err("recovery agreed with the fast decision: not a witness".into());
    }
    Ok(TightnessWitness {
        protocol: ProtocolKind::ObjectTwoStep,
        n,
        e,
        f,
        bound,
        kind: WitnessKind::ObjectGtAmbiguity,
        sets: vec![
            ("fast_voters_100", ids(0..n - e)),
            ("rival_voters_50", ids(n - e..n)),
            (
                "missing_from_1b",
                missing.iter().map(|i| *i as u32).collect(),
            ),
            (
                "report_quorum",
                ids(0..n)
                    .into_iter()
                    .filter(|p| !missing.contains(&(*p as usize)))
                    .collect(),
            ),
        ],
        executed: Some(ExecutionRecord {
            fast_decided: decided,
            recovery_selected: selected,
        }),
    })
}

/// Builds the tightness witness for `(protocol, n, e, f)` with `n`
/// below the protocol's bound, choosing the strongest constructible
/// shape for the region `n` falls in.
pub fn tightness_witness(
    protocol: ProtocolKind,
    n: usize,
    e: usize,
    f: usize,
) -> Result<TightnessWitness, String> {
    let bound = protocol.min_processes(e, f);
    if n >= bound {
        return Err(format!("n={n} is not below the {protocol} bound {bound}"));
    }
    if n < 2 * f + 1 {
        return disjoint_slow_quorums(protocol, n, e, f, bound);
    }
    match protocol {
        ProtocolKind::Paxos => Err(format!(
            "Paxos at n={n} ≥ 2f+1: not below its bound (internal error)"
        )),
        ProtocolKind::FastPaxos => fast_quorum_ambiguity(n, e, f, bound),
        ProtocolKind::TaskTwoStep => task_rival_overtake(n, e, f, bound),
        ProtocolKind::ObjectTwoStep => object_gt_ambiguity(n, e, f, bound),
    }
}

/// Runs the full sweep: obligations for every constructible
/// `(n, e, f)` with `n ≤ max_n`, plus (for the real arithmetic)
/// tightness witnesses for every `n` below each protocol bound.
///
/// Witness-construction failures are reported as
/// `"witness-construction"` violations: a bound the checker cannot
/// exhibit a counterexample for is treated as unverified.
pub fn sweep(max_n: usize, fixture: Option<Fixture>) -> SweepOutcome {
    let model_name = fixture.map_or("real", Fixture::name);
    let mut outcome = SweepOutcome {
        max_n,
        model: model_name,
        configs_checked: 0,
        violations: Vec::new(),
        witnesses: Vec::new(),
    };

    // Obligations for every constructible configuration.
    for n in 3..=max_n {
        for f in 1..=n.saturating_sub(1) / 2 {
            for e in 1..=f {
                let Ok(cfg) = SystemConfig::new(n, e, f) else {
                    continue;
                };
                outcome.configs_checked += 1;
                let violations = match fixture {
                    Some(fx) => check_model(&fx.model(cfg)),
                    None => check_model(&RealModel(cfg)),
                };
                outcome.violations.extend(violations);
            }
        }
    }

    // Tightness witnesses demonstrate the real bounds; fixtures skip
    // them (their purpose is to trip the obligations above).
    if fixture.is_none() {
        for f in 1..max_n {
            for e in 1..=f {
                for protocol in [
                    ProtocolKind::Paxos,
                    ProtocolKind::FastPaxos,
                    ProtocolKind::TaskTwoStep,
                    ProtocolKind::ObjectTwoStep,
                ] {
                    let bound = protocol.min_processes(e, f);
                    for n in f + 1..bound.min(max_n + 1) {
                        match tightness_witness(protocol, n, e, f) {
                            Ok(w) => outcome.witnesses.push(w),
                            Err(err) => outcome.violations.push(Violation {
                                model: model_name,
                                n,
                                e,
                                f,
                                obligation: "witness-construction",
                                detail: format!("{protocol}: {err}"),
                                witness_sets: vec![],
                            }),
                        }
                    }
                }
            }
        }
    }

    outcome
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_sets(sets: &[(&'static str, Vec<u32>)]) -> String {
    let fields: Vec<String> = sets
        .iter()
        .map(|(name, members)| {
            let members: Vec<String> = members.iter().map(u32::to_string).collect();
            format!("\"{name}\":[{}]", members.join(","))
        })
        .collect();
    format!("{{{}}}", fields.join(","))
}

impl Violation {
    /// Machine-readable rendering (one JSON object).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"model\":\"{}\",\"n\":{},\"e\":{},\"f\":{},\"obligation\":\"{}\",\
             \"detail\":\"{}\",\"sets\":{}}}",
            self.model,
            self.n,
            self.e,
            self.f,
            self.obligation,
            json_escape(&self.detail),
            json_sets(&self.witness_sets),
        )
    }
}

impl TightnessWitness {
    /// Machine-readable rendering (one JSON object).
    pub fn to_json(&self) -> String {
        let executed = match &self.executed {
            Some(x) => format!(
                "{{\"fast_decided\":{},\"recovery_selected\":{}}}",
                x.fast_decided, x.recovery_selected
            ),
            None => "null".into(),
        };
        format!(
            "{{\"protocol\":\"{}\",\"n\":{},\"e\":{},\"f\":{},\"bound\":{},\
             \"kind\":\"{}\",\"sets\":{},\"executed\":{}}}",
            json_escape(self.protocol.name()),
            self.n,
            self.e,
            self.f,
            self.bound,
            self.kind.id(),
            json_sets(&self.sets),
            executed,
        )
    }
}

impl SweepOutcome {
    /// Machine-readable rendering of the whole sweep.
    pub fn to_json(&self) -> String {
        let violations: Vec<String> = self.violations.iter().map(Violation::to_json).collect();
        let witnesses: Vec<String> = self
            .witnesses
            .iter()
            .map(TightnessWitness::to_json)
            .collect();
        format!(
            "{{\"max_n\":{},\"model\":\"{}\",\"configs_checked\":{},\
             \"violations\":[{}],\"tightness_witnesses\":[{}]}}",
            self.max_n,
            self.model,
            self.configs_checked,
            violations.join(","),
            witnesses.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_arithmetic_is_clean_for_small_sweep() {
        let outcome = sweep(12, None);
        assert!(outcome.configs_checked > 0);
        assert_eq!(outcome.violations, vec![], "real arithmetic must verify");
    }

    #[test]
    fn fixtures_trip_the_checker_everywhere() {
        for fx in Fixture::ALL {
            let outcome = sweep(8, Some(fx));
            assert!(!outcome.is_clean(), "{} must produce violations", fx.name());
            // The off-by-one breaks visibility for every configuration.
            assert!(outcome
                .violations
                .iter()
                .any(|v| v.obligation == "O3-fast-slow-visibility"));
        }
    }

    #[test]
    fn task_witness_overturns_a_fast_decision() {
        // (e=2, f=2): task bound 6, so n=5 is one below.
        let w = tightness_witness(ProtocolKind::TaskTwoStep, 5, 2, 2).unwrap();
        assert_eq!(w.kind, WitnessKind::TaskRivalOvertake);
        let x = w.executed.unwrap();
        assert_eq!(x.fast_decided, 100);
        assert_eq!(x.recovery_selected, 200);
    }

    #[test]
    fn object_witness_splits_the_gt_case() {
        // (e=3, f=3): object bound 8, so n=7 is one below and sits in
        // the Gt-ambiguity region n ≤ 2e+f-2.
        let w = tightness_witness(ProtocolKind::ObjectTwoStep, 7, 3, 3).unwrap();
        assert_eq!(w.kind, WitnessKind::ObjectGtAmbiguity);
        let x = w.executed.unwrap();
        assert_eq!(x.fast_decided, 100);
        assert_eq!(x.recovery_selected, 50);
    }

    #[test]
    fn resilience_witness_is_a_disjoint_quorum_pair() {
        // n=4 < 2f+1 = 5 for f=2.
        let w = tightness_witness(ProtocolKind::Paxos, 4, 1, 2).unwrap();
        assert_eq!(w.kind, WitnessKind::DisjointSlowQuorums);
        let q1 = &w.sets[0].1;
        let q2 = &w.sets[1].1;
        assert!(q1.iter().all(|p| !q2.contains(p)));
    }

    #[test]
    fn fastpaxos_witness_blinds_a_slow_quorum() {
        // (e=2, f=2): Fast Paxos bound 7, n=6 one below.
        let w = tightness_witness(ProtocolKind::FastPaxos, 6, 2, 2).unwrap();
        assert_eq!(w.kind, WitnessKind::FastQuorumAmbiguity);
    }

    #[test]
    fn at_bound_witness_construction_is_refused() {
        assert!(tightness_witness(ProtocolKind::TaskTwoStep, 6, 2, 2).is_err());
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_counts() {
        let outcome = sweep(6, None);
        let json = outcome.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches("\"kind\"").count(),
            outcome.witnesses.len(),
            "one kind field per witness"
        );
    }
}
