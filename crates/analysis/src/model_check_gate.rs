//! The `model-check` CI gate: exhaustive state-space exploration of the
//! two-step protocols at the paper's boundary configurations.
//!
//! For each `(e, f)` the gate sweeps `n = 2e+f−2 … 2e+f` — the window
//! bracketing both the task bound `n ≥ max{2e+f, 2f+1}` (Theorem 5) and
//! the object bound `n ≥ max{2e+f−1, 2f+1}` (Theorem 6):
//!
//! * at/above the bound the exploration must come back **clean and
//!   un-truncated** (a bounded-exhaustive safety proof for that
//!   configuration);
//! * strictly below the bound (where `SystemConfig` still accepts the
//!   triple) the checker must **find** an agreement violation — the
//!   executable "only if" direction, discovered by search rather than by
//!   the hand-built `twostep_verify::adversary` schedules — and emit it
//!   as a `twostep-fuzz --replay` command;
//! * unconstructible triples (`n < 2f+1`) are reported as skipped, never
//!   silently dropped.
//!
//! # Coverage caps (none silent)
//!
//! The `(e, f) = (1, 1)` family is explored fully: crash budgets up to
//! `f` plus one leader recovery ballot, from the unconstrained initial
//! state. The `(2, 2)` family is **staged**: sizing runs showed the
//! unconstrained `n = 5` space exceeds 10⁶ canonical states *without*
//! surfacing the deep below-bound violation (it needs two coordinated
//! crashes after a completed fast round), so those rows replay a
//! deterministic recorded adversary prefix — a contended fast round
//! driven to a fast decision, then `f = 2` crashes — and exhaustively
//! search every continuation (crash budget spent, one recovery ballot).
//! The prefix is recorded as `Action`s, so a violation found in the
//! suffix still replays end-to-end through `twostep-fuzz`. The caps are
//! printed in the report; a truncated suffix still fails the row.
//!
//! The sweep ends with the `FastBft` baseline at its `n = 3f+1`
//! Byzantine floor — pinned-leader mode, crash-only schedules (the
//! checker injects no equivocation; Byzantine behavior is covered by the
//! fuzzer's Byzantine campaign) and timer budget 0, i.e. the fast path
//! plus crash tolerance but not leader-change recovery, which is
//! state-space infeasible and documented as excluded — and a
//! reduction-ratio reference: the object `n = 4` configuration explored
//! with and without symmetry + partial-order reduction. The reduced leg
//! must complete un-truncated; the unreduced leg is capped (it would
//! take tens of millions of states), so when it truncates the measured
//! ratio is a **lower bound** on the true one, and the gate floor
//! [`MIN_REDUCTION_RATIO`] must still clear.
//!
//! [`run_seeded_broken`] is the inverted fixture: the object protocol
//! with the red-line guard ablated (`no_object_guard`), staged into a
//! contended fast round exactly as in the repo's directed tests. The
//! gate must go red on it, and prints the counterexample as a
//! `twostep-fuzz --replay` command so the violation is replayable
//! outside the checker.

use std::fmt::Write as _;
use std::time::Duration;

use twostep_baselines::FastBft;
use twostep_core::{Ablations, Msg, ObjectConsensus, OmegaMode, TaskConsensus, TwoStepBuilder};
use twostep_sim::ManualExecutor;
use twostep_types::protocol::{Protocol, TimerId};
use twostep_types::{ByzConfig, ByzVariant, ProcessId, ProcessSet, SystemConfig};
use twostep_verify::{fuzz_replay_tokens, Action, CheckOutcome, ModelChecker};

/// The combined symmetry + POR reduction must shrink the visited-state
/// count by at least this factor on the reference configuration.
pub const MIN_REDUCTION_RATIO: f64 = 5.0;

/// State cap for the unreduced reference leg. The unreduced object
/// `n = 4` space does not finish in CI time (a probe run passed 16×10⁶
/// states without exhausting it), so the leg is capped here and the
/// reported ratio is a lower bound whenever the cap is hit.
pub const UNREDUCED_REFERENCE_CAP: usize = 6_000_000;

/// What a sweep row was expected to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// At/above the bound: exploration must be clean and un-truncated.
    Clean,
    /// Below the bound: the checker must find an agreement violation.
    Violation,
    /// `SystemConfig` rejects the triple (`n < 2f+1`): nothing to run.
    Unconstructible,
}

impl Expectation {
    fn label(self) -> &'static str {
        match self {
            Expectation::Clean => "clean",
            Expectation::Violation => "violation",
            Expectation::Unconstructible => "skip",
        }
    }
}

/// One boundary configuration's result.
#[derive(Debug, Clone)]
pub struct ConfigRow {
    /// Human-readable config label.
    pub label: String,
    /// What the bound arithmetic predicts.
    pub expect: Expectation,
    /// Whether the run matched the expectation.
    pub ok: bool,
    /// Distinct states visited (0 for skipped rows).
    pub states: usize,
    /// Whether the exploration hit its state cap.
    pub truncated: bool,
    /// Transitions, dedup hits, scrubbed messages.
    pub transitions: usize,
    /// Successors merged into visited states.
    pub deduped: usize,
    /// Inert messages dropped by POR.
    pub scrubbed: usize,
    /// Visited states per second.
    pub states_per_sec: f64,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// One-line outcome description.
    pub detail: String,
}

/// The reduction-ratio reference measurement.
#[derive(Debug, Clone)]
pub struct ReductionRow {
    /// Visited states without any reduction (capped at
    /// [`UNREDUCED_REFERENCE_CAP`]).
    pub unreduced_states: usize,
    /// Whether the unreduced leg hit its cap (the ratio is then a lower
    /// bound on the true reduction).
    pub unreduced_truncated: bool,
    /// Visited states with symmetry + POR.
    pub reduced_states: usize,
    /// `unreduced / reduced`.
    pub ratio: f64,
    /// Whether the ratio clears [`MIN_REDUCTION_RATIO`] with the
    /// reduced leg exhaustively clean.
    pub ok: bool,
}

/// Everything the gate produced.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// One row per boundary configuration.
    pub rows: Vec<ConfigRow>,
    /// The reduction reference run.
    pub reduction: ReductionRow,
}

impl GateOutcome {
    /// Whether every row matched its expectation and the reduction
    /// ratio cleared the floor.
    pub fn is_clean(&self) -> bool {
        self.rows.iter().all(|r| r.ok) && self.reduction.ok
    }

    /// Renders the report persisted under `results/` and uploaded by
    /// CI.
    pub fn render(&self, workers: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# e15: model-check gate — boundary sweep ({} worker{})",
            workers,
            if workers == 1 { "" } else { "s" }
        );
        let _ = writeln!(
            out,
            "# expectation per Theorems 5/6: task clean iff n >= max(2e+f, 2f+1), \
             object clean iff n >= max(2e+f-1, 2f+1)"
        );
        let _ = writeln!(
            out,
            "# coverage: (1,1) rows unconstrained (crash<=f, one recovery ballot); \
             (2,2) rows staged (recorded fast-round + f crashes prefix, exhaustive suffix); \
             fastbft pinned leader, timer budget 0 (recovery excluded)"
        );
        let _ = writeln!(
            out,
            "{:<34} {:>9} {:>9} {:>11} {:>9} {:>9} {:>10} {:>8}  result",
            "config", "expect", "states", "transitions", "deduped", "scrubbed", "states/s", "ms"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<34} {:>9} {:>9} {:>11} {:>9} {:>9} {:>10.0} {:>8}  {}",
                r.label,
                r.expect.label(),
                r.states,
                r.transitions,
                r.deduped,
                r.scrubbed,
                r.states_per_sec,
                r.elapsed.as_millis(),
                if r.ok {
                    format!("ok ({})", r.detail)
                } else {
                    format!("FAIL ({})", r.detail)
                }
            );
        }
        let red = &self.reduction;
        let _ = writeln!(
            out,
            "\n# reduction reference: object n=4 e=1 f=1, crash budget 1, leader timer budget 1"
        );
        if red.unreduced_truncated {
            let _ = writeln!(
                out,
                "unreduced states: {} (cap {UNREDUCED_REFERENCE_CAP} hit — ratio is a lower bound)",
                red.unreduced_states
            );
        } else {
            let _ = writeln!(out, "unreduced states: {}", red.unreduced_states);
        }
        let _ = writeln!(
            out,
            "reduced states:   {} (symmetry + POR)",
            red.reduced_states
        );
        let _ = writeln!(
            out,
            "reduction ratio:  {}{:.1}x (gate floor {MIN_REDUCTION_RATIO}x) — {}",
            if red.unreduced_truncated { ">=" } else { "" },
            red.ratio,
            if red.ok { "ok" } else { "FAIL" }
        );
        let _ = writeln!(
            out,
            "\ngate: {}",
            if self.is_clean() { "CLEAN" } else { "RED" }
        );
        out
    }
}

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn leader_only() -> ProcessSet {
    [p(0)].into_iter().collect()
}

/// Task-variant values for the unconstrained `(1, 1)` rows: the leader
/// proposes 10, everyone else 20 — two contending values with a maximal
/// symmetry orbit among the followers.
fn task_values(n: usize) -> Vec<u64> {
    (0..n).map(|i| if i == 0 { 10 } else { 20 }).collect()
}

fn task_executor(
    cfg: SystemConfig,
    values: Vec<u64>,
    leader: ProcessId,
) -> ManualExecutor<u64, TaskConsensus<u64>> {
    let mut ex = ManualExecutor::new(cfg, |q| {
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(leader))
            .task(q, values[q.index()])
    });
    ex.start_all();
    ex
}

fn task_checker(f: usize, max_states: usize, workers: usize) -> ModelChecker<u64> {
    ModelChecker::new()
        .max_states(max_states)
        .max_crashes(f)
        .timer_budget(1, vec![TimerId::NEW_BALLOT])
        .timer_processes(leader_only())
        .workers(workers)
}

fn run_task(cfg: SystemConfig, max_states: usize, workers: usize) -> CheckOutcome {
    let values = task_values(cfg.n());
    task_checker(cfg.f(), max_states, workers)
        .proposed(values.clone())
        .run(cfg, move |cfg| task_executor(cfg, values.clone(), p(0)))
}

/// Object-variant executor: the leader proposes 10 and the last process
/// proposes 20 (two contenders, the rest stay passive).
fn object_executor(cfg: SystemConfig) -> ManualExecutor<u64, ObjectConsensus<u64>> {
    let last = p(cfg.n() as u32 - 1);
    let mut ex = ManualExecutor::new(cfg, |q| {
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(p(0)))
            .object::<u64>(q)
    });
    ex.start_all();
    ex.propose(p(0), 10);
    ex.propose(last, 20);
    ex
}

fn run_object(cfg: SystemConfig, max_states: usize, workers: usize) -> CheckOutcome {
    task_checker(cfg.f(), max_states, workers)
        .proposed(vec![10, 20])
        .run(cfg, object_executor)
}

/// Delivers (and records) every pending message matching `pred`, in
/// send order, until none remain. The recorded [`Action`]s make a
/// staged prefix replayable through `twostep-fuzz`.
fn deliver_all_matching<P>(
    ex: &mut ManualExecutor<u64, P>,
    rec: &mut Vec<Action>,
    pred: &dyn Fn(ProcessId, ProcessId, &Msg<u64>) -> bool,
) where
    P: Protocol<u64, Message = Msg<u64>>,
{
    while let Some((id, action)) = ex
        .pending()
        .iter()
        .find(|m| pred(m.from, m.to, &m.msg))
        .map(|m| {
            (
                m.id,
                Action::Deliver {
                    from: m.from,
                    to: m.to,
                    key: m.content_key(),
                },
            )
        })
    {
        ex.deliver(id);
        rec.push(action);
    }
}

/// Values for the staged `(2, 2)` task rows: `p1` contends with 20
/// against everyone else's 10.
fn staged_task_values(n: usize) -> Vec<u64> {
    (0..n).map(|i| if i == 1 { 20 } else { 10 }).collect()
}

/// Stages the `(2, 2)` task adversary (recording each action): `p0`'s
/// `Propose(10)` reaches `{p2, p3}` (they vote 10), `p1`'s
/// `Propose(20)` reaches `p0` and `p4..` (they vote 20 — the task
/// variant has no object guard, so 20 ≥ their initial suffices), the
/// returning votes give `p1` a fast quorum `n−e` and it fast-decides
/// 20, then both proposers `{p0, p1}` crash. The recovery leader is
/// `p2`, so at `n = 5` the slow quorum sees both crashed proposers
/// outside `Q`, includes all votes, and the `count > threshold` branch
/// resurrects 10 — the Theorem 5 violation. At `n = 6` the same prefix
/// is safe (the tally ties and the max-value tiebreak re-selects 20).
fn stage_task(cfg: SystemConfig) -> (ManualExecutor<u64, TaskConsensus<u64>>, Vec<Action>) {
    let n = cfg.n() as u32;
    let mut ex = task_executor(cfg, staged_task_values(cfg.n()), p(2));
    let mut rec = Vec::new();
    for voter in [p(2), p(3)] {
        deliver_all_matching(&mut ex, &mut rec, &|from, to, msg| {
            from == p(0) && to == voter && matches!(msg, Msg::Propose(_))
        });
    }
    let twenty_voters: Vec<ProcessId> = std::iter::once(p(0)).chain((4..n).map(p)).collect();
    for voter in &twenty_voters {
        let voter = *voter;
        deliver_all_matching(&mut ex, &mut rec, &|from, to, msg| {
            from == p(1) && to == voter && matches!(msg, Msg::Propose(_))
        });
        deliver_all_matching(&mut ex, &mut rec, &|from, to, msg| {
            from == voter && to == p(1) && matches!(msg, Msg::TwoB(..))
        });
    }
    assert_eq!(
        ex.decision_of(p(1)),
        Some(&20),
        "staging must complete the fast path"
    );
    for victim in [p(0), p(1)] {
        ex.crash(victim);
        rec.push(Action::Crash(victim));
    }
    (ex, rec)
}

/// Stages the `(2, 2)` object adversary: `p1`'s `Propose(20)` reaches
/// the `n−e−1` passive processes `p3..`, their votes complete `p1`'s
/// fast quorum (20 decided), `p0`'s `Propose(10)` reaches `p2`, then
/// `p1` and the last voter crash. At the object bound (`n ≥ 2e+f−1`)
/// every continuation must re-select 20: the surviving voters' reports
/// name the crashed proposer `p1`, which recovery cannot place inside
/// its quorum, so the decided value stays visible.
fn stage_object(cfg: SystemConfig) -> (ManualExecutor<u64, ObjectConsensus<u64>>, Vec<Action>) {
    let n = cfg.n() as u32;
    let mut ex = ManualExecutor::new(cfg, |q| {
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(p(0)))
            .object::<u64>(q)
    });
    ex.start_all();
    ex.propose(p(0), 10);
    ex.propose(p(1), 20);
    let mut rec = Vec::new();
    for voter in (3..n).map(p) {
        deliver_all_matching(&mut ex, &mut rec, &|from, to, msg| {
            from == p(1) && to == voter && matches!(msg, Msg::Propose(_))
        });
        deliver_all_matching(&mut ex, &mut rec, &|from, to, msg| {
            from == voter && to == p(1) && matches!(msg, Msg::TwoB(..))
        });
    }
    assert_eq!(
        ex.decision_of(p(1)),
        Some(&20),
        "staging must complete the fast path"
    );
    deliver_all_matching(&mut ex, &mut rec, &|from, to, msg| {
        from == p(0) && to == p(2) && matches!(msg, Msg::Propose(_))
    });
    for victim in [p(1), p(n - 1)] {
        ex.crash(victim);
        rec.push(Action::Crash(victim));
    }
    (ex, rec)
}

/// Suffix checker for the staged rows: the crash budget is spent by the
/// prefix, one recovery ballot at `recovery_leader`.
fn staged_checker(
    recovery_leader: ProcessId,
    max_states: usize,
    workers: usize,
) -> ModelChecker<u64> {
    ModelChecker::new()
        .max_states(max_states)
        .max_crashes(0)
        .timer_budget(1, vec![TimerId::NEW_BALLOT])
        .timer_processes([recovery_leader].into_iter().collect())
        .workers(workers)
        .proposed(vec![10, 20])
}

/// Runs a staged task row. On violation, returns the full end-to-end
/// `twostep-fuzz` replay command (recorded prefix + searched suffix).
fn run_staged_task(
    cfg: SystemConfig,
    max_states: usize,
    workers: usize,
) -> (CheckOutcome, Option<String>) {
    let outcome = staged_checker(p(2), max_states, workers).run(cfg, |cfg| stage_task(cfg).0);
    let replay = if let CheckOutcome::Violation { script, .. } = &outcome {
        let (_, prefix) = stage_task(cfg);
        let full: Vec<Action> = prefix.iter().chain(script.iter()).copied().collect();
        let values = staged_task_values(cfg.n());
        let csv = values
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        fuzz_replay_tokens(
            cfg,
            move |cfg| task_executor(cfg, values.clone(), p(2)),
            &full,
        )
        .map(|tokens| {
            format!(
                "twostep-fuzz --protocol task --e {} --f {} --n {} --allow-below-bound \
                 --leader 2 --values {csv} --replay '{}'",
                cfg.e(),
                cfg.f(),
                cfg.n(),
                tokens.join(" ")
            )
        })
    } else {
        None
    };
    (outcome, replay)
}

fn run_staged_object(cfg: SystemConfig, max_states: usize, workers: usize) -> CheckOutcome {
    staged_checker(p(0), max_states, workers).run(cfg, |cfg| stage_object(cfg).0)
}

/// The `FastBft` baseline at the `n = 3f+1` Byzantine floor, in
/// pinned-leader mode (the heartbeat substrate off, as with the
/// two-step protocols' `OmegaMode::Static`), crash-only schedules, and
/// timer budget 0: the fast path plus crash tolerance. The leader-change
/// recovery dimension is excluded here (state-space infeasible) and
/// exercised by the fuzzer's Byzantine campaign instead.
fn run_fastbft(workers: usize) -> Result<CheckOutcome, String> {
    let byz = ByzConfig::new(4, 1, ByzVariant::Fab).map_err(|e| e.to_string())?;
    let sim = SystemConfig::new(byz.n(), byz.f(), byz.f()).map_err(|e| e.to_string())?;
    let outcome = ModelChecker::new()
        .max_states(1_000_000)
        .max_crashes(byz.f())
        .timer_budget(0, vec![TimerId::NEW_BALLOT])
        .timer_processes(leader_only())
        .workers(workers)
        .proposed(vec![10, 20])
        .run(sim, move |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| {
                FastBft::new(byz, q, if q.index() == 0 { 10u64 } else { 20 }).pinned_leader(p(0))
            });
            ex.start_all();
            ex
        });
    Ok(outcome)
}

fn row_from_outcome(
    label: String,
    expect: Expectation,
    outcome: &CheckOutcome,
    replay: Option<&str>,
) -> ConfigRow {
    let stats = outcome.stats();
    let (ok, truncated, detail) = match (expect, outcome) {
        (Expectation::Clean, CheckOutcome::Clean { truncated, .. }) => (
            !truncated,
            *truncated,
            if *truncated {
                "clean but TRUNCATED — not exhaustive".to_string()
            } else {
                "exhaustively clean".to_string()
            },
        ),
        (Expectation::Clean, CheckOutcome::Violation { report, .. }) => {
            (false, false, format!("unexpected violation: {report}"))
        }
        (Expectation::Violation, CheckOutcome::Violation { report, script, .. }) => {
            let mut detail = format!("found in {} steps: {report}", script.len());
            match replay {
                Some(cmd) => {
                    let _ = write!(detail, "; replay: {cmd}");
                }
                None => detail.push_str("; replay: TOKENIZATION FAILED"),
            }
            (replay.is_some(), false, detail)
        }
        (Expectation::Violation, CheckOutcome::Clean { truncated, .. }) => (
            false,
            *truncated,
            "below-bound violation NOT found".to_string(),
        ),
        (Expectation::Unconstructible, _) => unreachable!("skipped rows never run"),
    };
    ConfigRow {
        label,
        expect,
        ok,
        states: stats.states,
        truncated,
        transitions: stats.transitions,
        deduped: stats.deduped,
        scrubbed: stats.scrubbed,
        states_per_sec: stats.states_per_sec(),
        elapsed: stats.elapsed,
        detail,
    }
}

fn skipped_row(label: String) -> ConfigRow {
    ConfigRow {
        label,
        expect: Expectation::Unconstructible,
        ok: true,
        states: 0,
        truncated: false,
        transitions: 0,
        deduped: 0,
        scrubbed: 0,
        states_per_sec: 0.0,
        elapsed: Duration::ZERO,
        detail: "n < 2f+1, SystemConfig rejects".to_string(),
    }
}

/// Per-row state caps: generous for the unconstrained `(1, 1)` rows,
/// tight for the staged suffixes (measured in the low thousands).
const FULL_ROW_CAP: usize = 4_000_000;
const STAGED_ROW_CAP: usize = 2_000_000;

/// Runs the full boundary sweep plus the reduction reference.
pub fn run_gate(workers: usize) -> GateOutcome {
    let mut rows = Vec::new();
    for (e, f) in [(1usize, 1usize), (2, 2)] {
        let staged = f == 2;
        for n in (2 * e + f - 2)..=(2 * e + f) {
            let mode = if staged { "staged+search" } else { "crash<=1" };
            // Task variant.
            let task_label = format!("task   n={n} e={e} f={f} {mode}");
            match SystemConfig::new(n, e, f) {
                Err(_) => rows.push(skipped_row(task_label)),
                Ok(cfg) => {
                    let expect = if n >= (2 * e + f).max(2 * f + 1) {
                        Expectation::Clean
                    } else {
                        Expectation::Violation
                    };
                    let (outcome, replay) = if staged {
                        run_staged_task(cfg, STAGED_ROW_CAP, workers)
                    } else {
                        (run_task(cfg, FULL_ROW_CAP, workers), None)
                    };
                    rows.push(row_from_outcome(
                        task_label,
                        expect,
                        &outcome,
                        replay.as_deref(),
                    ));
                }
            }
            // Object variant.
            let obj_label = format!("object n={n} e={e} f={f} {mode}");
            match SystemConfig::new(n, e, f) {
                Err(_) => rows.push(skipped_row(obj_label)),
                Ok(cfg) => {
                    let expect = if n >= (2 * e + f - 1).max(2 * f + 1) {
                        Expectation::Clean
                    } else {
                        Expectation::Violation
                    };
                    let outcome = if staged {
                        run_staged_object(cfg, STAGED_ROW_CAP, workers)
                    } else {
                        run_object(cfg, FULL_ROW_CAP, workers)
                    };
                    rows.push(row_from_outcome(obj_label, expect, &outcome, None));
                }
            }
        }
    }
    // FastBft at the 3f+1 floor.
    let fb_label = "fastbft n=4 f=1 pinned, timer 0".to_string();
    match run_fastbft(workers) {
        Ok(outcome) => rows.push(row_from_outcome(
            fb_label,
            Expectation::Clean,
            &outcome,
            None,
        )),
        Err(e) => {
            let mut row = skipped_row(fb_label);
            row.ok = false;
            row.detail = format!("config error: {e}");
            rows.push(row);
        }
    }

    // Reduction reference: the object n = 4 configuration, explored
    // reduced (must complete) vs unreduced (capped — ratio is a lower
    // bound when the cap is hit).
    let cfg = SystemConfig::new(4, 1, 1).expect("n=4 e=1 f=1 is valid");
    let reduced = run_object(cfg, FULL_ROW_CAP, workers);
    let unreduced = task_checker(1, UNREDUCED_REFERENCE_CAP, workers)
        .symmetry(false)
        .por(false)
        .proposed(vec![10, 20])
        .run(cfg, object_executor);
    let (rs, us) = (reduced.stats().states, unreduced.stats().states);
    let ratio = if rs > 0 { us as f64 / rs as f64 } else { 0.0 };
    let reduced_exhaustive = matches!(
        reduced,
        CheckOutcome::Clean {
            truncated: false,
            ..
        }
    );
    let unreduced_clean = matches!(unreduced, CheckOutcome::Clean { .. });
    let unreduced_truncated = matches!(
        unreduced,
        CheckOutcome::Clean {
            truncated: true,
            ..
        }
    );
    let reduction = ReductionRow {
        unreduced_states: us,
        unreduced_truncated,
        reduced_states: rs,
        ratio,
        ok: reduced_exhaustive && unreduced_clean && ratio >= MIN_REDUCTION_RATIO,
    };
    GateOutcome { rows, reduction }
}

/// The seeded-broken fixture: `no_object_guard` at the object bound
/// (n = 5, e = f = 2), staged into a contended fast round with the
/// ablated guard letting `{p2, p3}` vote for `p4`'s value. The checker
/// must find the agreement violation in the continuations; CI runs this
/// with an inverted assertion.
///
/// Returns `(violation_found, report_text)`; the report includes the
/// full `twostep-fuzz --replay` command reproducing the violation
/// (staging prefix + searched suffix).
pub fn run_seeded_broken(workers: usize) -> (bool, String) {
    let cfg = SystemConfig::minimal_object(2, 2).expect("e=f=2 object config");

    let outcome = ModelChecker::new()
        .max_states(2_000_000)
        .timer_budget(1, vec![TimerId::NEW_BALLOT])
        .timer_processes(leader_only())
        .workers(workers)
        .run(cfg, |cfg| stage_broken(cfg).0);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# seeded-broken fixture: object n={} e={} f={}, ablation no_object_guard",
        cfg.n(),
        cfg.e(),
        cfg.f()
    );
    match &outcome {
        CheckOutcome::Violation {
            report,
            script,
            states,
            stats,
        } => {
            let _ = writeln!(
                out,
                "violation found after {states} states ({:.0} states/s): {report}",
                stats.states_per_sec()
            );
            let _ = writeln!(out, "searched suffix: {} steps", script.len());
            // Full schedule = the deterministic staging prefix + the
            // searched suffix, tokenized against an *unstaged* executor
            // (start_all + the five proposals — exactly what the fuzzer
            // reconstructs from `p:` tokens).
            let (_, prefix) = stage_broken(cfg);
            let full: Vec<Action> = prefix.iter().chain(script.iter()).copied().collect();
            match fuzz_replay_tokens(cfg, |cfg| base_broken(cfg).0, &full) {
                Some(tokens) => {
                    let proposes: Vec<String> = base_broken(cfg).1;
                    let schedule: Vec<String> = proposes.into_iter().chain(tokens).collect();
                    let _ = writeln!(
                        out,
                        "replay: twostep-fuzz --protocol object --e {} --f {} --n {} \
                         --ablate no_object_guard --leader 0 --replay '{}'",
                        cfg.e(),
                        cfg.f(),
                        cfg.n(),
                        schedule.join(" ")
                    );
                }
                None => {
                    let _ = writeln!(out, "replay: TOKENIZATION FAILED (schedule/setup mismatch)");
                }
            }
        }
        CheckOutcome::Clean {
            states, truncated, ..
        } => {
            let _ = writeln!(
                out,
                "NO violation found ({states} states, truncated={truncated}) — \
                 the gate cannot detect seeded bugs"
            );
        }
    }
    (matches!(outcome, CheckOutcome::Violation { .. }), out)
}

/// The fixture's unstaged base system: object consensus with the guard
/// ablated, started, with the five proposals issued. Returns the
/// executor and the matching `p:A=V` fuzz tokens.
fn base_broken(cfg: SystemConfig) -> (ManualExecutor<u64, ObjectConsensus<u64>>, Vec<String>) {
    let mut ex = ManualExecutor::new(cfg, |q| {
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(p(0)))
            .ablations(Ablations {
                no_object_guard: true,
                ..Ablations::NONE
            })
            .object::<u64>(q)
    });
    ex.start_all();
    let mut tokens = Vec::new();
    // E0 = {p0, p1} and F0 = {p2} propose 0; E1 = {p3, p4} propose 1.
    for i in 0..cfg.n() as u32 {
        let v = u64::from(i >= (cfg.n() - cfg.e()) as u32);
        ex.propose(p(i), v);
        tokens.push(format!("p:{i}={v}"));
    }
    (ex, tokens)
}

/// Stages the contended fast round (recording each action): `p4` wins
/// the fast quorum through the ablated guard, `p0`/`p1` vote for `p2`'s
/// value, then `{p2, p4}` crash. The checker explores every
/// continuation.
fn stage_broken(cfg: SystemConfig) -> (ManualExecutor<u64, ObjectConsensus<u64>>, Vec<Action>) {
    let (mut ex, _) = base_broken(cfg);
    let mut rec = Vec::new();
    for voter in [p(2), p(3)] {
        deliver_all_matching(&mut ex, &mut rec, &|from, to, msg| {
            from == p(4) && to == voter && matches!(msg, Msg::Propose(_))
        });
        deliver_all_matching(&mut ex, &mut rec, &|from, to, msg| {
            from == voter && to == p(4) && matches!(msg, Msg::TwoB(..))
        });
    }
    assert_eq!(
        ex.decision_of(p(4)),
        Some(&1),
        "staging must complete the fast path"
    );
    for target in [p(0), p(1)] {
        deliver_all_matching(&mut ex, &mut rec, &|from, to, msg| {
            from == p(2) && to == target && matches!(msg, Msg::Propose(_))
        });
    }
    ex.crash(p(2));
    rec.push(Action::Crash(p(2)));
    ex.crash(p(4));
    rec.push(Action::Crash(p(4)));
    (ex, rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_broken_fixture_goes_red_with_replayable_counterexample() {
        let (found, report) = run_seeded_broken(1);
        assert!(found, "the gate must detect the seeded bug:\n{report}");
        assert!(
            report.contains("replay: twostep-fuzz --protocol object"),
            "counterexample must be emitted as a fuzz replay command:\n{report}"
        );
    }

    #[test]
    fn smallest_boundary_config_is_clean() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = run_task(cfg, 4_000_000, 1);
        match outcome {
            CheckOutcome::Clean { truncated, .. } => assert!(!truncated),
            CheckOutcome::Violation { report, .. } => panic!("at-bound task violated: {report}"),
        }
    }

    #[test]
    fn staged_task_below_bound_finds_real_violation() {
        let cfg = SystemConfig::new(5, 2, 2).unwrap();
        let (outcome, replay) = run_staged_task(cfg, STAGED_ROW_CAP, 1);
        match outcome {
            CheckOutcome::Violation { report, .. } => {
                assert!(
                    report.contains("agreement"),
                    "expected an agreement violation, got: {report}"
                );
            }
            CheckOutcome::Clean {
                states, truncated, ..
            } => panic!(
                "task n=5 e=2 f=2 staged adversary must violate Theorem 5 \
                 ({states} states, truncated={truncated})"
            ),
        }
        let replay = replay.expect("violation must tokenize into a fuzz replay command");
        assert!(
            replay.starts_with("twostep-fuzz --protocol task"),
            "bad replay command: {replay}"
        );
    }

    #[test]
    fn staged_task_at_bound_is_clean() {
        let cfg = SystemConfig::new(6, 2, 2).unwrap();
        let (outcome, _) = run_staged_task(cfg, STAGED_ROW_CAP, 1);
        match outcome {
            CheckOutcome::Clean { truncated, .. } => assert!(!truncated),
            CheckOutcome::Violation { report, .. } => {
                panic!("task n=6 e=2 f=2 staged adversary must be safe: {report}")
            }
        }
    }

    #[test]
    fn staged_object_rows_are_clean() {
        for n in [5usize, 6] {
            let cfg = SystemConfig::new(n, 2, 2).unwrap();
            let outcome = run_staged_object(cfg, STAGED_ROW_CAP, 1);
            match outcome {
                CheckOutcome::Clean { truncated, .. } => assert!(!truncated),
                CheckOutcome::Violation { report, .. } => {
                    panic!("object n={n} e=2 f=2 staged adversary must be safe: {report}")
                }
            }
        }
    }
}
