//! Source-level lint for the protocol crates.
//!
//! Five rules, each encoding a convention the safety argument depends
//! on:
//!
//! * **`wildcard-arm`** — a `_ =>` arm in a `match` whose patterns
//!   mention a protocol message/state enum. Protocol handlers must be
//!   exhaustive: a silent catch-all swallows the next message variant
//!   someone adds and turns a missing-case bug into a liveness bug.
//!   Matches that never mention a protocol enum (e.g. on `TimerId`
//!   constants, which are struct consts with a mandatory catch-all) are
//!   out of scope.
//! * **`unwrap-expect`** — `.unwrap()` / `.expect(…)` in non-test
//!   protocol code. A malformed message or state must degrade, not
//!   crash a replica.
//! * **`unchecked-quorum-arith`** — bare `+`/`-` on the same line as
//!   quorum arithmetic (`fast_quorum()`, `slow_quorum()`,
//!   `recovery_threshold()`, `.n()`, `.e()`, `.f()`), unless the line
//!   uses `saturating_*`/`checked_*`/`wrapping_*`. Quorum underflow is
//!   exactly how a below-bound configuration turns into silent
//!   agreement loss.
//! * **`debug-assert`** — `debug_assert!` family in protocol code:
//!   safety invariants must hold in release builds too.
//! * **`relaxed-atomic`** — `Ordering::Relaxed` in non-test code.
//!   Relaxed operations provide no happens-before edge, so any use that
//!   *publishes* state to another thread (a doorbell flag, a
//!   reactor-wakeup, a queue head) is a silent race; the reactor's
//!   doorbell correctly uses `Release`/`AcqRel` for exactly this
//!   reason. The only legitimate uses are values that never guard other
//!   memory — statistical counters and unique-token generators — and
//!   each one must be audited into the allowlist.
//! * **`phase-construction`** — a typestate phase type
//!   ([`PHASE_TYPES`]) constructed outside `crates/core`: a struct
//!   literal (`FastVoting { … }`) or an associated-function call
//!   (`RecoveryGt::new(…)`). The typestate redesign makes illegal
//!   transitions unrepresentable *only* if phase values are born inside
//!   the core crate's constructors; a phase literal elsewhere would
//!   reopen every bypassed invariant (the red line, the forced `1A`
//!   broadcast, the decision effect). Variant *uses* spelled
//!   `Path::RecoveryGt` / `PhaseKind::Decided` (preceded by `::`) and
//!   enum/struct declarations are out of scope. This rule is applied to
//!   every scanned crate except `crates/core` itself.
//!
//! `#[cfg(test)]` modules are skipped entirely. Findings can be waived
//! through an allowlist file ([`Allowlist`]) whose entries document an
//! audit, one per line: `path-suffix:rule:line-substring`.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{blank_comments_and_strings, line_of, word_positions};

/// Rule identifiers, as used in findings and allowlist entries.
pub const RULES: [&str; 6] = [
    "wildcard-arm",
    "unwrap-expect",
    "unchecked-quorum-arith",
    "debug-assert",
    "relaxed-atomic",
    "phase-construction",
];

/// The typestate phase types of `crates/core` (voter phases, leader
/// phases, and the recovery-case types) whose construction the
/// `phase-construction` rule confines to the core crate.
pub const PHASE_TYPES: [&str; 7] = [
    "FastVoting",
    "SlowBallot",
    "Decided",
    "Collecting",
    "Proposing",
    "RecoveryGt",
    "RecoveryEq",
];

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt
        )
    }
}

/// Parsed allowlist: `path-suffix:rule:line-substring` entries.
///
/// A finding is waived when its file path ends with `path-suffix`, its
/// rule matches `rule` exactly, and the original source line contains
/// `line-substring`. Substring matching (rather than line numbers)
/// keeps entries stable across unrelated edits; each entry should cite
/// the audit reasoning in a `#` comment above it.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<(String, String, String)>,
}

impl Allowlist {
    /// Parses allowlist text. `#` comments and blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed line.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ':');
            let (Some(suffix), Some(rule), Some(substr)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "allowlist line {}: expected path-suffix:rule:line-substring, got {line:?}",
                    i + 1
                ));
            };
            if !RULES.contains(&rule) {
                return Err(format!(
                    "allowlist line {}: unknown rule {rule:?} (expected one of {RULES:?})",
                    i + 1
                ));
            }
            entries.push((suffix.to_string(), rule.to_string(), substr.to_string()));
        }
        Ok(Allowlist { entries })
    }

    /// Loads and parses an allowlist file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors as strings, plus [`Allowlist::parse`]
    /// errors.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read allowlist {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    fn entry_matches(entry: &(String, String, String), finding: &Finding) -> bool {
        let (suffix, rule, substr) = entry;
        finding.file.to_string_lossy().ends_with(suffix.as_str())
            && finding.rule == rule
            && finding.excerpt.contains(substr.as_str())
    }

    /// Whether `finding` is waived.
    pub fn allows(&self, finding: &Finding) -> bool {
        self.entries.iter().any(|e| Self::entry_matches(e, finding))
    }

    /// Entries that waive none of `findings` (the *pre*-allowlist
    /// finding set): each one is a stale audit whose subject has been
    /// fixed or rewritten, and keeping it would silently waive the next
    /// unrelated finding that happens to match. The CI gate treats a
    /// nonempty result as a failure, so the allowlist prunes itself.
    pub fn stale_entries(&self, findings: &[Finding]) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| !findings.iter().any(|f| Self::entry_matches(e, f)))
            .map(|(suffix, rule, substr)| format!("{suffix}:{rule}:{substr}"))
            .collect()
    }

    /// Number of entries (for reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A source file prepared for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path (used in findings and allowlist matching).
    pub path: PathBuf,
    /// Raw source text.
    pub source: String,
}

/// Recursively collects `.rs` files under each of `dirs`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn collect_sources(dirs: &[PathBuf]) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for dir in dirs {
        walk(dir, &mut out)?;
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(SourceFile {
                source: fs::read_to_string(&path)?,
                path,
            });
        }
    }
    Ok(())
}

/// Collects every `enum` name declared in `files` (on blanked text, so
/// commented-out declarations do not count).
pub fn collect_enums(files: &[SourceFile]) -> BTreeSet<String> {
    let mut enums = BTreeSet::new();
    for file in files {
        let blanked = blank_comments_and_strings(&file.source);
        for idx in word_positions(&blanked, "enum") {
            let rest = &blanked[idx + "enum".len()..];
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() && name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                enums.insert(name);
            }
        }
    }
    enums
}

/// Lints `file` against all rules, given the set of protocol enum
/// names. Findings inside `#[cfg(test)]` blocks are suppressed.
pub fn lint_file(file: &SourceFile, enums: &BTreeSet<String>) -> Vec<Finding> {
    let blanked = blank_comments_and_strings(&file.source);
    let test_ranges = cfg_test_ranges(&blanked);
    let in_tests = |idx: usize| test_ranges.iter().any(|(a, b)| (*a..*b).contains(&idx));
    let mut findings = Vec::new();
    let mut push = |idx: usize, rule: &'static str| {
        if in_tests(idx) {
            return;
        }
        let line = line_of(&blanked, idx);
        let excerpt = file
            .source
            .lines()
            .nth(line - 1)
            .unwrap_or_default()
            .trim()
            .to_string();
        findings.push(Finding {
            file: file.path.clone(),
            line,
            rule,
            excerpt,
        });
    };

    // wildcard-arm.
    for m in word_positions(&blanked, "match") {
        let Some((body_start, body_end)) = match_body(&blanked, m + "match".len()) else {
            continue;
        };
        let body = &blanked[body_start..body_end];
        let patterns = arm_patterns(body);
        let mentions_protocol_enum = patterns
            .iter()
            .any(|(_, p)| enums.iter().any(|e| p.contains(&format!("{e}::"))));
        if !mentions_protocol_enum {
            continue;
        }
        for (off, pattern) in &patterns {
            if pattern == "_" {
                push(body_start + off, "wildcard-arm");
            }
        }
    }

    // unwrap-expect.
    for word in ["unwrap", "expect"] {
        for idx in word_positions(&blanked, word) {
            let before_dot = blanked[..idx].trim_end().ends_with('.');
            let after = blanked[idx + word.len()..].trim_start();
            if before_dot && after.starts_with('(') {
                push(idx, "unwrap-expect");
            }
        }
    }

    // unchecked-quorum-arith.
    let mut offset = 0;
    for line in blanked.lines() {
        let quorumy = ["fast_quorum(", "slow_quorum(", "recovery_threshold("]
            .iter()
            .any(|t| line.contains(t))
            || [".n()", ".e()", ".f()"].iter().any(|t| line.contains(t));
        let guarded = ["saturating_", "checked_", "wrapping_"]
            .iter()
            .any(|t| line.contains(t));
        if quorumy && !guarded && has_bare_plus_minus(line) {
            push(offset, "unchecked-quorum-arith");
        }
        offset += line.len() + 1;
    }

    // debug-assert.
    let mut start = 0;
    while let Some(off) = blanked[start..].find("debug_assert") {
        let idx = start + off;
        let boundary = idx == 0
            || !blanked.as_bytes()[idx - 1].is_ascii_alphanumeric()
                && blanked.as_bytes()[idx - 1] != b'_';
        if boundary {
            push(idx, "debug-assert");
        }
        start = idx + "debug_assert".len();
    }

    // relaxed-atomic.
    let mut start = 0;
    while let Some(off) = blanked[start..].find("Ordering::Relaxed") {
        let idx = start + off;
        push(idx, "relaxed-atomic");
        start = idx + "Ordering::Relaxed".len();
    }

    // phase-construction.
    let enum_bodies = enum_body_ranges(&blanked);
    let in_enum_body = |idx: usize| enum_bodies.iter().any(|(a, b)| (*a..*b).contains(&idx));
    for name in PHASE_TYPES {
        for idx in word_positions(&blanked, name) {
            // `Path::Decided`, `PhaseKind::Decided { .. }` etc. are
            // variant *uses*, not phase-struct constructions.
            if blanked[..idx].trim_end().ends_with("::") {
                continue;
            }
            // A variant named like a phase type inside some other
            // enum's declaration (e.g. `TraceEvent::Decided { .. }`).
            if in_enum_body(idx) {
                continue;
            }
            // Declarations of a same-named item are not constructions,
            // and neither is `impl X for Decided { … }`.
            if matches!(
                previous_word(&blanked, idx).as_str(),
                "struct" | "enum" | "impl" | "trait" | "union" | "for"
            ) {
                continue;
            }
            // `fn f() -> Decided { … }`: a return type followed by the
            // body brace. `->` always precedes a type, never an
            // expression, so this cannot be a struct literal.
            if blanked[..idx].trim_end().ends_with("->") {
                continue;
            }
            let after = blanked[idx + name.len()..].trim_start();
            let is_struct_literal = after.starts_with('{');
            let is_assoc_call = after.strip_prefix("::").is_some_and(|rest| {
                let rest = rest.trim_start();
                let ident: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                ident.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                    && rest[ident.len()..].trim_start().starts_with('(')
            });
            if is_struct_literal || is_assoc_call {
                push(idx, "phase-construction");
            }
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Like [`lint_file`], restricted to a subset of [`RULES`] — used for
/// directories where only some conventions apply (e.g. the runtime and
/// telemetry crates are not protocol handlers, but their atomics still
/// deserve the `relaxed-atomic` audit).
pub fn lint_file_rules(
    file: &SourceFile,
    enums: &BTreeSet<String>,
    rules: &[&str],
) -> Vec<Finding> {
    lint_file(file, enums)
        .into_iter()
        .filter(|f| rules.contains(&f.rule))
        .collect()
}

/// Whether `line` (blanked) contains a `+` or `-` used as an operator
/// (not `->`, and not unary minus in `e-` exponents, which cannot occur
/// after blanking).
fn has_bare_plus_minus(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, b) in bytes.iter().enumerate() {
        match b {
            b'+' => return true,
            b'-' if bytes.get(i + 1) != Some(&b'>') => return true,
            _ => {}
        }
    }
    false
}

/// Byte ranges of `enum` declaration bodies (open brace through the
/// matching close brace), used to exempt same-named variants of other
/// enums from the `phase-construction` rule.
fn enum_body_ranges(blanked: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for idx in word_positions(blanked, "enum") {
        let Some(open) = blanked[idx..].find('{').map(|o| idx + o) else {
            continue;
        };
        if let Some(end) = matching_brace(blanked, open) {
            ranges.push((open, end));
        }
    }
    ranges
}

/// The identifier-or-keyword word immediately before byte `idx`
/// (empty if the preceding non-space text is not a word).
fn previous_word(blanked: &str, idx: usize) -> String {
    let rev: String = blanked[..idx]
        .trim_end()
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    rev.chars().rev().collect()
}

/// Byte ranges of `#[cfg(test)]`-gated items (attribute through the
/// matching close brace of the following item).
pub(crate) fn cfg_test_ranges(blanked: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut start = 0;
    while let Some(off) = blanked[start..].find("#[cfg(test)]") {
        let attr = start + off;
        // The gated item runs to the matching brace of the first block
        // after the attribute.
        let Some(open) = blanked[attr..].find('{').map(|o| attr + o) else {
            break;
        };
        let end = matching_brace(blanked, open).unwrap_or(blanked.len());
        ranges.push((attr, end));
        start = end;
    }
    ranges
}

/// Offset one past the `}` matching the `{` at `open`.
fn matching_brace(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds the `{ … }` body of a `match` whose keyword ends at `after_kw`:
/// the first `{` at zero paren/bracket depth. Returns `(body_start,
/// body_end)` excluding the braces.
fn match_body(blanked: &str, after_kw: usize) -> Option<(usize, usize)> {
    let bytes = blanked.as_bytes();
    let mut depth = 0i32;
    let mut i = after_kw;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => {
                let end = matching_brace(blanked, i)?;
                return Some((i + 1, end - 1));
            }
            // A `;` or unbalanced close before any `{`: not a match
            // expression after all (e.g. `match` used as an ident in a
            // macro) — bail out.
            b';' => return None,
            b'}' if depth == 0 => return None,
            b'{' => depth += 1,
            b'}' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Splits a match body into `(offset, pattern)` pairs, one per arm.
fn arm_patterns(body: &str) -> Vec<(usize, String)> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut seg_start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'=' if depth == 0 && bytes.get(i + 1) == Some(&b'>') => {
                let pattern = body[seg_start..i].trim();
                out.push((
                    seg_start + leading_ws(&body[seg_start..i]),
                    pattern.to_string(),
                ));
                i += 2;
                i = skip_arm_body(body, i);
                seg_start = i;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

fn leading_ws(s: &str) -> usize {
    s.len() - s.trim_start().len()
}

/// Advances past one arm body starting at `i` (after `=>`): a block
/// plus optional comma, or an expression up to the next top-level
/// comma.
fn skip_arm_body(body: &str, mut i: usize) -> usize {
    let bytes = body.as_bytes();
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'{' {
        i = matching_brace(body, i).unwrap_or(body.len());
    } else {
        let mut depth = 0i32;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    if depth == 0 {
                        return i;
                    }
                    depth -= 1;
                }
                b',' if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
    }
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b',' {
        i += 1;
    }
    i
}

/// Lints all `files`, applying `allow`. Returns surviving findings.
pub fn lint_sources(files: &[SourceFile], allow: &Allowlist) -> Vec<Finding> {
    let enums = collect_enums(files);
    let mut findings = Vec::new();
    for file in files {
        findings.extend(
            lint_file(file, &enums)
                .into_iter()
                .filter(|f| !allow.allows(f)),
        );
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            path: PathBuf::from("mem/test.rs"),
            source: src.to_string(),
        }
    }

    fn lint(src: &str) -> Vec<Finding> {
        let f = file(src);
        let enums = collect_enums(std::slice::from_ref(&f));
        lint_file(&f, &enums)
    }

    #[test]
    fn wildcard_on_protocol_enum_is_flagged() {
        let src = "enum Msg { A, B }\n\
                   fn f(m: Msg) { match m { Msg::A => {}\n_ => {} } }";
        let hits = lint(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "wildcard-arm");
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn wildcard_on_non_enum_match_is_not_flagged() {
        // TimerId-style: struct consts, no enum declared.
        let src = "fn f(t: u32) { match t { 1 => {}, _ => {} } }";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn named_catchall_and_guarded_wildcard_are_not_flagged() {
        let src = "enum Msg { A, B }\n\
                   fn f(m: Msg, c: bool) {\n\
                     match m { Msg::A => {}, other => drop(other) }\n\
                     match m { Msg::A if c => {}, Msg::A => {}, Msg::B => {} }\n\
                   }";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn unwrap_and_expect_are_flagged_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"y\") }\n\
                   #[cfg(test)]\nmod tests { fn g(x: Option<u32>) { x.unwrap(); } }";
        let hits = lint(src);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|h| h.rule == "unwrap-expect"));
        assert!(hits.iter().all(|h| h.line == 1));
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn unchecked_quorum_arith_is_flagged() {
        let src = "fn f(cfg: &C) -> usize { cfg.fast_quorum() - 1 }";
        let hits = lint(src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "unchecked-quorum-arith");
    }

    #[test]
    fn saturating_quorum_arith_is_not_flagged() {
        let src = "fn f(cfg: &C) -> usize { cfg.fast_quorum().saturating_sub(1) }";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn arrow_is_not_arithmetic() {
        let src = "fn f(cfg: &C) -> usize { cfg.fast_quorum() }";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn debug_assert_is_flagged() {
        let src = "fn f(q: usize, n: usize) { debug_assert!(q <= n); }";
        let hits = lint(src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "debug-assert");
    }

    #[test]
    fn relaxed_atomic_is_flagged_outside_tests() {
        let src = "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n\
                   c.fetch_add(1, Ordering::Relaxed)\n\
                   }\n\
                   #[cfg(test)]\nmod tests { fn g(c: &A) { c.load(Ordering::Relaxed); } }";
        let hits = lint(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "relaxed-atomic");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn acquire_release_orderings_are_not_flagged() {
        let src = "fn f(c: &A) { c.store(1, Ordering::Release); c.load(Ordering::Acquire); }";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn rule_filtering_drops_out_of_scope_findings() {
        let src = "fn f(x: Option<u32>, c: &A) -> u32 {\n\
                   c.fetch_add(1, Ordering::Relaxed);\n\
                   x.unwrap()\n\
                   }";
        let f = file(src);
        let enums = collect_enums(std::slice::from_ref(&f));
        let all = lint_file(&f, &enums);
        assert_eq!(all.len(), 2, "{all:?}");
        let only_relaxed = lint_file_rules(&f, &enums, &["relaxed-atomic"]);
        assert_eq!(only_relaxed.len(), 1, "{only_relaxed:?}");
        assert_eq!(only_relaxed[0].rule, "relaxed-atomic");
    }

    #[test]
    fn phase_struct_literal_and_assoc_call_are_flagged() {
        let src = "fn f() -> D { let d = Decided { value: 1, path: P };\n\
                   let g = RecoveryGt::new(7);\n\
                   (d, g) }";
        let hits = lint(src);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|h| h.rule == "phase-construction"));
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 2);
    }

    #[test]
    fn phase_variant_uses_and_declarations_are_not_flagged() {
        let src = "enum TraceEvent { Decided { time: u64 }, Collecting }\n\
                   struct Decided;\n\
                   impl Decided { fn kind(&self) -> K { K::Decided } }\n\
                   fn f(e: &TraceEvent) -> bool {\n\
                     matches!(e, TraceEvent::Decided { .. })\n\
                   }\n\
                   fn g() -> TraceEvent { TraceEvent::Decided { time: 0 } }\n\
                   fn h(k: K) -> bool { k == PhaseKind::Decided }";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn phase_type_in_signature_or_generics_is_not_flagged() {
        let src = "fn f(d: &Decided) -> Option<Decided> { None }\n\
                   fn g() -> Vec<RecoveryGt> { Vec::new() }\n\
                   fn k() -> Decided { core_make() }\n\
                   impl View for Decided { }\n\
                   fn h(x: Decided) -> u64 { Decided::value(&x) }";
        // `Decided::value(&x)` is an assoc call with a lowercase ident —
        // flagged: reading accessors through UFCS outside core is as
        // suspicious as construction is rare; call via method syntax.
        let hits = lint(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "phase-construction");
        assert_eq!(hits[0].line, 5);
    }

    #[test]
    fn comments_and_strings_cannot_trip_rules() {
        let src = "// match m { _ => x.unwrap() } debug_assert!\n\
                   fn f() -> &'static str { \"_ => .unwrap() debug_assert!(cfg.n() - 1)\" }";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn allowlist_waives_by_suffix_rule_and_substring() {
        let allow = Allowlist::parse(
            "# audited: slot inserted two lines above\n\
             mem/test.rs:unwrap-expect:just inserted\n",
        )
        .unwrap();
        assert_eq!(allow.len(), 1);
        let f = Finding {
            file: PathBuf::from("x/mem/test.rs"),
            line: 3,
            rule: "unwrap-expect",
            excerpt: ".expect(\"just inserted\")".into(),
        };
        assert!(allow.allows(&f));
        let other = Finding {
            rule: "debug-assert",
            ..f.clone()
        };
        assert!(!allow.allows(&other));
    }

    #[test]
    fn stale_allowlist_entries_are_reported() {
        let allow = Allowlist::parse(
            "mem/test.rs:unwrap-expect:just inserted\n\
             gone/file.rs:debug-assert:old invariant\n",
        )
        .unwrap();
        let live = Finding {
            file: PathBuf::from("x/mem/test.rs"),
            line: 3,
            rule: "unwrap-expect",
            excerpt: ".expect(\"just inserted\")".into(),
        };
        let stale = allow.stale_entries(std::slice::from_ref(&live));
        assert_eq!(stale, vec!["gone/file.rs:debug-assert:old invariant"]);
        assert!(
            allow.stale_entries(&[]).len() == 2,
            "no findings: all stale"
        );
    }

    #[test]
    fn allowlist_rejects_unknown_rules_and_malformed_lines() {
        assert!(Allowlist::parse("a.rs:no-such-rule:x").is_err());
        assert!(Allowlist::parse("just-one-field").is_err());
    }

    #[test]
    fn enum_collection_ignores_comments_and_lowercase() {
        let f = file("// enum Ghost { }\npub enum Msg { A }\nstruct enum_like;");
        let enums = collect_enums(std::slice::from_ref(&f));
        assert!(enums.contains("Msg"));
        assert!(!enums.contains("Ghost"));
        assert_eq!(enums.len(), 1);
    }
}
