//! Static-analysis gates for the two-step consensus workspace.
//!
//! Three analyses, all runnable from the `twostep-analysis` binary and
//! wired into CI:
//!
//! * [`bounds`] — an exhaustive small-model checker for the quorum
//!   arithmetic in `twostep_types::SystemConfig`. For every `(n, e, f)`
//!   with `n` up to a cap it discharges the intersection obligations
//!   behind Lemma 7 and the recovery rule, and for every `n` *below*
//!   the paper's bounds it constructs a concrete violating quorum pair
//!   (a tightness witness, executed against the real
//!   `twostep_core::recovery::select_value` where possible). Theorems
//!   5–6 of the paper, as an executable artifact.
//! * [`byz_bounds`] — the Byzantine counterpart: obligations B1–B7 for
//!   the FaB-style fast quorums (`5f+1`, and the arXiv:2102.12825
//!   `5f−1` variant), with tightness witnesses *executed* against the
//!   real `FastBft` baseline — every `n` below a variant's
//!   fast-liveness bound carries a run with zero fast deciders.
//! * [`lint`] — a source lint over the protocol crates rejecting
//!   wildcard arms on protocol enums, `unwrap`/`expect`, unchecked
//!   quorum arithmetic, `debug_assert!`-only invariants, and relaxed
//!   atomic orderings, with an audited allowlist.
//! * [`model_check_gate`] — the exhaustive model checker
//!   (`twostep_verify::ModelChecker`) swept over the paper's boundary
//!   `(n, e, f)` configurations, with a seeded-broken fixture CI runs
//!   inverted and a symmetry+POR reduction-ratio floor.
//! * loom models (`tests/loom_models.rs`, behind `--features loom`) —
//!   exhaustive interleaving checks for the telemetry observer handle
//!   and the transport reconnect bookkeeping.

pub mod api;
pub mod bounds;
pub mod byz_bounds;
pub mod lexer;
pub mod lint;
pub mod model;
pub mod model_check_gate;
