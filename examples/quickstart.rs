//! Quickstart: one consensus instance, three ways.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! 1. A two-step decision in the deterministic simulator (the paper's
//!    E-faulty synchronous runs, Definition 2).
//! 2. The same protocol over real threads and an in-memory transport.
//! 3. The same protocol over localhost TCP.

use std::time::Duration as WallDuration;

use twostep::core::{ObjectConsensus, TaskConsensus};
use twostep::runtime::Cluster;
use twostep::sim::SyncRunner;
use twostep::types::{ProcessId, ProcessSet, SystemConfig};
use twostep::ClusterBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // 1. Simulator: Theorem 5's bound in action. e = f = 2 needs only
    //    n = max{2e+f, 2f+1} = 6 processes (Fast Paxos would need 7).
    // ---------------------------------------------------------------
    let cfg = SystemConfig::minimal_task(2, 2)?;
    println!(
        "task configuration: {cfg} (fast quorum {}, slow quorum {})",
        cfg.fast_quorum(),
        cfg.slow_quorum()
    );

    // Crash E = {p0, p1} at the beginning of round 1; the highest
    // correct proposer p5 must still decide by 2Δ.
    let crashed: ProcessSet = [0u32, 1].into_iter().map(ProcessId::new).collect();
    let outcome = SyncRunner::new(cfg)
        .crashed(crashed)
        .favoring(ProcessId::new(5))
        .run(|p| TaskConsensus::new(cfg, p, 100 + u64::from(p.as_u32())));

    let (fast, value) = outcome.fast_deciders();
    println!(
        "simulator: two-step deciders {fast} decided {:?} (agreement: {})",
        value,
        outcome.agreement()
    );
    assert!(fast.contains(ProcessId::new(5)));

    // ---------------------------------------------------------------
    // 2. Threads + in-memory transport: the consensus *object* at the
    //    Theorem 6 bound (n = 2e+f-1 = 5 for e = f = 2).
    // ---------------------------------------------------------------
    let cfg = SystemConfig::minimal_object(2, 2)?;
    let cluster: Cluster<u64> = ClusterBuilder::new(cfg)
        .wall_delta(WallDuration::from_millis(10))
        .build(|p| ObjectConsensus::new(cfg, p))
        .expect("in-memory build cannot fail");
    let proxy = ProcessId::new(4);
    cluster.propose(proxy, 42);
    let decided = cluster
        .await_decision(proxy, WallDuration::from_secs(5))
        .expect("proxy decides");
    println!(
        "threads:   proxy {proxy} decided {decided} in {:?}",
        cluster.decision_latency(proxy).expect("latency recorded")
    );
    assert_eq!(decided, 42);

    // ---------------------------------------------------------------
    // 3. Localhost TCP: identical protocol code, real sockets and the
    //    binary wire codec.
    // ---------------------------------------------------------------
    let cluster: Cluster<u64> = ClusterBuilder::new(cfg)
        .tcp()
        .wall_delta(WallDuration::from_millis(10))
        .build(|p| ObjectConsensus::new(cfg, p))?;
    cluster.propose(ProcessId::new(0), 7);
    let decided = cluster
        .await_decision(ProcessId::new(0), WallDuration::from_secs(10))
        .expect("proxy decides over tcp");
    println!("tcp:       p0 decided {decided}");
    assert_eq!(decided, 7);

    println!("quickstart complete");
    Ok(())
}
