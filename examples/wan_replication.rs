//! Wide-area deployment: why one fewer process matters.
//!
//! ```text
//! cargo run --example wan_replication
//! ```
//!
//! Reproduces the paper's practical motivation ("contacting an
//! additional process may incur a cost of hundreds of milliseconds per
//! command"): the object protocol's 5-process deployment spans the five
//! core regions, while Fast Paxos's 7-process deployment must also
//! include two farther regions — and its bigger fast quorum must hear
//! from them.

use twostep::baselines::FastPaxos;
use twostep::core::ObjectConsensus;
use twostep::sim::wan::{region_of, wan_matrix, Region};
use twostep::sim::SimulationBuilder;
use twostep::types::{Duration, ProcessId, SystemConfig, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let e = 2;
    let f = 2;

    println!("lone-proposer commit latency by proxy region (one-way ms in parentheses)\n");
    println!(
        "{:<14} {:>22} {:>18}",
        "proxy region", "TwoStep(object) n=5", "FastPaxos n=7"
    );

    for i in 0..5u32 {
        let proposer = ProcessId::new(i);

        // Object protocol: five processes, one per core region.
        let cfg = SystemConfig::minimal_object(e, f)?;
        let mut sim = SimulationBuilder::new(cfg)
            .delay_model(wan_matrix(cfg.n(), &Region::ALL))
            .build(|p| ObjectConsensus::<u64>::new(cfg, p));
        sim.schedule_propose(proposer, 7, Time::ZERO);
        let outcome = sim.run_until(Time::ZERO + Duration::from_units(1500), |s| {
            s.decisions()[proposer.index()].is_some()
        });
        let object_ms = outcome.decision_time_of(proposer).map(|t| t.units());

        // Fast Paxos: seven processes over seven regions; only the proxy
        // proposes (passive instances elsewhere), matching the lone-
        // proposer scenario above.
        let cfg_fp = SystemConfig::minimal_fast_paxos(e, f)?;
        let mut sim = SimulationBuilder::new(cfg_fp)
            .delay_model(wan_matrix(cfg_fp.n(), &Region::ALL7))
            .build(|p| FastPaxos::<u64>::passive(cfg_fp, p));
        sim.schedule_propose(proposer, 7, Time::ZERO);
        let outcome = sim.run_until(Time::ZERO + Duration::from_units(1500), |s| {
            s.decisions()[proposer.index()].is_some()
        });
        let fp_ms = outcome.decision_time_of(proposer).map(|t| t.units());

        println!(
            "{:<14} {:>19} ms {:>15} ms",
            region_of(proposer, &Region::ALL).name(),
            object_ms.map_or("-".into(), |v| v.to_string()),
            fp_ms.map_or("-".into(), |v| v.to_string()),
        );
    }

    println!(
        "\nBoth decide in one round trip to a fast quorum of n-e processes; the\n\
         7-process deployment's quorum reaches farther regions, so commands pay\n\
         for the extra processes on every single decision."
    );
    Ok(())
}
