//! The lower bounds, live: run the paper's impossibility proofs as
//! schedules against the real protocol, then let the model checker
//! rediscover an ablation bug by exhaustive search.
//!
//! ```text
//! cargo run --example lower_bounds
//! ```

use twostep::core::{Ablations, Msg, OmegaMode, TwoStepBuilder};
use twostep::sim::ManualExecutor;
use twostep::types::protocol::TimerId;
use twostep::types::{ProcessId, SystemConfig};
use twostep::verify::{
    object_at_bound, object_below_bound, task_at_bound, task_below_bound, CheckOutcome,
    ModelChecker,
};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn main() {
    // ---------------------------------------------------------------
    // 1. Theorem 5 "only if": the §B.1 splice at n = 2e+f-1.
    // ---------------------------------------------------------------
    println!("== Theorem 5 lower bound (task), e = f = 2 ==\n");
    let below = task_below_bound(2, 2);
    println!("{}", below.narrative);
    println!(
        "decisions: {:?}  → agreement {}",
        below.decisions,
        if below.agreement_violated {
            "VIOLATED (as the theorem demands)"
        } else {
            "intact"
        }
    );
    assert!(below.agreement_violated);

    let at = task_at_bound(2, 2);
    println!("\nsame strategy at n = 2e+f = {}:", at.cfg.n());
    println!(
        "decisions: {:?}  → agreement {}",
        at.decisions,
        if at.agreement_violated {
            "VIOLATED"
        } else {
            "intact (the tie-break rescued it)"
        }
    );
    assert!(!at.agreement_violated);

    // ---------------------------------------------------------------
    // 2. Theorem 6 "only if": the §B.2 splice at n = 2e+f-2.
    // ---------------------------------------------------------------
    println!("\n== Theorem 6 lower bound (object), e = f = 3 ==\n");
    let below = object_below_bound(3, 3);
    println!("{}", below.narrative);
    assert!(below.agreement_violated);
    let at = object_at_bound(3, 3);
    println!(
        "same strategy at n = 2e+f-1 = {}: agreement {}",
        at.cfg.n(),
        if at.agreement_violated {
            "VIOLATED"
        } else {
            "intact"
        }
    );
    assert!(!at.agreement_violated);

    // ---------------------------------------------------------------
    // 3. Exhaustive search: the model checker explores *every*
    //    continuation of a contended fast round under the red-line
    //    ablation and finds the agreement violation on its own.
    // ---------------------------------------------------------------
    println!("\n== Model checker vs the red-line ablation (n = 5, e = f = 2) ==\n");
    let cfg = SystemConfig::minimal_object(2, 2).unwrap();
    let outcome = ModelChecker::new()
        .timer_budget(1, vec![TimerId::NEW_BALLOT])
        .max_states(500_000)
        .run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| {
                TwoStepBuilder::new(cfg)
                    .omega(OmegaMode::Static(p(0)))
                    .ablations(Ablations {
                        no_object_guard: true,
                        ..Ablations::NONE
                    })
                    .object::<u64>(q)
            });
            ex.start_all();
            for i in 0..cfg.n() as u32 {
                let v = if i >= (cfg.n() - cfg.e()) as u32 {
                    1
                } else {
                    0
                };
                ex.propose(p(i), v);
            }
            // Stage the contended fast round; the checker owns the rest.
            for voter in [p(2), p(3)] {
                for id in ex.pending_matching(|m| {
                    m.from == p(4) && m.to == voter && matches!(m.msg, Msg::Propose(_))
                }) {
                    ex.deliver(id);
                }
                for id in ex.pending_matching(|m| {
                    m.from == voter && m.to == p(4) && matches!(m.msg, Msg::TwoB(..))
                }) {
                    ex.deliver(id);
                }
            }
            for target in [p(0), p(1)] {
                for id in ex.pending_matching(|m| {
                    m.from == p(2) && m.to == target && matches!(m.msg, Msg::Propose(_))
                }) {
                    ex.deliver(id);
                }
            }
            ex.crash(p(2));
            ex.crash(p(4));
            ex
        });

    match outcome {
        CheckOutcome::Violation {
            report,
            script,
            states,
            ..
        } => {
            println!("found after {states} states: {report}");
            println!("counterexample schedule ({} steps):", script.len());
            for (i, action) in script.iter().enumerate() {
                println!("  {i:>2}. {action:?}");
            }
        }
        CheckOutcome::Clean {
            states, truncated, ..
        } => {
            panic!("missed the bug ({states} states, truncated={truncated})")
        }
    }

    println!("\nlower bounds demonstrated");
}
