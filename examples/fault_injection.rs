//! Fault injection: watching the protocol survive what the theory says
//! it must survive — and degrade exactly where the theory says it may.
//!
//! ```text
//! cargo run --example fault_injection
//! ```
//!
//! Scenario ladder on the task protocol at `n = max{2e+f, 2f+1} = 6`
//! (`e = f = 2`):
//!
//! 1. `k ≤ e` crashes: a two-step (2Δ) decision still exists.
//! 2. `e < k ≤ f` crashes: liveness holds, but only via the slow path.
//! 3. Pre-GST chaos (drops + delays), then stabilization: every correct
//!    process decides shortly after GST.

use twostep::core::TaskConsensus;
use twostep::sim::{Lossy, PartialSynchrony, SimulationBuilder, SyncRunner, SynchronousRounds};
use twostep::types::{Duration, ProcessId, ProcessSet, ProtocolKind, SystemConfig, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // n = 6 is exactly the Theorem 5 bound max{2e+f, 2f+1} for (2, 2);
    // the constructor rejects anything smaller for the task family.
    let cfg = SystemConfig::for_protocol(ProtocolKind::TaskTwoStep, 6, 2, 2)?;
    let proposals: Vec<u64> = (0..cfg.n() as u64).map(|i| 100 + i).collect();

    // ---------------------------------------------------------------
    // 1 & 2: a crash ladder.
    // ---------------------------------------------------------------
    println!("crash ladder on {cfg}:");
    for k in 0..=cfg.f() {
        let crashed: ProcessSet = (0..k as u32).map(ProcessId::new).collect();
        let witness = ProcessId::new((cfg.n() - 1) as u32);
        let outcome = SyncRunner::new(cfg)
            .crashed(crashed)
            .favoring(witness)
            .horizon(Duration::deltas(60))
            .run(|p| TaskConsensus::new(cfg, p, proposals[p.index()]));
        let (fast, _) = outcome.fast_deciders();
        let latency = outcome
            .latency_in_deltas(witness)
            .map_or("-".into(), |l| format!("{l:.1}Δ"));
        println!(
            "  {k} crash(es): witness latency {latency}, two-step possible: {}, \
             all correct decided: {}, agreement: {}",
            if fast.contains(witness) {
                "yes"
            } else {
                "no (k > e)"
            },
            outcome.all_correct_decided(),
            outcome.agreement(),
        );
        assert!(outcome.agreement());
        assert!(outcome.all_correct_decided());
        if k <= cfg.e() {
            assert!(fast.contains(witness), "two-step must hold for k <= e");
        }
    }

    // ---------------------------------------------------------------
    // 3: partial synchrony — chaos until GST, then a synchronous net.
    // ---------------------------------------------------------------
    println!("\npartial synchrony (GST = 12Δ, pre-GST: 40% drops, delays up to 5Δ):");
    for seed in [3u64, 17, 99] {
        let gst = Time::ZERO + Duration::deltas(12);
        let outcome = SimulationBuilder::new(cfg)
            .delay_model(PartialSynchrony::new(
                gst,
                Lossy::new(0.4, Duration::deltas(5), seed),
                SynchronousRounds,
            ))
            .build(|p| TaskConsensus::new(cfg, p, proposals[p.index()]))
            .run_until_all_decided(Time::ZERO + Duration::deltas(150));
        let slowest = outcome
            .decisions
            .iter()
            .flatten()
            .map(|(_, t)| t.as_deltas())
            .fold(0.0f64, f64::max);
        println!(
            "  seed {seed:>3}: dropped {} messages pre-GST; all decided by {slowest:.1}Δ \
             (agreement: {})",
            outcome.trace.messages_dropped(),
            outcome.agreement(),
        );
        assert!(outcome.all_correct_decided());
        assert!(outcome.agreement());
    }

    println!("\nfault injection complete — exactly the degradation the bounds predict");
    Ok(())
}
