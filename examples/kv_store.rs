//! A sharded, replicated key-value store — the paper's motivating
//! application, scaled out by partitioning.
//!
//! ```text
//! cargo run --example kv_store
//! ```
//!
//! Three physical nodes host **four independent consensus groups**
//! (shards): every node runs one replica of every group, multiplexed on
//! one thread and one transport endpoint, and each group's Ω leader is
//! spread round-robin (shard `s` is led by node `s mod n`). Keys are
//! hash-partitioned — `shard(key) = fnv1a64(key) mod shards` — so every
//! key's history lives in exactly one group's log, while distinct keys
//! in distinct groups commit concurrently. Each group is an unmodified
//! multi-slot two-step SMR instance: sharding multiplies throughput
//! without touching the per-instance step bounds or the `2e+f` quorum
//! economics.
//!
//! Two client flavors are shown: the leader-routed client (each command
//! submitted at the node leading its shard, starting every proposal on
//! the fast path) and a proxy-pinned client (all commands through one
//! node, trading a forwarding hop for locality). Per-shard telemetry
//! shows where the keys landed.

use std::time::Duration as WallDuration;

use twostep::smr::{KvCommand, KvStore, Routable};
use twostep::telemetry::ShardedMetrics;
use twostep::types::{ProcessId, SystemConfig};
use twostep::ClusterBuilder;

const SHARDS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::minimal_object(1, 1)?;
    println!(
        "sharded KV store: {SHARDS} consensus groups over {cfg} \
         (object protocol per log slot, leaders round-robin)"
    );

    let sharded_metrics = ShardedMetrics::new(SHARDS);
    let cluster = ClusterBuilder::new(cfg)
        .shards(SHARDS)
        .shard_observers(sharded_metrics.handles())
        .wall_delta(WallDuration::from_millis(5))
        .batch(8)
        .pipeline(4)
        .build_sharded_smr::<KvCommand, KvStore>()
        .expect("in-memory build cannot fail");

    // The leader-routed client: every command goes straight to the node
    // leading its key's shard.
    let client = cluster.client();
    let ops = [
        KvCommand::put("capital/mx", "cdmx"),
        KvCommand::put("venue/podc25", "huatulco"),
        KvCommand::put("capital/fr", "paris"),
        KvCommand::delete("capital/fr"),
        KvCommand::put("capital/es", "madrid"),
        KvCommand::put("venue/podc26", "tbd"),
    ];
    for cmd in &ops {
        let shard = client.shard_of(cmd);
        let latency = client
            .submit_and_wait(cmd.clone(), WallDuration::from_secs(15))
            .expect("command commits");
        println!(
            "committed {cmd:?} in shard {shard} (leader {}) in {latency:?}",
            cluster.leader_of(shard)
        );
    }

    // A proxy-pinned client: same router, but every shard is reached
    // through node p2's replicas (non-leader proposals forward).
    let pinned = cluster.proxy_client(ProcessId::new(2));
    let cmd = KvCommand::put("capital/pe", "lima");
    let shard = pinned.shard_of(&cmd);
    let latency = pinned
        .submit_and_wait(cmd.clone(), WallDuration::from_secs(15))
        .expect("command commits via the pinned proxy");
    println!("committed {cmd:?} in shard {shard} via proxy p2 in {latency:?}");

    // Per-key ordering is preserved by construction: both operations on
    // capital/fr routed to the same group, so the delete observed the put.
    let router = cluster.router();
    let fr_put = KvCommand::put("capital/fr", "x");
    let fr_del = KvCommand::delete("capital/fr");
    assert_eq!(
        router.route(fr_put.route_key().as_ref()),
        router.route(fr_del.route_key().as_ref()),
        "one key, one shard, one log"
    );

    // Agreement holds per group (values across groups legitimately
    // differ — they are different logs).
    assert!(cluster.agreement(), "per-shard agreement");

    // The waiters woke on the proxy's own decide; give the remaining
    // replicas a beat to learn before reading the rollup.
    std::thread::sleep(WallDuration::from_millis(100));
    println!(
        "\nper-shard decisions (telemetry rollup over {} shards):",
        sharded_metrics.shards()
    );
    for (s, snap) in sharded_metrics.snapshot().iter().enumerate() {
        println!(
            "  shard {s} (leader {}): {} decisions",
            cluster.leader_of(s as u32),
            snap.total_decisions()
        );
    }
    println!(
        "total {} decisions across {} commands; busiest-shard share visible above",
        sharded_metrics.total_decisions(),
        ops.len() + 1
    );
    Ok(())
}
