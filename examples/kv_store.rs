//! A replicated key-value store — the paper's motivating application.
//!
//! ```text
//! cargo run --example kv_store
//! ```
//!
//! Five replicas (the object protocol's minimal deployment for
//! `e = f = 2`) run a multi-slot log over the threaded runtime; two
//! clients submit commands through different proxies, demonstrating the
//! proxy pattern from the paper's introduction: each client's proxy
//! decides fast, other replicas learn a step later.

use std::time::Duration as WallDuration;

use twostep::runtime::Cluster;
use twostep::smr::{KvCommand, KvStore, SmrReplica};
use twostep::types::{ProcessId, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::minimal_object(2, 2)?;
    println!("replicated KV store over {cfg} (object protocol per log slot)");

    let cluster: Cluster<KvCommand> = Cluster::in_memory(cfg, WallDuration::from_millis(5), |p| {
        SmrReplica::<KvCommand, KvStore>::new(cfg, p)
    });

    // Client A talks to p0; client B talks to p4.
    let ops = [
        (ProcessId::new(0), KvCommand::put("capital/mx", "cdmx")),
        (
            ProcessId::new(4),
            KvCommand::put("venue/podc25", "huatulco"),
        ),
        (ProcessId::new(0), KvCommand::put("capital/fr", "paris")),
        (ProcessId::new(4), KvCommand::delete("capital/fr")),
        (ProcessId::new(0), KvCommand::put("capital/es", "madrid")),
    ];
    for (proxy, cmd) in &ops {
        cluster.propose(*proxy, cmd.clone());
    }

    // Watch the commit stream at every replica: the first applied
    // command per replica arrives within a couple of Δ.
    let all = cluster.await_decisions(cfg.process_ids(), WallDuration::from_secs(15));
    assert!(all, "every replica applies the log prefix");
    for p in cfg.process_ids() {
        println!(
            "replica {p}: first applied command = {:?} after {:?}",
            cluster.decision_of(p).expect("applied"),
            cluster.decision_latency(p).expect("latency"),
        );
    }
    assert!(cluster.agreement(), "identical first log entry everywhere");

    // Give the pipeline a moment to drain the remaining commands.
    std::thread::sleep(WallDuration::from_millis(600));
    println!(
        "submitted {} commands through two proxies; log replicated",
        ops.len()
    );
    Ok(())
}
