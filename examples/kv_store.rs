//! A replicated key-value store — the paper's motivating application.
//!
//! ```text
//! cargo run --example kv_store
//! ```
//!
//! Five replicas (the object protocol's minimal deployment for
//! `e = f = 2`) run a multi-slot log over the threaded runtime; two
//! closed-loop clients submit commands through different proxies,
//! demonstrating the proxy pattern from the paper's introduction: each
//! client's proxy decides fast, other replicas learn a step later.
//! Replicas batch commands (up to 8 per consensus slot) and keep 4
//! batches in flight, so the per-command cost amortizes without
//! touching the per-instance step bounds.

use std::time::Duration as WallDuration;

use twostep::smr::{KvCommand, KvStore};
use twostep::types::{ProcessId, SystemConfig};
use twostep::ClusterBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::minimal_object(2, 2)?;
    println!("replicated KV store over {cfg} (object protocol per log slot)");

    let cluster = ClusterBuilder::new(cfg)
        .wall_delta(WallDuration::from_millis(5))
        .batch(8)
        .pipeline(4)
        .build_smr::<KvCommand, KvStore>()
        .expect("in-memory build cannot fail");

    // Client A talks to p0; client B talks to p4.
    let client_a = cluster.proxy_client(ProcessId::new(0));
    let client_b = cluster.proxy_client(ProcessId::new(4));
    let ops = [
        (&client_a, KvCommand::put("capital/mx", "cdmx")),
        (&client_b, KvCommand::put("venue/podc25", "huatulco")),
        (&client_a, KvCommand::put("capital/fr", "paris")),
        (&client_b, KvCommand::delete("capital/fr")),
        (&client_a, KvCommand::put("capital/es", "madrid")),
    ];
    for (client, cmd) in &ops {
        let latency = client
            .submit_and_wait(cmd.clone(), WallDuration::from_secs(15))
            .expect("command commits");
        println!(
            "client at p{} committed {cmd:?} in {latency:?}",
            client.proxy()
        );
    }

    // Every replica applied the log prefix and agrees on its head.
    let all = cluster.await_decisions(cfg.process_ids(), WallDuration::from_secs(15));
    assert!(all, "every replica applies the log prefix");
    assert!(cluster.agreement(), "identical first log entry everywhere");
    println!(
        "submitted {} commands through two proxies; log replicated",
        ops.len()
    );
    Ok(())
}
