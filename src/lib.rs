//! Umbrella crate for the `twostep` workspace: a production-quality Rust
//! reproduction of *"Revisiting Lower Bounds for Two-Step Consensus"*
//! (Ryabinin, Gotsman, Sutra; PODC 2025).
//!
//! This crate re-exports the workspace members so that examples and
//! downstream users can depend on a single crate:
//!
//! * [`types`] — process ids, ballots, system configurations, bounds.
//! * [`sim`] — deterministic discrete-event simulator (Δ-rounds, GST,
//!   crash injection, E-faulty synchronous runs).
//! * [`core`] — the paper's protocol: task and object variants.
//! * [`baselines`] — Paxos, Fast Paxos, EPaxos-lite and FaB-style
//!   fast-BFT comparators.
//! * [`byz`] — Byzantine fault injection: seeded, replayable
//!   equivocation, forgery, ballot lying and selective silence.
//! * [`runtime`] — thread-per-process deployment over in-memory or TCP
//!   transports.
//! * [`verify`] — trace checkers, bounded model checker, linearizability
//!   checker, mechanized lower-bound adversary.
//! * [`smr`] — state-machine replication built on the consensus core.
//! * [`telemetry`] — protocol-aware metrics and event tracing: decision
//!   paths, recovery cases, latency histograms, text/Prometheus export.
//!
//! The most common entry points are re-exported at the top level:
//! [`ClusterBuilder`] (one fluent construction path for every
//! deployment shape), [`ProxyClient`] (closed-loop clients),
//! [`SmrReplicaBuilder`] and [`Batch`] (batched state-machine
//! replication).
//!
//! # Quickstart
//!
//! ```rust
//! use twostep::core::TaskConsensus;
//! use twostep::sim::SyncRunner;
//! use twostep::types::{ProcessId, ProcessSet, SystemConfig};
//!
//! // n = max{2e+f, 2f+1} = 3 processes for e = f = 1 (Theorem 5).
//! let cfg = SystemConfig::minimal_task(1, 1)?;
//! let proposals: Vec<u64> = vec![10, 20, 30];
//!
//! // Crash p0 at the start of round 1; p2 (highest proposal) wins the
//! // fast path and decides by 2Δ.
//! let crashed: ProcessSet = [ProcessId::new(0)].into_iter().collect();
//! let outcome = SyncRunner::new(cfg)
//!     .crashed(crashed)
//!     .favoring(ProcessId::new(2))
//!     .run(|p| TaskConsensus::new(cfg, p, proposals[p.index()]));
//!
//! let (deciders, value) = outcome.fast_deciders();
//! assert!(deciders.contains(ProcessId::new(2)));
//! assert_eq!(value, Some(30));
//! assert!(outcome.agreement());
//! # Ok::<(), twostep::types::ConfigError>(())
//! ```
#![forbid(unsafe_code)]

pub use twostep_baselines as baselines;
pub use twostep_byz as byz;
pub use twostep_core as core;
pub use twostep_runtime as runtime;
pub use twostep_sim as sim;
pub use twostep_smr as smr;
pub use twostep_telemetry as telemetry;
pub use twostep_types as types;
pub use twostep_verify as verify;

pub use twostep_runtime::{ClusterBuilder, ProxyClient};
pub use twostep_smr::{Batch, SmrReplicaBuilder};
